"""Counterexample minimization.

SAT models assign every PI in the encoded cones; for debugging (and for
the 1-distance generator's seeds) a *minimal* distinguishing vector is far
more useful.  Minimization is two-stage: drop PIs outside the union of the
two nodes' cone supports, then greedily try to free each remaining PI,
keeping the vector distinguishing after every step (verified by
simulation with both values of the freed PI).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SweepError
from repro.network.network import Network
from repro.network.traversal import cone_pis
from repro.simulation.patterns import InputVector
from repro.simulation.simulator import Simulator


def _distinguishes_for_all(
    simulator: Simulator,
    network: Network,
    values: dict[int, int],
    free: list[int],
    node_a: int,
    node_b: int,
) -> bool:
    """True if a != b for *every* completion of the free PIs.

    Checked by simulating all completions bit-parallel: free PI ``i`` gets
    the exhaustive variable word, bound PIs get constants.
    """
    if len(free) > 12:
        return False  # too many completions to verify exhaustively
    width = 1 << len(free)
    mask = (1 << width) - 1
    from repro.simulation.bitvec import exhaustive_word

    words: dict[int, int] = {}
    for pi in network.pis:
        if pi in values:
            words[pi] = mask if values[pi] else 0
        else:
            words[pi] = 0
    for position, pi in enumerate(free):
        words[pi] = exhaustive_word(position, len(free))
    result = simulator.run_words(words, width)
    return (result[node_a] ^ result[node_b]) == mask


def minimize_counterexample(
    network: Network,
    vector: InputVector,
    node_a: int,
    node_b: int,
    simulator: Optional[Simulator] = None,
) -> InputVector:
    """Shrink a distinguishing vector to a minimal partial assignment.

    The result binds a subset of the input vector's PIs such that *every*
    completion of the unbound PIs still distinguishes ``node_a`` from
    ``node_b`` — i.e. the returned partial vector is a distinguishing
    *cube*, not just one pattern.

    Raises :class:`SweepError` if the input vector does not distinguish
    the pair in the first place.
    """
    simulator = simulator or Simulator(network)
    support = sorted(
        set(cone_pis(network, node_a)) | set(cone_pis(network, node_b))
    )
    values = {
        pi: value for pi, value in vector.values.items() if pi in support
    }
    missing = [pi for pi in support if pi not in values]
    if missing:
        raise SweepError(
            f"vector does not bind cone PIs {missing} of the pair"
        )
    single = simulator.run_words(
        {pi: values.get(pi, 0) for pi in network.pis}, 1
    )
    if single[node_a] == single[node_b]:
        raise SweepError("vector does not distinguish the pair")

    # Greedy: try to free each support PI (most recently indexed first —
    # arbitrary but deterministic) while the cube property holds.
    free: list[int] = []
    for pi in reversed(support):
        candidate_values = dict(values)
        del candidate_values[pi]
        candidate_free = free + [pi]
        if _distinguishes_for_all(
            simulator, network, candidate_values, candidate_free, node_a, node_b
        ):
            values = candidate_values
            free = candidate_free
    return InputVector(values)
