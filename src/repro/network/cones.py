"""Cones: fanin/fanout cones, fanout-free cones, and MFFCs (paper §2.1, §5).

The MFFC (maximum fanout-free cone) of a node is the largest set of nodes in
its fanin cone whose every path to a PO passes through the node.  SimGen's
MFFC decision heuristic scores truth-table rows by the *depth* of the MFFC
of each bound fanin (Equations 2–3); :class:`MffcCache` memoizes those
depths for the duration of one generation pass over a static network.
"""

from __future__ import annotations

from repro.network.network import Network


def fanin_cone(network: Network, root: int, include_root: bool = True) -> set[int]:
    """All nodes with a path to ``root`` (transitive fanins)."""
    cone: set[int] = set()
    stack = list(network.node(root).fanins)
    while stack:
        uid = stack.pop()
        if uid in cone:
            continue
        cone.add(uid)
        stack.extend(network.node(uid).fanins)
    if include_root:
        cone.add(root)
    return cone


def fanout_cone(network: Network, root: int, include_root: bool = True) -> set[int]:
    """All nodes reachable from ``root`` (transitive fanouts)."""
    cone: set[int] = set()
    stack = list(network.fanouts(root))
    while stack:
        uid = stack.pop()
        if uid in cone:
            continue
        cone.add(uid)
        stack.extend(network.fanouts(uid))
    if include_root:
        cone.add(root)
    return cone


def mffc(network: Network, root: int) -> set[int]:
    """The maximum fanout-free cone of ``root`` (always contains the root).

    Computed by reference-count dereferencing: a fanin joins the MFFC when
    *all* of its fanouts are already inside.  PIs never join (they are cone
    leaves by definition and typically feed other logic); a PI root yields
    the singleton ``{root}``.
    """
    node = network.node(root)
    if node.is_pi:
        return {root}
    inside = {root}
    # Count, for each candidate, how many of its fanouts are inside.
    counted: dict[int, int] = {}
    stack = [root]
    while stack:
        uid = stack.pop()
        for f in set(network.node(uid).fanins):
            fnode = network.node(f)
            if fnode.is_pi or f in inside:
                continue
            counted[f] = counted.get(f, 0) + 1
            if counted[f] == network.num_fanouts(f):
                inside.add(f)
                stack.append(f)
    return inside


def ffc_check(network: Network, root: int, cone: set[int]) -> bool:
    """True if ``cone`` is a fanout-free cone of ``root``.

    Every node of the cone (other than the root) must have all its fanouts
    inside the cone, and every cone node must lie in the fanin cone of the
    root.  Used by tests to cross-validate :func:`mffc`.
    """
    if root not in cone:
        return False
    full_cone = fanin_cone(network, root)
    for uid in cone:
        if uid not in full_cone:
            return False
        if uid == root:
            continue
        if any(out not in cone for out in network.fanouts(uid)):
            return False
    return True


def mffc_leaves(network: Network, cone: set[int]) -> list[int]:
    """Cone nodes with no fanin inside the cone (paper §2.1 'leaves')."""
    return sorted(
        uid
        for uid in cone
        if not any(f in cone for f in network.node(uid).fanins)
    )


def mffc_depth(network: Network, root: int) -> float:
    """Equation 2: mean over MFFC leaves of ``level(root) - level(leaf)``."""
    cone = mffc(network, root)
    leaves = mffc_leaves(network, cone)
    if not leaves:  # pragma: no cover - cone always contains >= 1 leaf
        return 0.0
    root_level = network.level(root)
    total = sum(root_level - network.level(leaf) for leaf in leaves)
    return total / len(leaves)


class MffcCache:
    """Memoized MFFC depths for a static network.

    One SimGen run makes many decisions over the same network; recomputing
    MFFCs per decision would dominate runtime.  The cache assumes the
    network is not structurally modified while in use.
    """

    def __init__(self, network: Network):
        self._network = network
        self._depths: dict[int, float] = {}

    def depth(self, uid: int) -> float:
        """Equation 2 depth of the MFFC rooted at ``uid`` (cached)."""
        if uid not in self._depths:
            self._depths[uid] = mffc_depth(self._network, uid)
        return self._depths[uid]
