"""Decision policies (paper §5: "Which row is the best?").

When no implication fires, Algorithm 1 must *decide*: pick one of the
truth-table rows compatible with the candidate node's current pins and
commit its values.  A bad pick causes a later conflict, so rows are ranked:

* ``dc_size`` (Equation 1): rows with more don't-cares bind fewer pins and
  leave more freedom for future propagations.
* ``mffc_rank`` (Equation 3): binding a pin whose driver has a *deep* MFFC
  (Equation 2) is safe — that logic feeds only this path — while binding a
  shared (shallow/absent MFFC) driver invites conflicts; rows that put their
  bound values on deep-MFFC fanins rank higher.
* ``priority`` (Equation 4): ``alpha * dc_size + beta * mffc_rank`` with
  ``alpha >> beta``.

Selection uses roulette-wheel sampling via stochastic acceptance
(Lipowski & Lipowska, 2012), exactly as the paper prescribes, so better
rows are preferred but not deterministically forced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from repro.core.assignment import Assignment, Conflict
from repro.logic.cubes import Row, rows_of
from repro.network.cones import MffcCache
from repro.network.network import Network

#: Paper §5: alpha >> beta prioritizes the DC count over the MFFC metric.
DEFAULT_ALPHA = 100.0
DEFAULT_BETA = 1.0

#: Default cap on cached per-node row resolutions.  Overflow clears the
#: cache (a pure cache: rows are re-derived on demand, trajectories are
#: unaffected) and counts dropped entries in ``stats["cache_evictions"]``.
DEFAULT_ROWS_CACHE_CAP = 1 << 16


class DecisionStrategy(Enum):
    """Row-selection policy for decisions."""

    #: Uniformly random among compatible rows (the "RD" of SI+RD / AI+RD).
    RANDOM = "random"
    #: Rank rows by don't-care count only (AI+DC).
    DC = "dc"
    #: DC count combined with the MFFC depth metric (AI+DC+MFFC = SimGen).
    DC_MFFC = "dc+mffc"


@dataclass(slots=True)
class DecisionResult:
    """Outcome of one decision attempt."""

    #: The chosen row, or None when the node was conflicting/complete.
    row: Optional[Row]
    #: True when no row matches the current pins (a contradiction).
    conflict: bool
    #: Pin assignments committed, as (node uid, value).
    assigned: list[tuple[int, int]]


def roulette_select(
    rng: random.Random, items: Sequence[Row], weights: Sequence[float]
) -> Row:
    """Roulette-wheel selection by stochastic acceptance.

    Repeatedly draws a uniformly random item and accepts it with probability
    ``weight / max_weight``; O(1) expected draws for non-degenerate weights.
    Zero/negative weights are floored to a small epsilon so every row keeps
    a nonzero chance (the paper uses priorities as probabilities, not as a
    hard filter).
    """
    if not items:
        raise ValueError("cannot select from an empty row list")
    floor = 1e-9
    safe = [max(w, floor) for w in weights]
    top = max(safe)
    while True:
        index = rng.randrange(len(items))
        if rng.random() * top <= safe[index]:
            return items[index]


class DecisionEngine:
    """Scores and applies decisions on one network."""

    def __init__(
        self,
        network: Network,
        strategy: DecisionStrategy = DecisionStrategy.DC_MFFC,
        rng: Optional[random.Random] = None,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
        rows_cache_cap: int = DEFAULT_ROWS_CACHE_CAP,
    ):
        self.network = network
        self.strategy = strategy
        self.rng = rng or random.Random(0)
        self.alpha = alpha
        self.beta = beta
        if rows_cache_cap < 1:
            raise ValueError(
                f"rows_cache_cap must be >= 1, got {rows_cache_cap}"
            )
        self._rows_cache_cap = rows_cache_cap
        self._mffc = MffcCache(network)
        #: uid -> (fanins, rows); None for PIs/constants.  Lazily resolved
        #: so row lookups skip re-hashing the truth table per decision.
        self._node_rows: dict[
            int, Optional[tuple[tuple[int, ...], tuple[Row, ...]]]
        ] = {}
        #: Work counters for the metrics registry (``simgen.decision.*``).
        self.stats = {
            "decisions": 0,
            "conflicts": 0,
            "rows_committed": 0,
            "cache_evictions": 0,
        }

    def _rows_at(
        self, uid: int
    ) -> Optional[tuple[tuple[int, ...], tuple[Row, ...]]]:
        info = self._node_rows.get(uid, self)  # self = sentinel for "unseen"
        if info is self:
            node = self.network.node(uid)
            info = (
                None
                if node.is_pi or node.is_const
                else (tuple(node.fanins), rows_of(node.table))
            )
            if len(self._node_rows) >= self._rows_cache_cap:
                # Pure cache: clearing only costs re-derivation later.
                self.stats["cache_evictions"] += len(self._node_rows)
                self._node_rows.clear()
            self._node_rows[uid] = info
        return info

    # ------------------------------------------------------------------
    # Metrics (Equations 1-4)
    # ------------------------------------------------------------------
    def dc_size(self, row: Row) -> int:
        """Equation 1: number of don't-care inputs in the row."""
        return row.dc_size()

    def mffc_rank(self, uid: int, row: Row) -> float:
        """Equation 3: sum of MFFC depths of the row's *bound* fanins."""
        info = self._rows_at(uid)
        fanins = info[0] if info else self.network.node(uid).fanins
        rank = 0.0
        for i, lit in enumerate(row.literals()):
            if lit is not None:
                rank += self._mffc.depth(fanins[i])
        return rank

    def priority(self, uid: int, row: Row) -> float:
        """Equation 4: ``alpha * dc_size + beta * mffc_rank``."""
        value = self.alpha * self.dc_size(row)
        if self.strategy is DecisionStrategy.DC_MFFC:
            value += self.beta * self.mffc_rank(uid, row)
        return value

    # ------------------------------------------------------------------
    def candidate_rows(
        self, assignment: Assignment, uid: int
    ) -> Optional[list[Row]]:
        """Rows compatible with the node's pins that would assign something.

        Returns ``None`` if *no* row matches at all (contradiction); returns
        an empty list when the node is already fully determined.
        """
        info = self._rows_at(uid)
        if info is None:  # PI or constant
            return []
        fanins, rows = info
        values = assignment._values
        known_mask = 0
        known_values = 0
        for i, f in enumerate(fanins):
            v = values.get(f)
            if v is not None:
                known_mask |= 1 << i
                if v:
                    known_values |= 1 << i
        output = values.get(uid)
        matching = [
            row
            for row in rows
            if (output is None or row.output == output)
            and not (row.cube.values ^ known_values) & (row.cube.mask & known_mask)
        ]
        if not matching:
            return None
        useful = []
        for row in matching:
            binds_new = bool(row.cube.mask & ~known_mask)
            if not binds_new and output is not None:
                # A matching row whose bound pins are all already assigned
                # covers every completion of the free pins: the node's value
                # is guaranteed and no decision is needed here at all.
                return []
            if binds_new or output is None:
                useful.append(row)
        return useful

    def decide(self, assignment: Assignment, uid: int) -> DecisionResult:
        """Pick and commit one row at ``uid`` (paper Definition 2.3).

        Only previously unassigned pins are written, so committing a
        matching row can never raise a conflict.
        """
        self.stats["decisions"] += 1
        rows = self.candidate_rows(assignment, uid)
        if rows is None:
            self.stats["conflicts"] += 1
            return DecisionResult(row=None, conflict=True, assigned=[])
        if not rows:
            return DecisionResult(row=None, conflict=False, assigned=[])
        self.stats["rows_committed"] += 1
        if self.strategy is DecisionStrategy.RANDOM:
            row = self.rng.choice(rows)
        else:
            priorities = [self.priority(uid, row) for row in rows]
            # Shift by the minimum before the roulette: Equation 4's alpha
            # dwarfs beta, so raw priorities of equal-DC rows differ by a
            # fraction of a percent and proportional selection would wash
            # the MFFC heuristic out.  The shift preserves Eq. 4's ordering
            # while making the preference effective; the floor keeps every
            # row selectable (the paper treats priorities as probabilities,
            # not a hard filter).
            low = min(priorities)
            span = max(priorities) - low
            floor = 0.1 + 0.05 * span
            weights = [p - low + floor for p in priorities]
            row = roulette_select(self.rng, rows, weights)
        node = self.network.node(uid)
        inputs, output = assignment.pins_of(uid)
        committed: list[tuple[int, int]] = []
        try:
            for i, lit in enumerate(row.literals()):
                if lit is not None and inputs[i] is None:
                    if assignment.assign(node.fanins[i], lit):
                        committed.append((node.fanins[i], lit))
            if output is None:
                if assignment.assign(uid, row.output):
                    committed.append((uid, row.output))
        except Conflict:
            # Possible only with duplicated fanins (one driver at two pin
            # positions bound to opposite values by the chosen row).
            return DecisionResult(row=row, conflict=True, assigned=committed)
        return DecisionResult(row=row, conflict=False, assigned=committed)
