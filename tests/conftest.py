"""Shared fixtures: small reference circuits, including the paper's figures."""

from __future__ import annotations

import random

import pytest

from repro.logic import TruthTable, gate
from repro.network import NetworkBuilder
from repro.simulation import PatternBatch, Simulator


@pytest.fixture
def and_or_network():
    """out = (a & b) | c — the smallest interesting multi-level circuit."""
    builder = NetworkBuilder("and_or")
    a, b, c = builder.pis(3)
    inner = builder.and_(a, b, "inner")
    out = builder.or_(inner, c, "out")
    builder.po(out, "f")
    return builder.build(), {"a": a, "b": b, "c": c, "inner": inner, "out": out}


@pytest.fixture
def fig1_network():
    """The circuit of the paper's Figure 1.

    PIs A, B, C.  Gate x = AND(A, inv0(B))?  Reading the figure: gate z is
    an AND whose output D must become 1; x is an AND of A and B with B
    inverted on one path; y is a NAND of (inverter of B) and C.  We encode
    the essential structure: z = AND(x, y), x = AND(A, NOT B),
    y = NAND(NOT B, C) — so B = 0 forces the inverter output 1, which under
    y = 1 forces C = 0, the implication chain the figure walks through.
    """
    builder = NetworkBuilder("fig1")
    a = builder.pi("A")
    b = builder.pi("B")
    c = builder.pi("C")
    inv_b = builder.not_(b, "inv_b")
    x = builder.and_(a, inv_b, "x")
    y = builder.nand_(inv_b, c, "y")
    z = builder.and_(x, y, "z")
    builder.po(z, "D")
    return builder.build(), {
        "A": a, "B": b, "C": c, "inv_b": inv_b, "x": x, "y": y, "z": z
    }


@pytest.fixture
def fig4_network():
    """The circuit of the paper's Figure 4 (MFFC heuristic example).

    z and t are AND gates driving POs D and E; gate y feeds both (it is in
    neither MFFC), while x (and its cone m, n) feeds only z.
    """
    builder = NetworkBuilder("fig4")
    p = builder.pis(6)
    m = builder.and_(p[0], p[1], "m")
    n = builder.or_(m, p[2], "n")
    x = builder.and_(n, p[3], "x")
    y = builder.not_(p[4], "y")
    z = builder.and_(x, y, "z")
    t = builder.and_(y, p[5], "t")
    builder.po(z, "D")
    builder.po(t, "E")
    return builder.build(), {"m": m, "n": n, "x": x, "y": y, "z": z, "t": t}


def random_network(
    seed: int = 0, num_inputs: int = 5, num_gates: int = 12
) -> object:
    """A small random gate network for function-preservation checks."""
    rng = random.Random(seed)
    builder = NetworkBuilder(f"rand{seed}")
    signals = builder.pis(num_inputs)
    kinds = ["and", "or", "nand", "nor", "xor", "xnor"]
    for _ in range(num_gates):
        if rng.random() < 0.2:
            arity = rng.randint(3, 4)
            fanins = [rng.choice(signals) for _ in range(arity)]
            table = TruthTable(arity, rng.getrandbits(1 << arity))
            signals.append(builder.table(table, fanins))
        elif rng.random() < 0.15:
            signals.append(builder.not_(rng.choice(signals)))
        else:
            a, b = rng.choice(signals), rng.choice(signals)
            signals.append(builder.gate(rng.choice(kinds), [a, b]))
    for j in range(3):
        builder.po(signals[-(j + 1)], f"o{j}")
    return builder.build()


def networks_equal(net_a, net_b, width: int = 256, seed: int = 0) -> bool:
    """Positional PI/PO equivalence check by random bit-parallel simulation."""
    rng = random.Random(seed)
    batch = PatternBatch(net_a.pis, rng)
    batch.add_random(width)
    values_a = Simulator(net_a).run_batch(batch)
    words = batch.words()
    mapping = {pb: words[pa] for pa, pb in zip(net_a.pis, net_b.pis)}
    values_b = Simulator(net_b).run_words(mapping, width)
    return all(
        values_a[ua] == values_b[ub]
        for (_, ua), (_, ub) in zip(net_a.pos, net_b.pos)
    )
