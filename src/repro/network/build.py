"""Convenience builder for constructing networks gate-by-gate.

The :class:`NetworkBuilder` keeps test circuits and benchmark generators
readable: named gates, word-level buses, and common arithmetic blocks built
from primitive gates.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import NetworkError
from repro.logic import gates
from repro.logic.truthtable import TruthTable
from repro.network.network import Network


class NetworkBuilder:
    """Fluent construction of a :class:`~repro.network.network.Network`."""

    def __init__(self, name: str = "network"):
        self.network = Network(name)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def pi(self, name: Optional[str] = None) -> int:
        """Add one primary input."""
        return self.network.add_pi(name)

    def pis(self, count: int, prefix: str = "x") -> list[int]:
        """Add ``count`` primary inputs named ``prefix0..``."""
        return [self.pi(f"{prefix}{i}") for i in range(count)]

    def po(self, node: int, name: Optional[str] = None) -> None:
        """Mark a node as a primary output."""
        self.network.add_po(node, name)

    def table(
        self,
        table: TruthTable,
        fanins: Sequence[int],
        name: Optional[str] = None,
    ) -> int:
        """Add a gate with an explicit truth table."""
        return self.network.add_gate(table, fanins, name)

    def gate(
        self, kind: str, fanins: Sequence[int], name: Optional[str] = None
    ) -> int:
        """Add a named-kind gate (``and``, ``nand``, ``xor``, ``inv``, ...)."""
        return self.network.add_gate(
            gates.gate(kind, len(fanins)), fanins, name
        )

    def const(self, value: bool, name: Optional[str] = None) -> int:
        """Add a constant node."""
        return self.network.add_const(value, name)

    # Shorthand binary/unary ops -----------------------------------------
    def and_(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate("and", [a, b], name)

    def or_(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate("or", [a, b], name)

    def xor_(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate("xor", [a, b], name)

    def nand_(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate("nand", [a, b], name)

    def nor_(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate("nor", [a, b], name)

    def xnor_(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate("xnor", [a, b], name)

    def not_(self, a: int, name: Optional[str] = None) -> int:
        return self.gate("inv", [a], name)

    def mux_(self, d0: int, d1: int, sel: int, name: Optional[str] = None) -> int:
        """2:1 mux, output = sel ? d1 : d0."""
        return self.gate("mux", [d0, d1, sel], name)

    def maj_(self, a: int, b: int, c: int, name: Optional[str] = None) -> int:
        return self.gate("maj", [a, b, c], name)

    # ------------------------------------------------------------------
    # Trees and words
    # ------------------------------------------------------------------
    def reduce_tree(self, kind: str, operands: Sequence[int]) -> int:
        """Balanced binary tree of 2-input ``kind`` gates over the operands."""
        if not operands:
            raise NetworkError("reduce_tree needs at least one operand")
        layer = list(operands)
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(self.gate(kind, [layer[i], layer[i + 1]]))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def half_adder(self, a: int, b: int) -> tuple[int, int]:
        """Returns (sum, carry)."""
        return self.xor_(a, b), self.and_(a, b)

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        """Returns (sum, carry-out)."""
        s = self.xor_(self.xor_(a, b), cin)
        c = self.maj_(a, b, cin)
        return s, c

    def ripple_adder(
        self, a: Sequence[int], b: Sequence[int], cin: Optional[int] = None
    ) -> tuple[list[int], int]:
        """Word addition; returns (sum bits LSB-first, carry-out)."""
        if len(a) != len(b):
            raise NetworkError("ripple_adder operands must have equal width")
        carry = cin if cin is not None else self.const(False)
        sums: list[int] = []
        for ai, bi in zip(a, b):
            s, carry = self.full_adder(ai, bi, carry)
            sums.append(s)
        return sums, carry

    def subtractor(self, a: Sequence[int], b: Sequence[int]) -> tuple[list[int], int]:
        """Word subtraction a-b (two's complement); returns (diff, borrow-free carry)."""
        inv_b = [self.not_(bi) for bi in b]
        one = self.const(True)
        return self.ripple_adder(a, inv_b, one)

    def multiplier(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Array multiplier; returns ``len(a)+len(b)`` product bits LSB-first."""
        width = len(a) + len(b)
        zero = self.const(False)
        acc: list[int] = [zero] * width
        for j, bj in enumerate(b):
            partial = [zero] * width
            for i, ai in enumerate(a):
                partial[i + j] = self.and_(ai, bj)
            acc, _ = self.ripple_adder(acc, partial)
        return acc

    def equal_const(self, word: Sequence[int], value: int) -> int:
        """Comparator: 1 iff the word equals the constant ``value``."""
        bits = []
        for i, w in enumerate(word):
            bits.append(w if (value >> i) & 1 else self.not_(w))
        return self.reduce_tree("and", bits)

    def less_than(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Unsigned comparator a < b."""
        if len(a) != len(b):
            raise NetworkError("less_than operands must have equal width")
        lt = self.const(False)
        for ai, bi in zip(a, b):  # LSB first; rebuild from LSB upward
            bit_lt = self.and_(self.not_(ai), bi)
            bit_eq = self.xnor_(ai, bi)
            lt = self.or_(bit_lt, self.and_(bit_eq, lt))
        return lt

    def build(self) -> Network:
        """The constructed network."""
        return self.network
