"""Typed metrics: counters, timers, histograms, and a registry.

The registry replaces ad-hoc ``time.perf_counter()`` bookkeeping with
named, typed instruments that every layer (simulation, generator engines,
pair checker, SAT solver, worker pool) can record into and that merge
deterministically — worker-side measurements forwarded through the pool
are folded in dispatch order, so two runs at different worker counts
produce identical integer totals (and float totals summed in the same
order).

Instruments:

* :class:`Counter` — a monotonically increasing integer.
* :class:`Timer` — accumulated seconds plus an invocation count; use
  :meth:`Timer.time` as a context manager (it closes on every exit path,
  including exceptions) or :meth:`Timer.add` for externally-measured
  windows.
* :class:`Histogram` — fixed-bound buckets; bucket counts of integral
  quantities (conflicts per call, wave sizes) are deterministic, which is
  why duration histograms are deliberately not used in golden traces.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Sequence

#: Default histogram bounds, tuned for conflict counts per SAT query.
DEFAULT_BOUNDS: tuple[int, ...] = (0, 1, 2, 5, 10, 20, 50, 100, 500, 5000)


class Counter:
    """A named monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class _TimerWindow:
    __slots__ = ("_timer", "_clock", "_start")

    def __init__(self, timer: "Timer", clock: Callable[[], float]):
        self._timer = timer
        self._clock = clock

    def __enter__(self) -> "_TimerWindow":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        # Close on every exit path so no window is ever left dangling.
        self._timer.add(self._clock() - self._start)


class Timer:
    """Accumulated seconds + call count."""

    __slots__ = ("name", "total", "count")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.total += seconds
        self.count += 1

    def time(self, clock: Callable[[], float] = time.perf_counter):
        """``with timer.time(): ...`` — records even when the body raises."""
        return _TimerWindow(self, clock)


class Histogram:
    """Fixed-bound bucket counts (bucket ``i`` counts values <= bounds[i];
    the final implicit bucket counts everything larger)."""

    __slots__ = ("name", "bounds", "buckets", "count", "total")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are dotted (``sat.solve``, ``sweep.proven``); :meth:`as_dict`
    flattens to sorted keys with the timing convention of
    :mod:`repro.obs.trace` (seconds keys end in ``_s``) so a registry dump
    embedded in a trace is automatically split into its deterministic and
    volatile parts.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # Convenience one-liners for instrumentation sites.
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def add_time(self, name: str, seconds: float) -> None:
        self.timer(name).add(seconds)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def inc_many(self, prefix: str, values: dict) -> None:
        """Fold a plain stats dict (``{key: int}``) under a name prefix."""
        for key, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if isinstance(value, float):
                self.add_time(f"{prefix}.{key}", value)
            elif value:
                self.inc(f"{prefix}.{key}", value)

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (same-name instruments are summed).

        Merging is commutative for integers; timer/second totals are plain
        float sums, so merge *in a canonical order* when bit-stable totals
        matter (the pool merges worker measurements in dispatch order).
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, timer in other._timers.items():
            mine = self.timer(name)
            mine.total += timer.total
            mine.count += timer.count
        for name, histogram in other._histograms.items():
            mine = self.histogram(name, histogram.bounds)
            if mine.bounds != histogram.bounds:
                raise ValueError(
                    f"histogram {name!r} bound mismatch: "
                    f"{mine.bounds} vs {histogram.bounds}"
                )
            for i, bucket in enumerate(histogram.buckets):
                mine.buckets[i] += bucket
            mine.count += histogram.count
            mine.total += histogram.total

    def as_dict(self) -> dict:
        """Flat, sorted snapshot (stable key order for traces and JSON)."""
        snapshot: dict = {}
        for name in sorted(self._counters):
            snapshot[name] = self._counters[name].value
        for name in sorted(self._timers):
            timer = self._timers[name]
            snapshot[f"{name}.count"] = timer.count
            snapshot[f"{name}.total_s"] = timer.total
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            snapshot[f"{name}.buckets"] = list(histogram.buckets)
            snapshot[f"{name}.bucket_count"] = histogram.count
        return snapshot
