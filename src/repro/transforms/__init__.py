"""Structural transforms: strash, rewrites, decomposition, putontop."""

from repro.transforms.decompose import decompose_to_arity
from repro.transforms.putontop import put_on_top
from repro.transforms.rewrite import (
    double_negate,
    rewrite,
    shannon_expand,
    sop_resynthesize,
)
from repro.transforms.strash import network_signature, node_signatures, strash

__all__ = [
    "decompose_to_arity",
    "double_negate",
    "network_signature",
    "node_signatures",
    "put_on_top",
    "rewrite",
    "shannon_expand",
    "sop_resynthesize",
    "strash",
]
