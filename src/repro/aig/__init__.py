"""And-Inverter Graphs: complemented edges, strashing, conversions."""

from repro.aig.aig import (
    FALSE,
    TRUE,
    Aig,
    AigNode,
    lit,
    lit_node,
    lit_not,
    lit_phase,
)
from repro.aig.aiger import aag_text, parse_aag, read_aag, write_aag
from repro.aig.convert import aig_to_network, network_to_aig

__all__ = [
    "Aig",
    "AigNode",
    "FALSE",
    "TRUE",
    "aag_text",
    "aig_to_network",
    "lit",
    "lit_node",
    "lit_not",
    "lit_phase",
    "network_to_aig",
    "parse_aag",
    "read_aag",
    "write_aag",
]
