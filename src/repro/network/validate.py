"""Structural validation of Boolean networks.

Run :func:`validate` after hand-construction, parsing, or transformation to
catch inconsistencies early (the EDA equivalent of an assert-clean netlist).
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.network.network import Network


def validate(network: Network) -> None:
    """Raise :class:`NetworkError` on any structural inconsistency.

    Checks: fanin existence, fanin/table arity agreement, fanout symmetry,
    PO targets exist, and acyclicity (via topological order).
    """
    for node in network.nodes():
        for f in node.fanins:
            if f not in network:
                raise NetworkError(
                    f"node {node.uid} references missing fanin {f}"
                )
        if node.is_gate and node.table is not None:
            if node.table.num_vars != len(node.fanins):
                raise NetworkError(
                    f"node {node.uid}: arity mismatch "
                    f"({node.table.num_vars} vs {len(node.fanins)})"
                )
        for f in set(node.fanins):
            if node.uid not in network.fanouts(f):
                raise NetworkError(
                    f"fanout list of {f} is missing reader {node.uid}"
                )
    for uid in network.node_ids():
        for reader in network.fanouts(uid):
            if uid not in network.node(reader).fanins:
                raise NetworkError(
                    f"fanout list of {uid} lists non-reader {reader}"
                )
    for name, uid in network.pos:
        if uid not in network:
            raise NetworkError(f"PO {name!r} references missing node {uid}")
    # Raises on cycles.
    network.topological_order()
