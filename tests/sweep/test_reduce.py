"""Network reduction from proven equivalences."""

import pytest

from repro.core import make_generator
from repro.network import NetworkBuilder, validate
from repro.sweep import (
    SweepConfig,
    SweepEngine,
    reduce_network,
    sweep_and_reduce,
)
from tests.conftest import networks_equal, random_network


def redundant_network():
    builder = NetworkBuilder()
    a, b, c = builder.pis(3)
    g1 = builder.and_(a, b)
    g2 = builder.not_(builder.nand_(a, b))  # == g1
    g3 = builder.nand_(a, b)  # == NOT g1
    builder.po(builder.or_(g1, c), "o0")
    builder.po(builder.or_(g2, c), "o1")
    builder.po(g3, "o2")
    return builder.build(), (g1, g2, g3)


class TestReduceNetwork:
    def test_merge_preserves_function(self):
        net, (g1, g2, g3) = redundant_network()
        reduced, stats = reduce_network(net, [(g1, g2, False)])
        validate(reduced)
        assert networks_equal(net, reduced)
        assert stats.merged == 1
        assert stats.gates_after < stats.gates_before

    def test_complemented_merge_adds_inverter(self):
        net, (g1, g2, g3) = redundant_network()
        reduced, stats = reduce_network(net, [(g1, g3, True)])
        validate(reduced)
        assert networks_equal(net, reduced)
        assert stats.inverters_added == 1

    def test_chained_equivalences_resolve(self):
        net, (g1, g2, g3) = redundant_network()
        reduced, stats = reduce_network(
            net, [(g1, g2, False), (g2, g3, True)]
        )
        validate(reduced)
        assert networks_equal(net, reduced)
        assert stats.merged == 2

    def test_duplicate_equivalence_ignored(self):
        net, (g1, g2, g3) = redundant_network()
        reduced, stats = reduce_network(
            net, [(g1, g2, False), (g2, g1, False)]
        )
        assert stats.merged == 1

    def test_original_untouched(self):
        net, (g1, g2, g3) = redundant_network()
        before = net.num_gates
        reduce_network(net, [(g1, g2, False)])
        assert net.num_gates == before


class TestSweepAndReduce:
    @pytest.mark.parametrize("seed", [2, 11, 23])
    def test_end_to_end_function_preserved(self, seed):
        net = random_network(seed=seed, num_inputs=5, num_gates=18)
        engine = SweepEngine(
            net,
            make_generator("AI+DC+MFFC", net, seed=1),
            SweepConfig(seed=3, iterations=5),
        )
        result = engine.run()
        reduced, stats = sweep_and_reduce(net, result)
        validate(reduced)
        assert networks_equal(net, reduced)
        assert stats.merged == len(
            {frozenset((a, b)) for a, b, _ in result.equivalences}
        )

    def test_reduction_with_complements_enabled(self):
        net = random_network(seed=5, num_inputs=5, num_gates=18)
        engine = SweepEngine(
            net,
            make_generator("AI+DC+MFFC", net, seed=1),
            SweepConfig(seed=3, iterations=5, match_complements=True,
                        random_width=16),
        )
        result = engine.run()
        reduced, _ = sweep_and_reduce(net, result)
        validate(reduced)
        assert networks_equal(net, reduced)
