"""Functional checks of the individual benchmark generator families."""

import random

import pytest

from repro.benchgen import arithmetic, control, pla, random_logic
from repro.network import validate
from repro.simulation import Simulator


def run_vector(net, values):
    return Simulator(net).run_vector(values)


class TestArbiter:
    def test_masked_request_granted_first(self):
        net = control.arbiter("arb", width=4)
        sim = Simulator(net)
        po = dict(net.pos)
        req = net.pis[:4]
        mask = net.pis[4:]
        # request 1 and 3; mask admits only 3 -> grant 3.
        values = {pi: 0 for pi in net.pis}
        values[req[1]] = 1
        values[req[3]] = 1
        values[mask[3]] = 1
        out = sim.run_vector(values)
        grants = [out[po[f"g{i}"]] for i in range(4)]
        assert grants == [0, 0, 0, 1]
        assert out[po["hit"]] == 1

    def test_fallback_to_plain_priority_when_mask_empty(self):
        net = control.arbiter("arb", width=4)
        sim = Simulator(net)
        po = dict(net.pos)
        req = net.pis[:4]
        values = {pi: 0 for pi in net.pis}
        values[req[1]] = 1
        values[req[3]] = 1
        out = sim.run_vector(values)
        grants = [out[po[f"g{i}"]] for i in range(4)]
        assert grants == [0, 1, 0, 0]
        assert out[po["hit"]] == 0

    def test_at_most_one_grant(self):
        net = control.arbiter("arb", width=5)
        sim = Simulator(net)
        po = dict(net.pos)
        rng = random.Random(0)
        for _ in range(50):
            values = {pi: rng.getrandbits(1) for pi in net.pis}
            out = sim.run_vector(values)
            grants = sum(out[po[f"g{i}"]] for i in range(5))
            assert grants <= 1


class TestMemCtrl:
    def test_command_routed_to_selected_bank(self):
        net = control.mem_ctrl("mc", addr_bits=6, banks=4)
        sim = Simulator(net)
        po = dict(net.pos)
        addr = net.pis[:6]
        cmd = net.pis[6:9]
        refresh = net.pis[9:]
        values = {pi: 0 for pi in net.pis}
        # bank = addr[0:2] = 2; cmd = 1 (read); no refresh.
        values[addr[1]] = 1
        values[cmd[0]] = 1
        out = sim.run_vector(values)
        for bank in range(4):
            assert out[po[f"b{bank}_rd"]] == (1 if bank == 2 else 0)
            assert out[po[f"b{bank}_wr"]] == 0

    def test_refresh_blocks_all_commands(self):
        net = control.mem_ctrl("mc", addr_bits=6, banks=4)
        sim = Simulator(net)
        po = dict(net.pos)
        cmd = net.pis[6:9]
        refresh = net.pis[9:]
        values = {pi: 0 for pi in net.pis}
        values[cmd[0]] = 1
        values[refresh[0]] = 1
        out = sim.run_vector(values)
        assert out[po["busy"]] == 1
        for bank in range(4):
            for tag in ("rd", "wr", "pre", "act"):
                assert out[po[f"b{bank}_{tag}"]] == 0


class TestLog2:
    def test_leading_one_position(self):
        net = arithmetic.log2_approx("l2", width=8)
        sim = Simulator(net)
        po = dict(net.pos)
        for value in (1, 2, 5, 17, 128, 255):
            values = {net.pis[i]: (value >> i) & 1 for i in range(8)}
            out = sim.run_vector(values)
            expected = value.bit_length() - 1
            got = sum(
                out[po[f"log{b}"]] << b
                for b in range(3)
                if f"log{b}" in po
            )
            assert got == expected, value
            assert out[po["nonzero"]] == 1

    def test_zero_input(self):
        net = arithmetic.log2_approx("l2", width=8)
        sim = Simulator(net)
        po = dict(net.pos)
        out = sim.run_vector({pi: 0 for pi in net.pis})
        assert out[po["nonzero"]] == 0


class TestCordic:
    def test_validates_and_depends_on_angle(self):
        net = arithmetic.cordic("c", width=5, iterations=2)
        validate(net)
        sim = Simulator(net)
        base = {pi: 0 for pi in net.pis}
        x_pis = net.pis[:5]
        base[x_pis[1]] = 1  # x = 2
        out_a = sim.run_vector(base)
        flipped = dict(base)
        angle = net.pis[10:]
        flipped[angle[0]] = 1
        out_b = sim.run_vector(flipped)
        po_nodes = [uid for _, uid in net.pos]
        assert any(out_a[uid] != out_b[uid] for uid in po_nodes)


class TestRandomDag:
    def test_deterministic_and_valid(self):
        a = random_logic.random_dag("r", num_inputs=8, num_gates=40, num_outputs=5, seed=3)
        b = random_logic.random_dag("r", num_inputs=8, num_gates=40, num_outputs=5, seed=3)
        validate(a)
        assert a.num_gates == b.num_gates
        from tests.conftest import networks_equal

        assert networks_equal(a, b)

    def test_different_seed_differs(self):
        a = random_logic.random_dag("r", num_inputs=8, num_gates=40, num_outputs=5, seed=3)
        b = random_logic.random_dag("r", num_inputs=8, num_gates=40, num_outputs=5, seed=4)
        from tests.conftest import networks_equal

        assert not networks_equal(a, b)

    def test_outputs_reachable_logic_only(self):
        net = random_logic.random_dag("r", num_inputs=8, num_gates=40, num_outputs=5, seed=3)
        # remove_dangling ran inside the generator: every gate reaches a PO.
        assert net.remove_dangling() == 0


class TestItcLike:
    def test_datapath_add_sub_behaviour(self):
        net = random_logic.itc_like("b", 8, 60, 6, seed=5, datapath_width=4)
        validate(net)
        sim = Simulator(net)
        po = dict(net.pos)
        result_pos = [po[f"r{i}"] for i in range(4)]
        # With all control inputs fixed, r = a+b or a-b (mod 16) depending
        # on the select signal; verify it is one of the two for samples.
        a_pis = net.pis[8:12]
        b_pis = net.pis[12:16]
        rng = random.Random(0)
        for _ in range(20):
            values = {pi: rng.getrandbits(1) for pi in net.pis}
            x = sum(values[a_pis[i]] << i for i in range(4))
            y = sum(values[b_pis[i]] << i for i in range(4))
            out = sim.run_vector(values)
            got = sum(out[result_pos[i]] << i for i in range(4))
            assert got in ((x + y) % 16, (x - y) % 16), (x, y, got)


class TestPla:
    def test_terms_have_bounded_literals(self):
        net = pla.random_pla("p", 16, 8, 30, seed=2, literals_per_term=(3, 5))
        validate(net)
        assert net.num_gates > 30  # terms + inverters + or-trees

    def test_multilevel_depth_grows(self):
        shallow = pla.random_multilevel_pla("p", 12, 6, 20, seed=2, depth=1)
        deep = pla.random_multilevel_pla("p", 12, 6, 20, seed=2, depth=3)
        assert deep.depth() > shallow.depth()
