"""Hybrid random + guided generation (paper §6.5, Figure 7).

Random simulation splits classes quickly at first but plateaus; guided
generators (RevS / SimGen) keep splitting but cost more per vector.  The
hybrid runs random simulation until the Equation-5 cost is unchanged for
``patience`` consecutive iterations, then hands over to the guided
generator — the switching rule used for Figure 7 ("after random simulation
achieves the same cost in three consecutive iterations").
"""

from __future__ import annotations

from typing import Sequence

from repro.core.generator import BaseVectorGenerator
from repro.core.random_gen import RandomGenerator
from repro.simulation.patterns import InputVector


def classes_cost(classes: Sequence[Sequence[int]]) -> int:
    """Equation 5 over raw member lists: sum of (size - 1)."""
    return sum(len(c) - 1 for c in classes if len(c) >= 1)


class HybridGenerator(BaseVectorGenerator):
    """Random first, guided after the cost stagnates."""

    def __init__(
        self,
        network,
        guided: BaseVectorGenerator,
        seed: int = 0,
        patience: int = 3,
        random_vectors_per_iteration: int = 32,
    ):
        super().__init__(network, seed)
        self.guided = guided
        self.patience = patience
        self.random_stage = RandomGenerator(
            network, seed, random_vectors_per_iteration
        )
        self.name = f"hybrid[rand->{guided.name}]"
        self._last_cost: int | None = None
        self._stagnant = 0
        self._switched = False

    @property
    def switched(self) -> bool:
        """True once generation has handed over to the guided stage."""
        return self._switched

    def generate(self, classes: Sequence[Sequence[int]]) -> list[InputVector]:
        if not self._switched:
            cost = classes_cost(classes)
            if self._last_cost is not None and cost == self._last_cost:
                self._stagnant += 1
            else:
                self._stagnant = 0
            self._last_cost = cost
            if self._stagnant >= self.patience:
                self._switched = True
        if self._switched:
            return self.guided.generate(classes)
        return self.random_stage.generate(classes)
