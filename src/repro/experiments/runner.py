"""Per-benchmark experiment execution (the glue of Figure 2).

One :class:`ExperimentRunner` caches the LUT-mapped sweep instances and
runs (benchmark, strategy) combinations through the sweeping engine,
returning flat :class:`BenchmarkRun` records the table/figure modules
aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.benchgen.suite import sweep_instance
from repro.core.strategies import make_generator
from repro.experiments.config import ExperimentConfig
from repro.network.network import Network
from repro.obs import NULL_TRACER
from repro.runtime.budget import Budget
from repro.sweep.engine import SweepConfig, SweepEngine


@dataclass(slots=True)
class BenchmarkRun:
    """Everything measured for one (benchmark, strategy) combination."""

    benchmark: str
    strategy: str
    luts: int
    pis: int
    cost_initial: int
    cost_final: int
    cost_history: list[int] = field(default_factory=list)
    sim_time: float = 0.0
    sat_calls: int = 0
    sat_time: float = 0.0
    proven: int = 0
    disproven: int = 0
    unknown: int = 0
    escalations: int = 0
    unknown_after_escalation: int = 0
    deadline_expired: bool = False


class ExperimentRunner:
    """Runs strategies over the benchmark suite with instance caching."""

    def __init__(self, config: Optional[ExperimentConfig] = None):
        self.config = config or ExperimentConfig()
        self._instances: dict[tuple[str, int], Network] = {}
        # Whole runs are deterministic (seeded), so identical requests can
        # be served from cache — e.g. Figure 5 reuses Table 2's sweeps.
        self._runs: dict[tuple[str, str, bool, int, int], BenchmarkRun] = {}
        self._tracer = None  # opened lazily from config.trace_path

    @property
    def tracer(self):
        """The harness-wide tracer (:data:`NULL_TRACER` when disabled).

        All sweeps of one experiment invocation share a single trace file;
        each run gets its own ``run`` span (cache hits emit nothing).
        """
        if self._tracer is None:
            if self.config.trace_path is None:
                self._tracer = NULL_TRACER
            else:
                from repro.obs import Tracer

                self._tracer = Tracer(
                    self.config.trace_path,
                    meta={
                        "command": "experiments",
                        "jobs": self.config.jobs,
                        "seed": self.config.seed,
                    },
                )
        return self._tracer

    def close(self) -> None:
        """Flush and close the trace file (no-op when tracing is off)."""
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.close()

    def instance(self, benchmark: str, copies: int = 1) -> Network:
        """The (cached) LUT-mapped sweep instance of a benchmark."""
        key = (benchmark, copies)
        if key not in self._instances:
            self._instances[key] = sweep_instance(
                benchmark, k=self.config.k, copies=copies
            )
        return self._instances[key]

    def sweep_config(self) -> SweepConfig:
        cfg = self.config
        # A fresh Budget per run: deadlines are monotonic-clock based and
        # must start ticking when the sweep does, not at config time.
        budget = None if cfg.timeout_s is None else Budget(seconds=cfg.timeout_s)
        return SweepConfig(
            seed=cfg.sweep_seed,
            random_rounds=cfg.random_rounds,
            random_width=cfg.random_width,
            iterations=cfg.iterations,
            sat_conflict_limit=cfg.sat_conflict_limit,
            budget=budget,
            max_escalations=cfg.max_escalations,
            escalation_factor=cfg.escalation_factor,
            jobs=cfg.jobs,
            tracer=self.tracer if self.tracer.enabled else None,
        )

    def run(
        self,
        benchmark: str,
        strategy: str,
        with_sat: bool = True,
        copies: int = 1,
        generator_seed: Optional[int] = None,
    ) -> BenchmarkRun:
        """One full (or simulation-only) sweep of a benchmark.

        Args:
            benchmark: Suite benchmark name.
            strategy: Generator name (``RandS``/``RevS``/``SI+RD``/.../
                ``AI+DC+MFFC``) or ``none`` for random-rounds only.
            with_sat: Run the SAT phase (needed for Table 2 / Figs 5-6;
                Table 1 only measures the simulation phase).
            copies: ``&putontop`` copies for the scaled study.
            generator_seed: Overrides the config's generator seed (used by
                Table 1's multi-seed averaging).
        """
        seed = self.config.seed if generator_seed is None else generator_seed
        key = (benchmark, strategy, with_sat, copies, seed)
        if key in self._runs:
            return self._runs[key]
        network = self.instance(benchmark, copies)
        cfg = self.config
        generator = None
        if strategy.lower() != "none":
            generator = make_generator(
                strategy,
                network,
                seed=seed,
                vectors_per_iteration=cfg.vectors_per_iteration,
                max_targets=cfg.max_targets,
            )
        engine = SweepEngine(network, generator, self.sweep_config())
        with self.tracer.span(
            "run",
            kind="experiment",
            benchmark=benchmark,
            strategy=strategy,
            copies=copies,
        ):
            classes, metrics = engine.run_simulation_phase()
            if with_sat:
                engine.run_sat_phase(classes, metrics)
        self._runs[key] = BenchmarkRun(
            benchmark=benchmark,
            strategy=strategy,
            luts=network.num_gates,
            pis=len(network.pis),
            cost_initial=metrics.cost_history[0],
            cost_final=metrics.final_cost,
            cost_history=list(metrics.cost_history),
            sim_time=metrics.sim_time,
            sat_calls=metrics.sat_calls,
            sat_time=metrics.sat_time,
            proven=metrics.proven,
            disproven=metrics.disproven,
            unknown=metrics.unknown,
            escalations=metrics.escalations,
            unknown_after_escalation=metrics.unknown_after_escalation,
            deadline_expired=metrics.deadline_expired,
        )
        return self._runs[key]
