"""Bench: regenerate Table 1 (cost / sim runtime of all five strategies).

``pytest benchmarks/bench_table1.py --benchmark-only`` times one full
Table-1 matrix and prints the table the paper reports (§6.2).
"""

from __future__ import annotations

from repro.experiments.table1 import run_table1


def test_table1(benchmark, config, shared_runner):
    result = benchmark.pedantic(
        run_table1,
        kwargs={"config": config, "runner": shared_runner},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    # Reproduction shape: every SimGen variant must beat RevS on aggregate
    # cost, mirroring the paper's Table 1 ordering.
    assert result.aggregate_cost["AI+DC+MFFC"] < 1.0
    assert result.aggregate_cost["AI+RD"] < 1.0
    assert result.aggregate_cost["SI+RD"] < 1.0
