"""Experiment configuration shared by every table/figure harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.benchgen.suite import benchmark_names

#: A fast-turnaround subset covering all three suites (used by --quick and
#: by the pytest-benchmark harness defaults).
QUICK_BENCHMARKS: tuple[str, ...] = (
    "alu4",
    "apex2",
    "cps",
    "misex3",
    "pdc",
    "priority",
    "dec",
    "arbiter",
    "b14_C",
    "b15_C",
)

#: Benchmarks (and copy counts) of the scaled study, mirroring the paper's
#: Table 2 lower half: "(n)" is the number of stacked copies.  The paper
#: stacks 5-15 copies on a C testbed; pure-Python sweeping uses fewer.
SCALED_BENCHMARKS: tuple[tuple[str, int], ...] = (
    ("alu4", 4),
    ("square", 2),
    ("arbiter", 4),
    ("b15_C2", 2),
    ("b17_C", 2),
    ("b17_C2", 2),
    ("b20_C2", 2),
    ("b21_C2", 2),
    ("b22_C", 2),
)


@dataclass(slots=True)
class ExperimentConfig:
    """Knobs of the §6.1 methodology.

    Defaults follow the paper where stated (one round of random simulation,
    20 generator iterations, K=6 LUT mapping) and are scaled to
    Python-tractable sizes elsewhere (see EXPERIMENTS.md).
    """

    benchmarks: tuple[str, ...] = field(
        default_factory=lambda: tuple(benchmark_names())
    )
    #: K of the LUT mapping ("if -K 6").
    k: int = 6
    #: Generator RNG seed.
    seed: int = 42
    #: Sweep-engine RNG seed.
    sweep_seed: int = 7
    #: Rounds of initial random simulation (paper §6.1: one round).
    random_rounds: int = 1
    #: Patterns per random round.
    random_width: int = 8
    #: Guided iterations (paper §6.1: SimGen "runs for 20 iterations").
    iterations: int = 20
    #: Vectors emitted per guided iteration.
    vectors_per_iteration: int = 4
    #: Targets per vector for targeted generators.
    max_targets: int = 8
    #: CDCL conflict budget per pair query.
    sat_conflict_limit: Optional[int] = 20000
    #: Wall-clock deadline per sweep run (None = unbounded).  An expired
    #: run is recorded with ``deadline_expired`` instead of hanging.
    timeout_s: Optional[float] = None
    #: UNKNOWN escalation-ladder rungs per abandoned pair (0 = off).
    max_escalations: int = 0
    #: Conflict-limit growth factor per escalation rung.
    escalation_factor: int = 4
    #: SAT-phase worker processes per sweep (1 = in-process serial path;
    #: results are identical for any value).
    jobs: int = 1
    #: Structured JSONL trace file shared by every sweep of the harness
    #: (None = tracing disabled).  Opened lazily by the runner.
    trace_path: Optional[str] = None
    #: Generator seeds averaged per (benchmark, strategy) in Table 1.  The
    #: paper's decision-heuristic deltas are fractions of a percent; at our
    #: scale a single seed's noise exceeds them, so Table 1 supports
    #: averaging several seeded runs.
    num_seeds: int = 1

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """The --quick configuration (10-benchmark subset)."""
        return cls(benchmarks=QUICK_BENCHMARKS)
