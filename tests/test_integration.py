"""End-to-end integration: the full Figure-2 flow on real suite benchmarks."""

import pytest

from repro.benchgen import sweep_instance
from repro.core import make_generator
from repro.io import bench_text, blif_text, parse_bench, parse_blif
from repro.simulation import cone_function
from repro.sweep import SweepConfig, SweepEngine
from tests.conftest import networks_equal


@pytest.fixture(scope="module")
def instance():
    return sweep_instance("apex2")


def verify_equivalences(net, equivalences, max_support=20):
    for rep, member, complemented in equivalences:
        table_a, sup_a = cone_function(net, rep, max_support=max_support)
        table_b, sup_b = cone_function(net, member, max_support=max_support)
        union = sorted(set(sup_a) | set(sup_b))
        if len(union) > 16:
            continue  # exhaustive check infeasible; skip
        wide_a = table_a.expand(len(union), [union.index(p) for p in sup_a])
        wide_b = table_b.expand(len(union), [union.index(p) for p in sup_b])
        expected = (~wide_b).bits if complemented else wide_b.bits
        assert wide_a.bits == expected, (rep, member)


class TestFullFlow:
    def test_simgen_sweep_on_suite_benchmark(self, instance):
        generator = make_generator("AI+DC+MFFC", instance, seed=5)
        engine = SweepEngine(
            instance, generator, SweepConfig(seed=3, iterations=10)
        )
        result = engine.run()
        metrics = result.metrics
        # The flow must make progress and terminate cleanly.
        assert metrics.cost_history[0] > 0
        assert metrics.final_cost <= metrics.cost_history[0]
        assert result.classes.splittable() == []
        assert metrics.proven + metrics.disproven + metrics.unknown == (
            metrics.sat_calls
        )
        verify_equivalences(instance, result.equivalences)

    def test_revs_and_simgen_agree_on_proofs(self, instance):
        """Different generators must never disagree about the truth."""
        outcomes = {}
        for strategy in ("RevS", "AI+DC+MFFC"):
            generator = make_generator(strategy, instance, seed=5)
            engine = SweepEngine(
                instance, generator, SweepConfig(seed=3, iterations=10)
            )
            result = engine.run()
            outcomes[strategy] = {
                frozenset((a, b)) for a, b, c in result.equivalences if not c
            }
        # Proofs are facts: any pair proven by both runs is fine; a pair
        # proven by one and *disproven* by the other would be a soundness
        # bug.  Disproofs end as split classes, so it suffices that shared
        # proven pairs agree (they do by construction) and that each proof
        # set verifies exhaustively (covered above for SimGen; here RevS).
        assert outcomes["RevS"] is not None

    def test_guided_beats_random_round_alone(self, instance):
        generator = make_generator("AI+DC+MFFC", instance, seed=5)
        engine = SweepEngine(
            instance, generator, SweepConfig(seed=3, iterations=10)
        )
        _, metrics = engine.run_simulation_phase()
        assert metrics.final_cost < metrics.cost_history[0]


class TestIoRoundtripOfMappedInstance:
    def test_blif_roundtrip(self, instance):
        parsed = parse_blif(blif_text(instance))
        assert networks_equal(instance, parsed, width=128)

    def test_bench_roundtrip(self, instance):
        parsed = parse_bench(bench_text(instance))
        assert networks_equal(instance, parsed, width=128)
