"""Algorithm 1 (SimGenGenerator): realization, skipping, determinism."""

import random

import pytest

from repro.core import (
    DecisionStrategy,
    ImplicationStrategy,
    SimGenGenerator,
    make_generator,
)
from repro.simulation import Simulator
from tests.conftest import random_network


def achievable_golds(net, sim, target):
    """Which output values the target can take over all PI patterns."""
    seen = set()
    for m in range(1 << len(net.pis)):
        vector = {pi: (m >> i) & 1 for i, pi in enumerate(net.pis)}
        seen.add(sim.run_vector(vector)[target])
    return seen


class TestRealization:
    """The paper's core promise: a generated vector realizes its targets."""

    @pytest.mark.parametrize("seed", range(10))
    def test_single_target_realized(self, seed):
        net = random_network(seed=seed, num_inputs=4, num_gates=10)
        sim = Simulator(net)
        rng = random.Random(seed)
        generator = SimGenGenerator(net, seed=seed)
        for target in [uid for uid in net.node_ids() if net.node(uid).is_gate][:6]:
            feasible = achievable_golds(net, sim, target)
            for gold in (0, 1):
                report = generator.generate_for_targets({target: gold})
                # Single-target vectors are always "skipped" (no opposite
                # pair), but survivors tell us what was achieved.
                if target in report.survivors and gold in feasible:
                    pi_values = {
                        pi: rng.getrandbits(1) for pi in net.pis
                    }
                    # survivors imply an assignment existed; re-run with the
                    # assignment's PI values to confirm realization
                    assignment_vec = generator_vector(generator, {target: gold})
                    if assignment_vec is None:
                        continue
                    pi_values.update(assignment_vec)
                    values = sim.run_vector(pi_values)
                    assert values[target] == gold

    @pytest.mark.parametrize("seed", range(8))
    def test_pair_vector_splits_pair(self, seed):
        """A non-skipped vector must realize an opposite-OUTgold pair."""
        net = random_network(seed=seed + 50, num_inputs=5, num_gates=12)
        sim = Simulator(net)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        rng = random.Random(seed)
        generator = SimGenGenerator(net, seed=seed)
        checked = 0
        for _ in range(20):
            pair = rng.sample(gates, 2)
            outgold = {pair[0]: 0, pair[1]: 1}
            report = generator.generate_for_targets(outgold)
            if report.skipped or report.vector is None:
                continue
            checked += 1
            full = report.vector.completed(net.pis, rng)
            values = sim.run_vector(full.values)
            realized = [
                uid for uid in report.survivors if values[uid] == outgold[uid]
            ]
            gold_values = {outgold[uid] for uid in realized}
            assert gold_values == {0, 1}, (
                f"vector does not split the pair: {report.survivors}"
            )
        assert checked > 0, "no pair vector was ever produced"


def generator_vector(generator, outgold):
    report = generator.generate_for_targets(outgold)
    if report.vector is None:
        # single targets are reported as skipped; re-extract the PI values
        # by re-running Algorithm 1's assignment through survivors
        return None
    return report.vector.values


class TestSkipping:
    def test_equal_golds_always_skipped(self, and_or_network):
        net, ids = and_or_network
        generator = SimGenGenerator(net, seed=0)
        report = generator.generate_for_targets(
            {ids["inner"]: 1, ids["out"]: 1}
        )
        assert report.skipped
        assert report.vector is None

    def test_impossible_pair_skipped(self):
        """Two names for the same node cannot take opposite values."""
        from repro.network import NetworkBuilder

        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.not_(builder.not_(g1))
        builder.po(g2)
        net = builder.build()
        generator = SimGenGenerator(net, seed=1)
        report = generator.generate_for_targets({g1: 1, g2: 0})
        assert report.skipped


class TestDeterminism:
    def test_same_seed_same_reports(self):
        net = random_network(seed=4, num_inputs=5, num_gates=14)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        outgold = {gates[0]: 0, gates[3]: 1, gates[5]: 0}
        a = SimGenGenerator(net, seed=9).generate_for_targets(outgold)
        b = SimGenGenerator(net, seed=9).generate_for_targets(outgold)
        assert a.skipped == b.skipped
        if a.vector is not None:
            assert a.vector.values == b.vector.values

    def test_generate_interface_deterministic(self):
        net = random_network(seed=4, num_inputs=5, num_gates=14)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        classes = [gates[:4], gates[4:8]]
        vec_a = make_generator("AI+DC+MFFC", net, seed=3).generate(classes)
        vec_b = make_generator("AI+DC+MFFC", net, seed=3).generate(classes)
        assert [v.values for v in vec_a] == [v.values for v in vec_b]


class TestStrategyMatrix:
    @pytest.mark.parametrize(
        "impl,dec",
        [
            (ImplicationStrategy.SIMPLE, DecisionStrategy.RANDOM),
            (ImplicationStrategy.ADVANCED, DecisionStrategy.RANDOM),
            (ImplicationStrategy.ADVANCED, DecisionStrategy.DC),
            (ImplicationStrategy.ADVANCED, DecisionStrategy.DC_MFFC),
        ],
    )
    def test_all_configurations_produce_valid_vectors(self, impl, dec):
        net = random_network(seed=6, num_inputs=5, num_gates=14)
        sim = Simulator(net)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        generator = SimGenGenerator(
            net, seed=2, implication_strategy=impl, decision_strategy=dec
        )
        rng = random.Random(0)
        produced = 0
        for _ in range(15):
            pair = rng.sample(gates, 4)
            outgold = {uid: i % 2 for i, uid in enumerate(sorted(pair))}
            report = generator.generate_for_targets(outgold)
            if report.vector is None:
                continue
            produced += 1
            full = report.vector.completed(net.pis, rng)
            values = sim.run_vector(full.values)
            golds = {
                outgold[uid]
                for uid in report.survivors
                if values[uid] == outgold[uid]
            }
            assert golds == {0, 1}
        assert produced > 0

    def test_reports_accumulate_stats(self):
        net = random_network(seed=6)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        generator = SimGenGenerator(net, seed=2)
        generator.generate([gates[:6]])
        assert generator.reports
        report = generator.reports[0]
        assert report.implications >= 0
        assert report.decisions >= 0
