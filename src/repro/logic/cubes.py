"""Cubes, truth-table *rows*, and irredundant SOP (ISOP) extraction.

SimGen's implication and decision steps (paper §4–§5) operate on the *rows*
of a node's truth table: compact input patterns that may contain don't-cares
(DCs), together with the output value they produce.  Figure 3 of the paper
shows such a table.  We obtain the rows by computing an irredundant
sum-of-products cover of the onset (rows with output 1) and of the offset
(rows with output 0) using the Minato–Morreale ISOP construction; together
those covers partition-cover every minterm, which is exactly the property
the advanced-implication soundness argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional, Sequence

from repro.errors import LogicError
from repro.logic.truthtable import MAX_VARS, TruthTable


@dataclass(frozen=True, slots=True)
class Cube:
    """A product term over ``num_vars`` inputs.

    Attributes:
        num_vars: Arity of the underlying function.
        mask: Bit ``i`` set iff input ``i`` is bound (not a don't-care).
        values: Bound inputs' values; must satisfy ``values & ~mask == 0``.
    """

    num_vars: int
    mask: int
    values: int

    def __post_init__(self) -> None:
        limit = (1 << self.num_vars) - 1
        if not 0 <= self.mask <= limit:
            raise LogicError(f"cube mask 0x{self.mask:x} out of range")
        if self.values & ~self.mask:
            raise LogicError("cube values set outside mask")

    @classmethod
    def full_dc(cls, num_vars: int) -> "Cube":
        """The universal cube (every input a don't-care)."""
        return cls(num_vars, 0, 0)

    @classmethod
    def from_literals(cls, literals: Sequence[Optional[int]]) -> "Cube":
        """Build from a per-input list of 0, 1, or ``None`` (don't-care)."""
        mask = 0
        values = 0
        for i, lit in enumerate(literals):
            if lit is None:
                continue
            if lit not in (0, 1):
                raise LogicError(f"literal {lit!r} at input {i} is not 0/1/None")
            mask |= 1 << i
            if lit:
                values |= 1 << i
        return cls(len(literals), mask, values)

    # ------------------------------------------------------------------
    def literal(self, index: int) -> Optional[int]:
        """The literal at input ``index``: 0, 1, or ``None`` for DC."""
        if not 0 <= index < self.num_vars:
            raise LogicError(f"input index {index} out of range")
        if not (self.mask >> index) & 1:
            return None
        return (self.values >> index) & 1

    def literals(self) -> list[Optional[int]]:
        """Per-input literal list (0, 1, or None)."""
        return [self.literal(i) for i in range(self.num_vars)]

    def num_bound(self) -> int:
        """Number of bound (non-DC) inputs."""
        return self.mask.bit_count()

    def num_dc(self) -> int:
        """Number of don't-care inputs (Equation 1's ``dc_size`` numerator)."""
        return self.num_vars - self.num_bound()

    def contains(self, minterm: int) -> bool:
        """True if the input pattern ``minterm`` lies inside this cube."""
        return (minterm & self.mask) == self.values

    def with_literal(self, index: int, value: int) -> "Cube":
        """A copy with input ``index`` additionally bound to ``value``."""
        if value not in (0, 1):
            raise LogicError(f"literal value must be 0/1, got {value!r}")
        bit = 1 << index
        new_values = (self.values & ~bit) | (bit if value else 0)
        return Cube(self.num_vars, self.mask | bit, new_values)

    def to_truthtable(self) -> TruthTable:
        """The characteristic function of the cube."""
        bits = 0
        for m in range(1 << self.num_vars):
            if self.contains(m):
                bits |= 1 << m
        return TruthTable(self.num_vars, bits)

    def compatible_with(
        self, inputs: Sequence[Optional[int]]
    ) -> bool:
        """True if no *assigned* input contradicts a bound literal.

        A don't-care literal is compatible with any assignment, and an
        unassigned input is compatible with any literal — this is the row
        "matching" relation of paper §4.
        """
        if len(inputs) != self.num_vars:
            raise LogicError("assignment arity mismatch")
        for i, value in enumerate(inputs):
            if value is None:
                continue
            lit = self.literal(i)
            if lit is not None and lit != value:
                return False
        return True

    def __str__(self) -> str:
        chars = {None: "-", 0: "0", 1: "1"}
        return "".join(chars[self.literal(i)] for i in range(self.num_vars))


@dataclass(frozen=True, slots=True)
class Row:
    """A truth-table row: an input cube plus the output it produces."""

    cube: Cube
    output: int

    def __post_init__(self) -> None:
        if self.output not in (0, 1):
            raise LogicError(f"row output must be 0/1, got {self.output!r}")

    @property
    def num_vars(self) -> int:
        return self.cube.num_vars

    def literal(self, index: int) -> Optional[int]:
        return self.cube.literal(index)

    def literals(self) -> list[Optional[int]]:
        return self.cube.literals()

    def dc_size(self) -> int:
        """Equation 1: the number of don't-care inputs in the row."""
        return self.cube.num_dc()

    def matches(
        self, inputs: Sequence[Optional[int]], output: Optional[int]
    ) -> bool:
        """Row-matching relation: agree with every assigned pin."""
        if output is not None and output != self.output:
            return False
        return self.cube.compatible_with(inputs)

    def __str__(self) -> str:
        return f"{self.cube} -> {self.output}"


# ----------------------------------------------------------------------
# Minato–Morreale ISOP
# ----------------------------------------------------------------------

#: Per-arity (full minterm mask, per-variable projection masks) — hoisted so
#: the ISOP recursion runs on plain integers with no TruthTable churn.
_ISOP_MASKS = tuple(
    (
        TruthTable.full_mask(n),
        tuple(TruthTable.var(n, i).bits for i in range(n)),
    )
    for n in range(MAX_VARS + 1)
)


def _isop_bits(
    num_vars: int, lower: int, upper: int, full: int, vmasks: tuple[int, ...]
) -> tuple[list[tuple[int, int]], int]:
    """Integer-only core of :func:`_isop`.

    ``lower``/``upper`` are minterm masks; returns the cubes as packed
    ``(mask, values)`` integer pairs plus the minterm mask of their
    characteristic function.  Carrying plain int pairs through the
    recursion (the :class:`Cube` objects are built once at the API
    boundary) keeps the hot cold-start path free of dataclass churn.  The
    recursion mirrors the classic construction exactly (same variable
    order, same cube order) so covers are bit-for-bit reproducible.
    """
    if lower == 0:
        return [], 0
    if upper == full:
        return [(0, 0)], full

    # Pick the highest variable either bound actually depends on.
    var = -1
    for i in reversed(range(num_vars)):
        blk = 1 << i
        half = full & ~vmasks[i]
        if ((lower ^ (lower >> blk)) & half) or (
            (upper ^ (upper >> blk)) & half
        ):
            var = i
            break
    if var < 0:  # pragma: no cover - bounds constant yet not caught above
        raise LogicError("ISOP invariant violated: no support variable")

    blk = 1 << var
    vm = vmasks[var]
    lo = full & ~vm
    l0 = lower & lo
    l0 |= l0 << blk
    l1 = lower & vm
    l1 |= l1 >> blk
    u0 = upper & lo
    u0 |= u0 << blk
    u1 = upper & vm
    u1 |= u1 >> blk

    cubes0, f0 = _isop_bits(num_vars, l0 & ~u1, u0, full, vmasks)
    cubes1, f1 = _isop_bits(num_vars, l1 & ~u0, u1, full, vmasks)
    cubes2, f2 = _isop_bits(
        num_vars, (l0 & ~f0) | (l1 & ~f1), u0 & u1, full, vmasks
    )

    # The sub-recursions never bind ``var``, so binding it here is plain
    # bit arithmetic (the 0-branch leaves values untouched).
    cubes = (
        [(m | blk, v) for m, v in cubes0]
        + [(m | blk, v | blk) for m, v in cubes1]
        + cubes2
    )
    func_bits = (lo & f0) | (vm & f1) | f2
    return cubes, func_bits


def _isop(lower: TruthTable, upper: TruthTable) -> tuple[list[Cube], TruthTable]:
    """Compute an irredundant SOP ``F`` with ``lower <= F <= upper``.

    Returns the cube list and its characteristic function.
    """
    num_vars = lower.num_vars
    full, vmasks = _ISOP_MASKS[num_vars]
    pairs, func_bits = _isop_bits(num_vars, lower.bits, upper.bits, full, vmasks)
    cubes = [Cube(num_vars, m, v) for m, v in pairs]
    return cubes, TruthTable(num_vars, func_bits)


def isop(table: TruthTable) -> list[Cube]:
    """An irredundant SOP cover of ``table``'s onset."""
    num_vars = table.num_vars
    full, vmasks = _ISOP_MASKS[num_vars]
    pairs, func_bits = _isop_bits(num_vars, table.bits, table.bits, full, vmasks)
    if func_bits != table.bits:  # pragma: no cover - algorithmic safety net
        raise LogicError("ISOP result does not equal the input function")
    return [Cube(num_vars, m, v) for m, v in pairs]


@lru_cache(maxsize=16384)
def isop_cover(table: TruthTable) -> tuple[Cube, ...]:
    """Cached, immutable :func:`isop` — LUT networks reuse few functions,
    so repeated cone encodings hit this instead of re-deriving the cover."""
    return tuple(isop(table))


@lru_cache(maxsize=16384)
def rows_of(table: TruthTable) -> tuple[Row, ...]:
    """All rows of ``table``: ISOP of the onset plus ISOP of the offset.

    Every minterm of the input space is contained in at least one row, and
    every row produces the function's value on all its minterms.  Rows are
    cached per function since LUT networks reuse few distinct functions.
    """
    onset = tuple(Row(c, 1) for c in isop(table))
    offset = tuple(Row(c, 0) for c in isop(~table))
    return onset + offset


@lru_cache(maxsize=16384)
def packed_rows(table: TruthTable) -> tuple[tuple[int, int, int], ...]:
    """Rows of ``table`` as ``(mask, values, output)`` integer triples.

    The packed form supports O(1) matching against a partial pin assignment
    expressed as ``(known_mask, known_values)``: a row matches iff
    ``(values ^ known_values) & (mask & known_mask) == 0`` and the output
    agrees — the hot path of the implication engine.
    """
    return tuple(
        (row.cube.mask, row.cube.values, row.output) for row in rows_of(table)
    )


def matching_rows(
    table: TruthTable,
    inputs: Sequence[Optional[int]],
    output: Optional[int],
) -> list[Row]:
    """The rows of ``table`` compatible with a partial pin assignment."""
    return [row for row in rows_of(table) if row.matches(inputs, output)]


def iter_minterms(cube: Cube) -> Iterator[int]:
    """Iterate the minterms contained in a cube (exponential in DC count)."""
    free = [i for i in range(cube.num_vars) if not (cube.mask >> i) & 1]
    for combo in range(1 << len(free)):
        m = cube.values
        for j, i in enumerate(free):
            if (combo >> j) & 1:
                m |= 1 << i
        yield m
