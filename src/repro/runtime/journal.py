"""Write-ahead verdict journal: durable, resumable SAT-sweep sessions.

A sweep that dies — worker crash, OOM kill, SIGKILL of the coordinator —
loses every verdict it proved.  The :class:`VerdictJournal` fixes that:
each pair verdict (EQ / NEQ / UNKNOWN, counterexample, attempt metadata)
is appended to a CRC-guarded JSONL file *before* it is merged, and a
resumed run replays the journal instead of re-solving.

Durability format
-----------------

One record per line::

    <crc32 of payload, 8 hex chars> TAB <payload JSON> NEWLINE

The first record is a ``header`` carrying the journal version, the
network's structural fingerprint (:func:`repro.transforms.strash.network_signature`)
and the sweep-configuration fingerprint; every later record is a
``verdict``.  Appends are single ``write`` calls followed by ``fsync``,
so a crash can only produce a *torn tail* — a partial or CRC-failing
final record — which the loader detects and truncates.  A bad record
*followed by valid ones* means real corruption and raises
:class:`~repro.errors.JournalError` (the journal cannot be trusted).

Replay keys
-----------

Verdicts are keyed by ``(sig(rep), sig(member), complemented, limit)``
using the structural node signatures of :mod:`repro.transforms.strash` —
never by uids, which depend on construction order.  Journaled runs force
*query-pure* SAT checking (a fresh solver and cone encoding per query, see
``SweepConfig.incremental_sat``), so a verdict — including its
counterexample model and conflict count — is a pure function of the pair's
cone structure.  Two consequences:

* **Resume identity**: replaying a prefix of verdicts and re-solving the
  rest reproduces the uninterrupted trajectory bit-for-bit.
* **Sound twin sharing**: structurally identical pairs share a key, and
  sharing is sound — identical cones encode to identical CNF and yield
  identical verdicts *and models*.

UNKNOWN verdicts are journaled only when they are deterministic: reached
at the pair's nominal conflict limit with no budget expiry, transient
fault, or worker-loss degradation involved (callers enforce this; see
``SweepEngine``).
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import JournalError
from repro.network.network import Network
from repro.sat.solver import SatResult
from repro.simulation.patterns import InputVector
from repro.transforms.strash import network_signature, node_signatures

#: Journal format version (bumped on incompatible record changes).
JOURNAL_VERSION = 1

#: Sweep-config fields a journal is keyed on.  Execution-shape knobs
#: (``jobs``, ``sat_shards``, backends, tracer, budget) are deliberately
#: absent: verdicts are query-pure, so a journal recorded at ``--jobs 4``
#: replays under ``--jobs 1`` (and vice versa).
FINGERPRINT_FIELDS = (
    "seed",
    "random_rounds",
    "random_width",
    "iterations",
    "include_pis",
    "match_complements",
    "sat_conflict_limit",
    "resimulate_cex",
    "cex_batch_width",
    "max_escalations",
    "escalation_factor",
)


def generator_label(generator) -> str:
    """Backend-invariant label of a guided-vector generator.

    The batch/compiled/reference generator twins produce bit-identical
    trajectories, so the label strips the backend prefixes — a journal
    recorded under one backend resumes under any other.  (Until the
    ``Batch`` prefix was stripped too, a journal written under the
    *default* lane-batched backend refused to resume under
    ``--simgen-backend compiled``/``reference`` despite identical
    trajectories.)
    """
    if generator is None:
        return "none"
    name = type(generator).__name__
    return name.removeprefix("Batch").removeprefix("Compiled")


def config_fingerprint(config, generator=None) -> dict:
    """The trajectory-determining slice of a :class:`SweepConfig`.

    Two runs with equal fingerprints over the same network follow the
    same refinement trajectory, so their journals are interchangeable;
    :meth:`VerdictJournal.bind` refuses a mismatch.
    """
    fingerprint = {name: getattr(config, name) for name in FINGERPRINT_FIELDS}
    fingerprint["generator"] = generator_label(generator)
    return fingerprint


@dataclass(slots=True)
class ReplayRecord:
    """One journaled verdict, decoded against the bound network."""

    outcome: SatResult
    vector: Optional[InputVector]
    conflicts: int
    propagations: int
    #: Escalation rung the verdict was first reached on.
    rung: int


def _encode_line(payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return f"{crc:08x}".encode("ascii") + b"\t" + body + b"\n"


def _parse_line(line: bytes) -> Optional[dict]:
    """Decode one journal line; ``None`` on any damage (torn/corrupt)."""
    crc_hex, sep, body = line.partition(b"\t")
    if not sep or len(crc_hex) != 8:
        return None
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        return None
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        return None
    try:
        payload = json.loads(body)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


class VerdictJournal:
    """Append-only, CRC-guarded verdict log with crash-safe resume.

    Args:
        path: Journal file.  A *non-empty* existing file is refused unless
            ``resume=True`` (accidentally extending an unrelated journal
            would poison both runs); ``resume=True`` with a missing file
            simply starts fresh.
        resume: Load and replay existing records (truncating a torn tail).
        fsync: Fsync every append (the durability guarantee; tests disable
            it for speed only where durability is not under test).
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        resume: bool = False,
        fsync: bool = True,
    ):
        self._path = os.fspath(path)
        self._fsync = fsync
        self._header: Optional[dict] = None
        #: Raw verdict payloads loaded from disk (decoded at bind time).
        self._loaded: list[dict] = []
        #: (sig_a, sig_b, complemented, limit) -> ReplayRecord.
        self._map: dict[tuple, ReplayRecord] = {}
        self._signature: dict[int, int] = {}
        self._pis: list[int] = []
        self._pi_index: dict[int, int] = {}
        self._bound = False
        self._stats = {
            "appends": 0,
            "replayed_verdicts": 0,
            "torn_tail_truncations": 0,
            "loaded_verdicts": 0,
        }
        self._folded: dict[str, int] = {}
        exists = os.path.exists(self._path)
        if exists and not resume and os.path.getsize(self._path) > 0:
            raise JournalError(
                f"journal {self._path} already exists; pass --resume to "
                "continue it or delete it to start over"
            )
        if exists and resume:
            self._load()
        self._handle = open(self._path, "ab")
        if not exists and self._fsync:
            # Per-record fsync makes *appends* durable, but the file's
            # directory entry is only durable once the parent directory is
            # fsync'd — without this, a crash shortly after creation can
            # lose the whole journal despite every record having synced.
            from repro.runtime.atomicio import _fsync_directory

            _fsync_directory(os.path.dirname(self._path) or ".")

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        with open(self._path, "rb") as handle:
            data = handle.read()
        offset = 0
        good_end = 0
        torn = False
        payloads: list[dict] = []
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                # Partial final record: the append was interrupted.
                torn = True
                break
            payload = _parse_line(data[offset:newline])
            if payload is None:
                if data[newline + 1:].strip() == b"":
                    # Damaged *final* record: a torn tail, recoverable.
                    torn = True
                    break
                raise JournalError(
                    f"journal {self._path}: corrupt record at byte "
                    f"{offset} followed by valid records — not a torn "
                    "tail; the journal cannot be trusted (delete it to "
                    "start over)"
                )
            payloads.append(payload)
            offset = newline + 1
            good_end = offset
        if torn:
            with open(self._path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            self._stats["torn_tail_truncations"] += 1
        if not payloads:
            return
        if payloads[0].get("kind") != "header":
            raise JournalError(
                f"journal {self._path}: first record is not a header"
            )
        header = payloads[0]
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal {self._path}: version {header.get('version')!r} "
                f"(this build writes {JOURNAL_VERSION})"
            )
        self._header = header
        for payload in payloads[1:]:
            if payload.get("kind") == "verdict":
                self._loaded.append(payload)
        self._stats["loaded_verdicts"] = len(self._loaded)

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, network: Network, fingerprint: dict) -> None:
        """Attach the journal to a network + configuration fingerprint.

        A fresh journal writes its header here; a resumed journal verifies
        the header matches (same structural network, same trajectory-
        determining configuration) and decodes every loaded verdict
        against the network's signature map.
        """
        net_sig = network_signature(network)
        if self._header is not None:
            if self._header.get("network") != net_sig:
                raise JournalError(
                    f"journal {self._path} was recorded for a different "
                    f"network (journal {self._header.get('network')}, "
                    f"run {net_sig})"
                )
            if self._header.get("fingerprint") != _jsonify(fingerprint):
                raise JournalError(
                    f"journal {self._path} was recorded under a different "
                    "sweep configuration "
                    f"(journal {self._header.get('fingerprint')}, "
                    f"run {_jsonify(fingerprint)})"
                )
        self._signature = node_signatures(network)
        self._pis = list(network.pis)
        self._pi_index = {pi: idx for idx, pi in enumerate(self._pis)}
        if self._header is None:
            header = {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "network": net_sig,
                "fingerprint": _jsonify(fingerprint),
            }
            self._append(header)
            self._header = header
        for payload in self._loaded:
            key = (
                payload["a"],
                payload["b"],
                bool(payload["c"]),
                payload["l"],
            )
            if key in self._map:
                continue
            self._map[key] = ReplayRecord(
                outcome=SatResult(payload["o"]),
                vector=self._decode_vector(payload.get("v")),
                conflicts=int(payload.get("cf", 0)),
                propagations=int(payload.get("pr", 0)),
                rung=int(payload.get("r", 0)),
            )
        self._loaded = []
        self._bound = True

    def _require_bound(self) -> None:
        if not self._bound:
            raise JournalError("journal is not bound to a network yet")

    # ------------------------------------------------------------------
    # Replay + record
    # ------------------------------------------------------------------
    def _key(
        self, rep: int, member: int, complemented: bool, limit: Optional[int]
    ) -> tuple:
        return (
            self._signature[rep],
            self._signature[member],
            bool(complemented),
            limit,
        )

    def lookup(
        self, rep: int, member: int, complemented: bool, limit: Optional[int]
    ) -> Optional[ReplayRecord]:
        """The journaled verdict for this pair key, if one exists."""
        self._require_bound()
        record = self._map.get(self._key(rep, member, complemented, limit))
        if record is not None:
            self._stats["replayed_verdicts"] += 1
        return record

    def record(
        self,
        rep: int,
        member: int,
        complemented: bool,
        limit: Optional[int],
        outcome: SatResult,
        vector: Optional[InputVector],
        conflicts: int,
        propagations: int,
        rung: int = 0,
    ) -> bool:
        """Durably append one verdict (no-op if the key already exists).

        The append hits disk (fsync'd) *before* this returns, so a caller
        that merges after recording can never lose a merged verdict.
        """
        self._require_bound()
        key = self._key(rep, member, complemented, limit)
        if key in self._map:
            return False
        payload = {
            "kind": "verdict",
            "a": key[0],
            "b": key[1],
            "c": int(key[2]),
            "l": limit,
            "o": outcome.value,
            "v": self._encode_vector(vector),
            "cf": int(conflicts),
            "pr": int(propagations),
            "r": int(rung),
        }
        self._append(payload)
        self._map[key] = ReplayRecord(
            outcome=outcome,
            vector=None if vector is None else InputVector(dict(vector.values)),
            conflicts=int(conflicts),
            propagations=int(propagations),
            rung=int(rung),
        )
        self._stats["appends"] += 1
        return True

    def _encode_vector(self, vector: Optional[InputVector]):
        if vector is None:
            return None
        pairs = []
        for uid, bit in vector.values.items():
            index = self._pi_index.get(uid)
            if index is None:
                raise JournalError(
                    f"counterexample assigns non-PI node {uid}; "
                    "cannot journal it positionally"
                )
            pairs.append([index, int(bit)])
        pairs.sort()
        return pairs

    def _decode_vector(self, pairs) -> Optional[InputVector]:
        if pairs is None:
            return None
        return InputVector(
            {self._pis[index]: int(bit) for index, bit in pairs}
        )

    def _append(self, payload: dict) -> None:
        self._handle.write(_encode_line(payload))
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # Stats + lifecycle
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return self._path

    @property
    def stats(self) -> dict:
        """Cumulative counters (appends / replayed_verdicts / ...)."""
        return dict(self._stats)

    def consume_stats(self) -> dict:
        """Counters accumulated since the previous consume (delta).

        Lets several folding sites (sweep SAT phase, CEC fallback) publish
        to one registry without double counting.
        """
        delta = {}
        for key, value in self._stats.items():
            previous = self._folded.get(key, 0)
            if value != previous:
                delta[key] = value - previous
                self._folded[key] = value
        return delta

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._fsync:
                try:
                    os.fsync(self._handle.fileno())
                except OSError:  # pragma: no cover - teardown race
                    pass
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "VerdictJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _jsonify(value):
    """The JSON round-trip image of a value (tuples become lists, ...) so
    header comparisons match what was actually stored on disk."""
    return json.loads(json.dumps(value, sort_keys=True))


def sweep_signature(network: Network, result) -> str:
    """Structural fingerprint of a sweep *outcome* (hex string).

    Hashes the proven equivalences (as signature triples), the final
    class partition, the cost history, and the verdict counts — everything
    the resume-identity acceptance gate compares.  Two runs with equal
    sweep signatures merged the same pairs along the same trajectory.
    """
    signatures = node_signatures(network)
    hasher = hashlib.blake2b(digest_size=16)
    for sig_a, sig_b, comp in sorted(
        (signatures[a], signatures[b], int(c))
        for a, b, c in result.equivalences
    ):
        hasher.update(f"eq:{sig_a:016x},{sig_b:016x},{comp};".encode())
    for cls in sorted(
        tuple(sorted(signatures[uid] for uid in cls))
        for cls in result.classes.all_classes()
    ):
        hasher.update(f"cls:{cls!r};".encode())
    metrics = result.metrics
    hasher.update(f"cost:{metrics.cost_history!r};".encode())
    hasher.update(
        f"verdicts:{metrics.proven},{metrics.disproven},"
        f"{metrics.unknown};".encode()
    )
    return hasher.hexdigest()
