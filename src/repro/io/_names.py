"""Shared emitted-name selection for the netlist writers.

Both writers used to reference every gate as ``n<uid>`` and patch primary
outputs up with buffer alias lines (``f = BUF(n9)`` / ``.names n9 f``).
Reparsing turns each alias into a real buffer gate, so every
parse -> write -> parse round trip grew the network by one gate per output
and the serialization never reached a fixed point.  Naming a gate directly
after the (first) primary output it drives removes the alias whenever that
name is collision-free, making round trips stable.
"""

from __future__ import annotations

from repro.network.network import Network


def gate_names(network: Network) -> dict[int, str]:
    """Emitted name per gate uid.

    A gate takes the name of the first primary output it drives unless that
    name collides with a primary input, an already-assigned name, or some
    other gate's ``n<uid>`` fallback; everything else keeps ``n<uid>``.
    """
    pi_names = {network.node(pi).label() for pi in network.pis}
    first_po: dict[int, str] = {}
    for po_name, uid in network.pos:
        first_po.setdefault(uid, po_name)
    fallbacks = {f"n{node.uid}" for node in network.gates()}
    names: dict[int, str] = {}
    used = set(pi_names)
    for node in network.gates():
        candidate = first_po.get(node.uid)
        if (
            candidate is not None
            and candidate not in used
            and candidate not in fallbacks
        ):
            names[node.uid] = candidate
        else:
            names[node.uid] = f"n{node.uid}"
        used.add(names[node.uid])
    return names
