"""Bench: regenerate Figure 5 (per-benchmark normalized differences, §6.3)."""

from __future__ import annotations

from repro.experiments.fig5 import run_fig5


def test_fig5(benchmark, config, shared_runner):
    result = benchmark.pedantic(
        run_fig5,
        kwargs={"config": config, "runner": shared_runner},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    # Reproduction shape: SimGen is rarely Pareto-dominated by RevS.
    dominated = sum(1 for p in result.points if p.pareto_class() == "dominated")
    assert dominated <= len(result.points) // 2
