"""Shared fixtures for the serving-layer tests.

Jobs run real sweeps, so the workloads are deliberately tiny miters —
enough SAT traffic to exercise the cache, small enough for CI.
"""

import time

import pytest

from repro.io import bench_text
from repro.sat.tseitin import po_miter
from repro.serve import SweepService
from tests.conftest import random_network


def miter_text(seed=9, num_inputs=6, num_gates=30, mutate=None):
    """Bench text of a two-copy miter (every class pair is provable).

    ``mutate`` (a gate index) inverts one gate in *both* copies before
    mitering: the result is still equivalent everywhere, but every cone
    containing the mutated gate changes structural signature — the
    "lightly edited netlist" of the cache-reuse acceptance tests.
    """
    base = random_network(seed=seed, num_inputs=num_inputs, num_gates=num_gates)
    if mutate is not None:
        gates = [n for n in base.gates() if n.num_fanins >= 2]
        victim = gates[mutate % len(gates)]
        victim.table = ~victim.table
    return bench_text(po_miter(base, base))


def run_job(service, request, timeout=120.0):
    """Submit one job and spin until it finishes; returns the Job."""
    answer = service.submit(request)
    assert "id" in answer, answer
    job_id = answer["id"]
    deadline = time.monotonic() + timeout
    while True:
        job = service.job(job_id)
        if job.status not in ("queued", "running"):
            return job
        assert time.monotonic() < deadline, f"job {job_id} stuck: {job.status}"
        time.sleep(0.02)


@pytest.fixture
def service():
    svc = SweepService(workers=2).start()
    yield svc
    svc.shutdown()
