"""Tracer record emission, span lifecycle, and the deterministic projection."""

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Tracer,
    deterministic_projection,
    validate_records,
)


def fake_clock(times):
    """A deterministic clock yielding the given readings in order."""
    readings = iter(times)
    return lambda: next(readings)


class TestTracer:
    def test_header_comes_first_with_schema_and_meta(self):
        records = []
        Tracer(records, meta={"command": "test", "jobs": 3})
        header = records[0]
        assert header["type"] == "header"
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert header["meta"] == {"command": "test", "jobs": 3}
        assert header["i"] == 0

    def test_span_emits_begin_end_with_duration(self):
        records = []
        tracer = Tracer(records, clock=fake_clock([0.0, 1.0, 3.5]))
        with tracer.span("phase", phase="sat"):
            pass
        begin, end = records[1], records[2]
        assert begin["type"] == "begin" and begin["name"] == "phase"
        assert begin["phase"] == "sat"
        assert end["type"] == "end" and end["id"] == begin["id"]
        assert end["dur"] == pytest.approx(2.5)
        assert tracer.open_spans == 0

    def test_span_closes_on_exception(self):
        records = []
        tracer = Tracer(records)
        with pytest.raises(RuntimeError):
            with tracer.span("phase", phase="sat"):
                raise RuntimeError("boom")
        assert tracer.open_spans == 0
        assert validate_records(records) == []

    def test_sequence_numbers_strictly_increase(self):
        records = []
        tracer = Tracer(records)
        tracer.event("a")
        with tracer.span("s"):
            tracer.event("b")
        tracer.counters({"x": 1})
        seqs = [r["i"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_event_with_duration(self):
        records = []
        tracer = Tracer(records)
        tracer.event("sat.call", rep=1, member=2, dur=0.25)
        event = records[-1]
        assert event["type"] == "event"
        assert event["rep"] == 1 and event["dur"] == 0.25

    def test_file_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path, meta={"k": "v"}) as tracer:
            tracer.event("ping")
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "header"
        assert parsed[1]["name"] == "ping"

    def test_file_like_sink_stays_open(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.event("ping")
        tracer.close()
        assert not sink.closed  # caller owns the file
        assert "ping" in sink.getvalue()

    def test_open_spans_counts_unclosed(self):
        records = []
        tracer = Tracer(records)
        tracer.begin("phase")
        assert tracer.open_spans == 1
        assert any("unclosed span" in e for e in validate_records(records))


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("phase", phase="sat"):
            NULL_TRACER.event("x", dur=1.0)
        NULL_TRACER.counters({"a": 1})
        NULL_TRACER.end(NULL_TRACER.begin("y"))
        assert NULL_TRACER.open_spans == 0
        NULL_TRACER.close()


class TestDeterministicProjection:
    def test_strips_header_timing_and_pool_records(self):
        records = []
        tracer = Tracer(records, meta={"jobs": 4})
        with tracer.span("phase", phase="sat"):
            tracer.event("pool.dispatch", count=7)
            tracer.event("sat.call", rep=1, verdict="unsat", dur=0.5)
        tracer.counters({"sweep.proven": 3, "sat.solve.total_s": 0.4})
        projected = deterministic_projection(records)
        assert all(r.get("type") != "header" for r in projected)
        names = [r.get("name") for r in projected]
        assert "pool.dispatch" not in names
        for record in projected:
            assert "t" not in record and "dur" not in record
        counters = [r for r in projected if r["type"] == "counters"][0]
        assert counters["values"] == {"sweep.proven": 3}

    def test_projection_keeps_trajectory_attributes(self):
        records = []
        tracer = Tracer(records)
        tracer.event("sat.call", rep=9, member=4, verdict="sat", conflicts=2)
        (event,) = deterministic_projection(records)
        assert event["rep"] == 9 and event["conflicts"] == 2

    def test_identical_flows_project_identically(self):
        def flow():
            records = []
            tracer = Tracer(records, meta={"run": id(records)})
            with tracer.span("phase", phase="random"):
                tracer.event("refine", step=1, cost=10)
            return records

        assert deterministic_projection(flow()) == deterministic_projection(
            flow()
        )
