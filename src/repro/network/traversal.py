"""Graph traversals used throughout the flow.

Algorithm 1 of the paper calls ``dfs(targetNode)`` to list the fanin cone of
a target in depth-first order; :func:`dfs_fanin` is that routine.  The other
helpers provide cone-restricted topological orders used by the simulator,
the Tseitin encoder, and the sweeping engine.
"""

from __future__ import annotations

from typing import Iterable

from repro.network.network import Network


def dfs_fanin(network: Network, root: int) -> list[int]:
    """Depth-first list of the fanin cone of ``root`` (root first).

    Fanins are visited in declaration order; every node appears once.  The
    returned list is the paper's ``listDfs``.
    """
    order: list[int] = []
    seen: set[int] = set()
    stack = [root]
    while stack:
        uid = stack.pop()
        if uid in seen:
            continue
        seen.add(uid)
        order.append(uid)
        node = network.node(uid)
        # Reverse so the first fanin is explored first.
        for f in reversed(node.fanins):
            if f not in seen:
                stack.append(f)
    return order


def cone_topological_order(network: Network, roots: Iterable[int]) -> list[int]:
    """Topological order restricted to the union of the roots' fanin cones."""
    cone: set[int] = set()
    stack = list(roots)
    while stack:
        uid = stack.pop()
        if uid in cone:
            continue
        cone.add(uid)
        stack.extend(network.node(uid).fanins)
    return [uid for uid in network.topological_order() if uid in cone]


def cone_pis(network: Network, root: int) -> list[int]:
    """Primary inputs in the fanin cone of ``root``, in id order."""
    return sorted(
        uid for uid in dfs_fanin(network, root) if network.node(uid).is_pi
    )


def reachable_fanout(network: Network, root: int) -> set[int]:
    """All nodes in the fanout cone of ``root`` (excluding the root)."""
    seen: set[int] = set()
    stack = list(network.fanouts(root))
    while stack:
        uid = stack.pop()
        if uid in seen:
            continue
        seen.add(uid)
        stack.extend(network.fanouts(uid))
    return seen
