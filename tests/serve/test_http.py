"""The JSON-over-HTTP front end and its stdlib client."""

import json
import threading
import urllib.request

import pytest

from repro.serve import ServeClient, ServeError, build_server, run_server
from tests.serve.conftest import miter_text


@pytest.fixture
def endpoint():
    server = build_server(port=0, workers=2)
    thread = threading.Thread(target=run_server, args=(server,), daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{server.server_address[1]}")
    yield client
    try:
        client.shutdown()
    except ServeError:
        pass  # already shut down by the test
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestRoutes:
    def test_health(self, endpoint):
        assert endpoint.health() == {"ok": True}

    def test_submit_wait_fetch(self, endpoint):
        text = miter_text(num_gates=25)
        job_id = endpoint.submit(
            {"kind": "sweep", "netlist": text, "trace": True}
        )
        state = endpoint.wait(job_id, timeout=120)
        result = state["result"]
        assert result["gates_after"] <= result["gates_before"]
        assert result["netlist"].strip()
        # Same submission again: served from the daemon's verdict cache.
        second = endpoint.wait(
            endpoint.submit({"kind": "sweep", "netlist": text}), timeout=120
        )
        assert second["result"]["netlist"] == result["netlist"]
        assert second["result"]["cache"]["appends"] == 0
        assert second["result"]["metrics"]["sat_time"] == 0.0

    def test_trace_endpoint_with_offset(self, endpoint):
        job_id = endpoint.submit(
            {"kind": "sweep", "netlist": miter_text(num_gates=20), "trace": True}
        )
        endpoint.wait(job_id, timeout=120)
        body = endpoint.trace(job_id)
        assert body.count(b"\n") > 2
        assert endpoint.trace(job_id, offset=len(body) - 7) == body[-7:]

    def test_stats_route(self, endpoint):
        stats = endpoint.stats()
        assert "cache" in stats
        assert "admission" in stats

    def test_unknown_job_404(self, endpoint):
        with pytest.raises(ServeError, match="unknown job"):
            endpoint.job("j999999")

    def test_unknown_path_404(self, endpoint):
        with pytest.raises(ServeError, match="unknown path"):
            endpoint._request("/nope")

    def test_rejected_submission_is_429(self, endpoint):
        with pytest.raises(ServeError, match="kind"):
            endpoint.submit({"kind": "frobnicate", "netlist": "x"})

    def test_bad_json_body_is_400(self, endpoint):
        request = urllib.request.Request(
            endpoint.base_url + "/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "bad JSON" in json.loads(excinfo.value.read())["error"]

    def test_failed_job_surfaces_error(self, endpoint):
        job_id = endpoint.submit({"kind": "sweep", "netlist": "garbage("})
        with pytest.raises(ServeError):
            endpoint.wait(job_id, timeout=60)

    def test_unreachable_daemon(self):
        client = ServeClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServeError, match="cannot reach"):
            client.health()


class TestShutdown:
    def test_shutdown_route_stops_server(self):
        server = build_server(port=0, workers=1)
        thread = threading.Thread(
            target=run_server, args=(server,), daemon=True
        )
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.server_address[1]}")
        assert client.shutdown() == {"stopping": True}
        thread.join(timeout=30)
        assert not thread.is_alive()
