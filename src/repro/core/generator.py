"""Input-vector generation: Algorithm 1 of the paper.

:class:`SimGenGenerator` implements the paper's core loop: order the target
nodes by decreasing depth; per target, assign its OUTgold value, then
alternate implication fixpoints with single decisions until the cone PIs
are set or a conflict reverts the target; finally keep the vector only if a
pair of targets with opposite OUTgold values survived.

The module also defines the generator interface shared by the baselines
(random and reverse simulation) so the sweeping engine can drive any of
them interchangeably — the "SimGen plugin" socket of Figure 2.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.assignment import Assignment, Conflict
from repro.core.decision import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    DecisionEngine,
    DecisionStrategy,
)
from repro.core.implication import ImplicationEngine, ImplicationStrategy
from repro.core.outgold import OutgoldStrategy, alternating_outgold, select_targets
from repro.network.network import Network
from repro.network.traversal import dfs_fanin
from repro.simulation.patterns import InputVector
from repro.simulation.simulator import Simulator


@dataclass(slots=True)
class GenerationReport:
    """Result of generating one vector for a set of targets."""

    #: The vector (partial: only cone PIs are bound), or None when skipped.
    vector: Optional[InputVector]
    #: Targets whose assigned value equals their OUTgold value.
    survivors: list[int] = field(default_factory=list)
    #: True when the vector was skipped (no opposite-OUTgold pair survived).
    skipped: bool = False
    #: Values assigned by implications across the whole call.
    implications: int = 0
    #: Number of decisions taken.
    decisions: int = 0
    #: Number of targets reverted due to conflicts.
    conflicts: int = 0


class BaseVectorGenerator(ABC):
    """Interface of all simulation-vector generators.

    One :meth:`generate` call corresponds to one guided-simulation iteration
    of the paper's flow: given the current equivalence classes, produce the
    input vectors to simulate next.
    """

    name = "base"

    def __init__(self, network: Network, seed: int = 0):
        self.network = network
        self.rng = random.Random(seed)

    @abstractmethod
    def generate(self, classes: Sequence[Sequence[int]]) -> list[InputVector]:
        """Vectors for one iteration, given classes (lists of node ids)."""


class TargetedVectorGenerator(BaseVectorGenerator):
    """Shared machinery for class-targeting generators (RevS and SimGen).

    Per iteration the generator walks the classes in decreasing-size order
    (larger classes dominate the Equation-5 cost) starting from a rotating
    offset, picks target nodes and OUTgold values for each, and asks the
    concrete subclass for a vector.
    """

    def __init__(
        self,
        network: Network,
        seed: int = 0,
        vectors_per_iteration: int = 4,
        max_targets: int = 8,
        outgold_strategy: OutgoldStrategy = alternating_outgold,
    ):
        super().__init__(network, seed)
        self.vectors_per_iteration = vectors_per_iteration
        self.max_targets = max_targets
        self.outgold_strategy = outgold_strategy
        self._rotation = 0
        self.reports: list[GenerationReport] = []
        # One-vector verification simulator (see _finalize).
        self._verifier = Simulator(network)

    @abstractmethod
    def generate_for_targets(
        self, outgold: Mapping[int, int]
    ) -> GenerationReport:
        """Produce one vector realizing as many OUTgold values as possible."""

    def generate(self, classes: Sequence[Sequence[int]]) -> list[InputVector]:
        splittable = [c for c in classes if len(c) >= 2]
        splittable.sort(key=len, reverse=True)
        if not splittable:
            return []
        vectors: list[InputVector] = []
        attempts = 0
        max_attempts = max(
            self.vectors_per_iteration * 4, len(splittable)
        )
        while len(vectors) < self.vectors_per_iteration and attempts < max_attempts:
            cls = splittable[self._rotation % len(splittable)]
            self._rotation += 1
            attempts += 1
            targets = select_targets(cls, self.max_targets, self.rng)
            outgold = self.outgold_strategy(self.network, targets)
            report = self.generate_for_targets(outgold)
            self.reports.append(report)
            if report.vector is not None and not report.skipped:
                vectors.append(report.vector)
        return vectors

    # ------------------------------------------------------------------
    def _order_targets(self, outgold: Mapping[int, int]) -> list[int]:
        """Algorithm 1 line 2: decreasing network depth (level)."""
        return sorted(
            outgold, key=lambda uid: (self.network.level(uid), uid), reverse=True
        )

    def _finalize(
        self, assignment: Assignment, outgold: Mapping[int, int], report: GenerationReport
    ) -> GenerationReport:
        """Verify the vector by simulation and apply the skip criterion.

        The assignment's claimed values can be unrealizable when several
        targets interacted (a node assigned by one target's forward
        implication may never be decided inside another target's cone), so
        the candidate vector — cone PI values plus a random completion — is
        simulated once and the survivors are taken from the *actual* node
        values.  A vector that fails to realize a pair of opposite OUTgold
        values is skipped (paper §3).
        """
        claimed = [
            uid for uid, gold in outgold.items() if assignment.value(uid) == gold
        ]
        if {outgold[uid] for uid in claimed} != {0, 1}:
            report.vector = None
            report.skipped = True
            report.survivors = claimed
            return report
        candidate = InputVector(assignment.pi_values())
        full = candidate.completed(self.network.pis, self.rng)
        values = self._verifier.run_vector(full.values)
        report.survivors = [
            uid for uid, gold in outgold.items() if values[uid] == gold
        ]
        gold_values = {outgold[uid] for uid in report.survivors}
        if gold_values == {0, 1}:
            # Emit the verified completion (survivorship holds for exactly
            # these PI values, free PIs included).
            report.vector = InputVector(dict(full.values))
            report.skipped = False
        else:
            report.vector = None
            report.skipped = True
        return report


class SimGenGenerator(TargetedVectorGenerator):
    """The paper's contribution: ATPG-guided reverse simulation.

    Combines an implication strategy (§4) with a decision strategy (§5)
    inside Algorithm 1.  The default configuration is the full method,
    AI+DC+MFFC, which the paper calls simply *SimGen*.
    """

    name = "simgen"
    #: Engine seam identifier (see ``repro.core.compiled.adapt_backend``);
    #: the compiled/batch subclasses override it.
    backend = "reference"

    def __init__(
        self,
        network: Network,
        seed: int = 0,
        implication_strategy: ImplicationStrategy = ImplicationStrategy.ADVANCED,
        decision_strategy: DecisionStrategy = DecisionStrategy.DC_MFFC,
        vectors_per_iteration: int = 4,
        max_targets: int = 8,
        outgold_strategy: OutgoldStrategy = alternating_outgold,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
    ):
        super().__init__(
            network, seed, vectors_per_iteration, max_targets, outgold_strategy
        )
        self.implication = ImplicationEngine(network, implication_strategy)
        self.decision = DecisionEngine(
            network, decision_strategy, self.rng, alpha, beta
        )
        self.name = (
            f"simgen[{implication_strategy.value}+{decision_strategy.value}]"
        )
        # Cone caches: the network is static for the generator's lifetime.
        self._dfs_cache: dict[int, list[int]] = {}
        self._cone_pi_cache: dict[int, list[int]] = {}

    def _cone_of(self, target: int) -> tuple[list[int], list[int]]:
        """(DFS list, cone PIs) of a target, cached."""
        if target not in self._dfs_cache:
            list_dfs = dfs_fanin(self.network, target)
            self._dfs_cache[target] = list_dfs
            self._cone_pi_cache[target] = [
                uid for uid in list_dfs if self.network.node(uid).is_pi
            ]
        return self._dfs_cache[target], self._cone_pi_cache[target]

    def generate_for_targets(
        self, outgold: Mapping[int, int]
    ) -> GenerationReport:
        """Algorithm 1 (getInputVectors)."""
        assignment = Assignment(self.network)
        report = GenerationReport(vector=None)
        for target in self._order_targets(outgold):
            self._process_target(assignment, target, outgold[target], report)
        return self._finalize(assignment, outgold, report)

    def _process_target(
        self,
        assignment: Assignment,
        target: int,
        gold: int,
        report: GenerationReport,
    ) -> None:
        marker = assignment.checkpoint()  # line 4: initVals
        list_dfs, cone_pis = self._cone_of(target)  # line 6
        try:
            fresh = assignment.assign(target, gold)  # line 5
        except Conflict:
            report.conflicts += 1
            return
        if not fresh and assignment.pis_set(cone_pis):
            return  # already consistent and fully propagated
        cone = set(list_dfs)
        exhausted: set[int] = set()
        seeds = [target]  # line 7: candidateNode = targetNode
        while not assignment.pis_set(cone_pis):  # line 8
            outcome = self.implication.propagate(assignment, seeds)  # line 9
            report.implications += outcome.assigned
            if outcome.conflict:  # lines 10-13
                assignment.revert(marker)
                report.conflicts += 1
                return
            if assignment.pis_set(cone_pis):
                break
            candidate = self._pick_candidate(assignment, cone, exhausted)
            if candidate is None:
                # The remaining unset cone PIs are unconstrained by the
                # target; they will be randomized at simulation time.
                break
            result = self.decision.decide(assignment, candidate)  # line 16
            if result.conflict:
                assignment.revert(marker)
                report.conflicts += 1
                return
            if not result.assigned:
                exhausted.add(candidate)
                seeds = []
                continue
            report.decisions += 1
            seeds = [uid for uid, _ in result.assigned]

    def _pick_candidate(
        self, assignment: Assignment, cone: set[int], exhausted: set[int]
    ) -> Optional[int]:
        """Line 15: latest-updated cone node still needing a decision."""
        gate_info = self.implication._gate_info  # hot path: lowered gates
        values = assignment._values
        for uid in reversed(assignment.trail()):
            if uid not in cone or uid in exhausted:
                continue
            info = gate_info[uid]
            if info is None:  # PI or constant
                continue
            for f in info[0]:
                if f not in values:
                    return uid
        return None
