"""Fully random simulation-vector generation (paper's RandS).

Random simulation is fast and splits many classes early, but it is blind to
which classes remain and soon plateaus (paper §6.5).  One iteration emits a
configurable number of unconstrained vectors; the pattern batch randomizes
every PI.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.generator import BaseVectorGenerator
from repro.simulation.patterns import InputVector


class RandomGenerator(BaseVectorGenerator):
    """Emits ``vectors_per_iteration`` fully random vectors per iteration."""

    name = "random"

    def __init__(
        self, network, seed: int = 0, vectors_per_iteration: int = 32
    ):
        super().__init__(network, seed)
        self.vectors_per_iteration = vectors_per_iteration

    def generate(self, classes: Sequence[Sequence[int]]) -> list[InputVector]:
        # Unconstrained vectors: the PatternBatch fills every PI randomly.
        return [InputVector() for _ in range(self.vectors_per_iteration)]


class OneDistanceGenerator(BaseVectorGenerator):
    """1-distance vectors around a seed vector (Mishchenko et al. 2006).

    Implemented as a related-work extension: each iteration perturbs the
    stored seed vector by flipping one PI per emitted vector, cycling over
    the PIs.  Counterexample vectors from the SAT phase make good seeds.
    """

    name = "one-distance"

    def __init__(
        self, network, seed: int = 0, vectors_per_iteration: int = 8
    ):
        super().__init__(network, seed)
        self.vectors_per_iteration = vectors_per_iteration
        self._seed_vector: InputVector | None = None
        self._next_pi = 0

    def set_seed_vector(self, vector: InputVector) -> None:
        """Install the vector around which neighbours are generated."""
        self._seed_vector = vector

    def generate(self, classes: Sequence[Sequence[int]]) -> list[InputVector]:
        pis = self.network.pis
        if self._seed_vector is None or not pis:
            return [InputVector() for _ in range(self.vectors_per_iteration)]
        base = self._seed_vector.completed(pis, self.rng)
        vectors = []
        for _ in range(self.vectors_per_iteration):
            pi = pis[self._next_pi % len(pis)]
            self._next_pi += 1
            flipped = dict(base.values)
            flipped[pi] = 1 - flipped[pi]
            vectors.append(InputVector(flipped))
        return vectors
