"""Depth-oriented K-LUT technology mapping (the paper's ``if -K 6``).

Standard two-pass FPGA mapping: enumerate priority cuts, pick per node the
*best* cut (minimum mapped depth, ties broken by estimated area), then
cover the network from the POs — every chosen cut becomes one LUT whose
truth table is the cut-cone function.  The result is a fresh network whose
gates are K-input LUTs, which is what the sweeping experiments operate on
(paper §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MappingError
from repro.network.network import Network
from repro.mapping.cuts import Cut, cut_function, enumerate_cuts


@dataclass(slots=True)
class MappingStats:
    """Summary of one mapping run."""

    luts: int
    depth: int
    k: int


def map_to_luts(
    network: Network,
    k: int = 6,
    cut_limit: int = 8,
    name: Optional[str] = None,
) -> tuple[Network, MappingStats]:
    """Map a gate network to a K-LUT network.

    Returns the LUT network (PIs/POs preserved by name and position) and
    mapping statistics.  Constants are copied through unmapped.  Gates wider
    than ``k`` are Shannon-decomposed first (a gate must fit inside a cut).
    """
    if any(
        node.num_fanins > k for node in network.gates()
    ):
        from repro.transforms.decompose import decompose_to_arity

        network = decompose_to_arity(network, max(2, k), name=network.name)
    cuts = enumerate_cuts(network, k, cut_limit)
    best: dict[int, Cut] = {}
    depth: dict[int, int] = {}
    area_flow: dict[int, float] = {}

    for uid in network.topological_order():
        node = network.node(uid)
        if node.is_pi or node.is_const:
            depth[uid] = 0
            area_flow[uid] = 0.0
            continue
        best_cut = None
        best_key = None
        for cut in cuts[uid]:
            if cut.is_trivial():
                continue
            cut_depth = 1 + max(depth[l] for l in cut.leaves)
            flow = 1.0 + sum(area_flow[l] for l in cut.leaves)
            key = (cut_depth, flow, cut.size)
            if best_key is None or key < best_key:
                best_key = key
                best_cut = cut
        if best_cut is None:
            raise MappingError(f"node {uid} has no non-trivial K-feasible cut")
        best[uid] = best_cut
        depth[uid] = best_key[0]
        fanout = max(1, network.num_fanouts(uid))
        area_flow[uid] = best_key[1] / fanout

    # Cover from the POs.
    mapped = Network(name or f"{network.name}_lut{k}")
    new_id: dict[int, int] = {}
    for pi in network.pis:
        new_id[pi] = mapped.add_pi(network.node(pi).name)

    def realize_one(uid: int) -> Optional[list[int]]:
        """Create the LUT for ``uid`` if its leaves exist; else return them."""
        node = network.node(uid)
        if node.is_const:
            new_id[uid] = mapped.add_const(bool(node.table.bits), node.name)
            return None
        cut = best[uid]
        table = cut_function(network, cut)
        # Shrink to true support: mapping can yield degenerate cut inputs.
        support = table.support()
        leaves = [cut.leaves[i] for i in support]
        if not support:
            new_id[uid] = mapped.add_const(bool(table.bits & 1), node.name)
            return None
        missing = [leaf for leaf in leaves if leaf not in new_id]
        if missing:
            return missing
        if len(support) != table.num_vars:
            from repro.logic.truthtable import TruthTable

            shrunk_bits = 0
            for m in range(1 << len(support)):
                src = 0
                for j, var in enumerate(support):
                    if (m >> j) & 1:
                        src |= 1 << var
                if (table.bits >> src) & 1:
                    shrunk_bits |= 1 << m
            table = TruthTable(len(support), shrunk_bits)
        fanins = [new_id[leaf] for leaf in leaves]
        new_id[uid] = mapped.add_gate(table, fanins, node.name)
        return None

    # Iterative covering (deep stacked networks exceed recursion limits).
    for po_name, uid in network.pos:
        stack = [uid]
        while stack:
            top = stack[-1]
            if top in new_id:
                stack.pop()
                continue
            missing = realize_one(top)
            if missing is None:
                stack.pop()
            else:
                stack.extend(missing)
        mapped.add_po(new_id[uid], po_name)

    stats = MappingStats(luts=mapped.num_gates, depth=mapped.depth(), k=k)
    return mapped, stats
