"""SAT-backed vector generation (related-work baseline, paper §2.3).

Lee et al. and Amarù et al. generate "expressive" input vectors by asking a
SAT solver directly; the paper's critique is that "the newly proposed input
vector still depends on SAT calls".  This generator implements that
approach faithfully so the trade-off is measurable: per iteration it picks
candidate pairs from the classes and asks the incremental pair checker for
a distinguishing assignment — a guaranteed class split when SAT, a proven
equivalence as a side effect when UNSAT, and solver runtime either way.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.generator import BaseVectorGenerator
from repro.network.network import Network
from repro.sat.solver import SatResult
from repro.simulation.patterns import InputVector
from repro.sweep.checker import PairChecker


class SatCexGenerator(BaseVectorGenerator):
    """Generates vectors as SAT counterexamples to candidate equivalences."""

    name = "sat-cex"

    def __init__(
        self,
        network: Network,
        seed: int = 0,
        vectors_per_iteration: int = 4,
        conflict_limit: Optional[int] = 5000,
    ):
        super().__init__(network, seed)
        self.vectors_per_iteration = vectors_per_iteration
        self.checker = PairChecker(
            network, conflict_limit=conflict_limit, incremental=True
        )
        #: Pairs already proven equivalent (never re-queried).
        self.proven: set[frozenset[int]] = set()
        #: Pairs the solver gave up on (conflict limit).
        self.abandoned: set[frozenset[int]] = set()
        self._rotation = 0

    @property
    def sat_calls(self) -> int:
        """Solver queries spent generating vectors (the hidden cost)."""
        return self.checker.stats.calls

    def generate(self, classes: Sequence[Sequence[int]]) -> list[InputVector]:
        splittable = [list(c) for c in classes if len(c) >= 2]
        splittable.sort(key=len, reverse=True)
        vectors: list[InputVector] = []
        attempts = 0
        max_attempts = max(4 * self.vectors_per_iteration, len(splittable))
        while (
            splittable
            and len(vectors) < self.vectors_per_iteration
            and attempts < max_attempts
        ):
            members = splittable[self._rotation % len(splittable)]
            self._rotation += 1
            attempts += 1
            pair = self._pick_pair(members)
            if pair is None:
                continue
            a, b = pair
            result, vector = self.checker.check(a, b)
            key = frozenset((a, b))
            if result is SatResult.SAT and vector is not None:
                vectors.append(vector)
            elif result is SatResult.UNSAT:
                self.proven.add(key)
            else:
                self.abandoned.add(key)
        return vectors

    def _pick_pair(self, members: list[int]) -> Optional[tuple[int, int]]:
        """A random not-yet-resolved pair from the class."""
        for _ in range(4):
            a, b = self.rng.sample(members, 2)
            key = frozenset((a, b))
            if key not in self.proven and key not in self.abandoned:
                return a, b
        return None
