"""Plain-text rendering of tables and bar charts.

The harness prints the same rows/series the paper reports; figures are
rendered as signed ASCII bar charts (one row per benchmark and metric), so
the whole evaluation is reproducible in a terminal with no plotting stack.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Monospace table with per-column widths."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_bar(value: float, scale: float = 1.0, width: int = 24) -> str:
    """A signed horizontal bar: ``#`` left of centre = improvement.

    ``value`` is a normalized difference (e.g. -0.3 = 30% better than the
    baseline); ``scale`` is the value mapped to a full half-width.
    """
    half = width // 2
    if scale <= 0:
        raise ValueError("scale must be positive")
    magnitude = min(abs(value) / scale, 1.0)
    bar_len = round(magnitude * half)
    if value < 0:
        left = " " * (half - bar_len) + "#" * bar_len
        right = " " * half
    else:
        left = " " * half
        right = "#" * bar_len + " " * (half - bar_len)
    return f"[{left}|{right}]"


def format_series_chart(
    title: str,
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    scale: float = 1.0,
) -> str:
    """Grouped signed bars: one block per label, one bar per series."""
    lines = [title]
    name_width = max((len(n) for n in series), default=0)
    for i, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, values in series.items():
            value = values[i]
            lines.append(
                f"  {name.ljust(name_width)} {format_bar(value, scale)} "
                f"{value:+7.1%}"
            )
    return "\n".join(lines)


def format_iteration_trace(
    title: str,
    traces: dict[str, Sequence[int]],
) -> str:
    """Cost-vs-iteration line blocks for Figure 7."""
    lines = [title]
    for name, costs in traces.items():
        rendered = " ".join(f"{c:4d}" for c in costs)
        lines.append(f"  {name:24s} {rendered}")
    return "\n".join(lines)
