"""BLIF parsing and writing."""

import pytest

from repro.errors import ParseError
from repro.io.blif import blif_text, parse_blif
from repro.simulation import Simulator, cone_function
from tests.conftest import networks_equal, random_network

SIMPLE = """\
.model simple
.inputs a b c
.outputs f
.names a b t
11 1
.names t c f
1- 1
-1 1
.end
"""


class TestParse:
    def test_simple_structure(self):
        net = parse_blif(SIMPLE)
        assert net.name == "simple"
        assert len(net.pis) == 3
        assert [name for name, _ in net.pos] == ["f"]
        assert net.num_gates == 2

    def test_simple_function(self):
        net = parse_blif(SIMPLE)
        f = net.pos[0][1]
        table, support = cone_function(net, f)
        # f = (a & b) | c
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert table.output_for(m) == ((a & b) | c)

    def test_offset_polarity(self):
        text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
        net = parse_blif(text)
        table, _ = cone_function(net, net.pos[0][1])
        # f = NAND(a, b)
        assert table.output_for(0b11) == 0
        assert table.output_for(0b01) == 1

    def test_constants(self):
        text = ".model t\n.inputs a\n.outputs f g\n.names f\n1\n.names g\n.names a d\n1 1\n.end\n"
        net = parse_blif(text)
        values = Simulator(net).run_vector({net.pis[0]: 0})
        outs = {name: values[uid] for name, uid in net.pos}
        assert outs == {"f": 1, "g": 0}

    def test_dont_care_rows(self):
        text = ".model t\n.inputs a b c\n.outputs f\n.names a b c f\n1-- 1\n-11 1\n.end\n"
        net = parse_blif(text)
        table, _ = cone_function(net, net.pos[0][1])
        for m in range(8):
            a, b, c = m & 1, (m >> 1) & 1, (m >> 2) & 1
            assert table.output_for(m) == (a | (b & c))

    def test_line_continuation(self):
        text = ".model t\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
        net = parse_blif(text)
        assert len(net.pis) == 2

    def test_comments_stripped(self):
        text = "# hello\n.model t\n.inputs a # trailing\n.outputs f\n.names a f\n1 1\n.end\n"
        net = parse_blif(text)
        assert len(net.pis) == 1

    def test_undefined_signal(self):
        text = ".model t\n.inputs a\n.outputs f\n.end\n"
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_mixed_polarities_rejected(self):
        text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n"
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_bad_cover_width(self):
        text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n"
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_latch_unsupported(self):
        text = ".model t\n.inputs a\n.outputs f\n.latch a f 0\n.end\n"
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_cycle_detected(self):
        text = ".model t\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n"
        with pytest.raises(ParseError):
            parse_blif(text)


class TestRoundtrip:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_network_roundtrip(self, seed):
        net = random_network(seed=seed)
        text = blif_text(net)
        parsed = parse_blif(text)
        assert len(parsed.pis) == len(net.pis)
        assert len(parsed.pos) == len(net.pos)
        assert networks_equal(net, parsed)

    def test_roundtrip_with_constants(self):
        from repro.network import NetworkBuilder

        builder = NetworkBuilder("constnet")
        a = builder.pi("a")
        one = builder.const(True)
        g = builder.and_(a, one)
        builder.po(g, "f")
        net = builder.build()
        parsed = parse_blif(blif_text(net))
        assert networks_equal(net, parsed)
