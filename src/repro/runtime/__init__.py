"""Runtime governance: resource budgets and fault-injection harnesses.

This package is the robustness layer under every long-running flow: a
:class:`Budget`/:class:`Deadline` pair that sweeping, CEC, and the
experiment harnesses poll to stop on time, and fault wrappers
(:class:`FlakySolver`, :class:`FaultySimulator`) that chaos tests use to
prove the engines degrade to UNKNOWN instead of to wrong answers.
"""

from repro.errors import BudgetExpired
from repro.runtime.budget import Budget, Deadline
from repro.runtime.faults import FaultSchedule, FaultySimulator, FlakySolver
from repro.runtime.pool import CheckerPool, PairVerdict

__all__ = [
    "Budget",
    "BudgetExpired",
    "CheckerPool",
    "Deadline",
    "FaultSchedule",
    "FaultySimulator",
    "FlakySolver",
    "PairVerdict",
]
