"""Implication engines: Figure 3 walkthrough and soundness properties."""

import itertools
import random

import pytest

from repro.core.assignment import Assignment
from repro.core.implication import (
    ImplicationEngine,
    ImplicationStrategy,
    _forced_pins,
)
from repro.logic import TruthTable, rows_of
from repro.network import NetworkBuilder
from repro.simulation import Simulator
from tests.conftest import random_network


class TestBackwardImplication:
    def test_and_output_one_forces_inputs(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["inner"], 1)
        engine = ImplicationEngine(net, ImplicationStrategy.SIMPLE)
        outcome = engine.propagate(assignment, [ids["inner"]])
        assert not outcome.conflict
        assert assignment.value(ids["a"]) == 1
        assert assignment.value(ids["b"]) == 1

    def test_or_output_zero_forces_inputs(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["out"], 0)
        engine = ImplicationEngine(net, ImplicationStrategy.SIMPLE)
        outcome = engine.propagate(assignment, [ids["out"]])
        assert not outcome.conflict
        # out = inner | c = 0 forces both; inner = a & b = 0 is ambiguous.
        assert assignment.value(ids["inner"]) == 0
        assert assignment.value(ids["c"]) == 0
        assert assignment.value(ids["a"]) is None

    def test_conflict_detected(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["inner"], 1)
        assignment.assign(ids["a"], 0)
        engine = ImplicationEngine(net)
        outcome = engine.propagate(assignment, [ids["inner"]])
        assert outcome.conflict


class TestForwardImplication:
    def test_inputs_force_output(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["a"], 1)
        assignment.assign(ids["b"], 1)
        engine = ImplicationEngine(net, ImplicationStrategy.SIMPLE)
        outcome = engine.propagate(assignment, [ids["a"], ids["b"]])
        assert assignment.value(ids["inner"]) == 1

    def test_partial_input_forces_and_output_zero(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["a"], 0)
        engine = ImplicationEngine(net, ImplicationStrategy.ADVANCED)
        engine.propagate(assignment, [ids["a"]])
        # a=0 forces inner=0 even though b is free (advanced covers this
        # through the single matching offset cube 0-).
        assert assignment.value(ids["inner"]) == 0


class TestAdvancedImplication:
    def test_figure3_style_output_agreement(self):
        """Multiple rows match but agree on the output (Definition 4.1)."""
        # f1 truth table from Figure 3: rows (B,C,D,A) simplified: we build
        # a 3-input function where two onset rows share inputs B=1, D=1.
        builder = NetworkBuilder()
        b, c, d = builder.pis(3)
        # f = (b & ~c) | (c & d): with b=1, d=1 both rows give f=1.
        table = TruthTable.from_outputs(
            [  # index bits: b | c<<1 | d<<2
                0,  # 000
                1,  # b
                0,  # c
                1,  # bc -> b&~c is 0, c&d 0... recompute below
                0, 1, 1, 1,
            ]
        )
        # Build explicitly instead: f = (b & ~c) | (c & d)
        bits = 0
        for m in range(8):
            bb, cc, dd = m & 1, (m >> 1) & 1, (m >> 2) & 1
            if (bb and not cc) or (cc and dd):
                bits |= 1 << m
        table = TruthTable(3, bits)
        f = builder.table(table, [b, c, d])
        builder.po(f)
        net = builder.build()

        assignment = Assignment(net)
        assignment.assign(b, 1)
        assignment.assign(d, 1)
        simple = ImplicationEngine(net, ImplicationStrategy.SIMPLE)
        outcome = simple.propagate(assignment, [b, d])
        assert assignment.value(f) is None  # two rows match: simple stalls

        assignment2 = Assignment(net)
        assignment2.assign(b, 1)
        assignment2.assign(d, 1)
        advanced = ImplicationEngine(net, ImplicationStrategy.ADVANCED)
        advanced.propagate(assignment2, [b, d])
        assert assignment2.value(f) == 1  # all matching rows agree on 1

    def test_advanced_does_not_overcommit(self):
        """Pins on which matching rows disagree must stay unassigned."""
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        x = builder.xor_(a, b)
        builder.po(x)
        net = builder.build()
        assignment = Assignment(net)
        assignment.assign(x, 1)
        engine = ImplicationEngine(net, ImplicationStrategy.ADVANCED)
        outcome = engine.propagate(assignment, [x])
        assert not outcome.conflict
        assert assignment.value(a) is None
        assert assignment.value(b) is None


class TestSoundness:
    """Implied values must never exclude a consistent completion."""

    @pytest.mark.parametrize("seed", range(8))
    def test_implications_preserved_by_some_completion(self, seed):
        net = random_network(seed=seed, num_inputs=4, num_gates=10)
        rng = random.Random(seed)
        sim = Simulator(net)
        target = net.pos[0][1]
        for gold in (0, 1):
            achievable = any(
                sim.run_vector(
                    {pi: (m >> i) & 1 for i, pi in enumerate(net.pis)}
                )[target]
                == gold
                for m in range(1 << len(net.pis))
            )
            assignment = Assignment(net)
            assignment.assign(target, gold)
            engine = ImplicationEngine(net, ImplicationStrategy.ADVANCED)
            outcome = engine.propagate(assignment, [target])
            if outcome.conflict:
                # A conflict must only ever flag an unachievable target.
                assert not achievable
                continue
            if not achievable:
                # Implication is incomplete: it may fail to notice an
                # infeasible target (the SAT phase would).  Nothing it
                # assigned is meaningful in that case.
                continue
            assigned = assignment.as_dict()
            # Some full PI completion must realize every implied value.
            found = False
            for m in range(1 << len(net.pis)):
                vector = {pi: (m >> i) & 1 for i, pi in enumerate(net.pis)}
                if any(
                    pi in assigned and assigned[pi] != vector[pi]
                    for pi in net.pis
                ):
                    continue
                values = sim.run_vector(vector)
                if all(values[uid] == v for uid, v in assigned.items()):
                    found = True
                    break
            assert found, f"implications unrealizable for gold={gold}"

    @pytest.mark.parametrize("seed", range(6))
    def test_forced_values_are_truly_forced(self, seed):
        """Whatever advanced implication assigns is entailed, not guessed."""
        rng = random.Random(seed)
        num_vars = rng.randint(2, 4)
        table = TruthTable(num_vars, rng.getrandbits(1 << num_vars))
        if table.is_const():
            return
        rows = list(rows_of(table))
        # Random partial pin assignment.
        inputs = [rng.choice([None, 0, 1]) for _ in range(num_vars)]
        output = rng.choice([None, 0, 1])
        matching = [r for r in rows if r.matches(inputs, output)]
        if not matching:
            return
        forced = _forced_pins(matching, inputs, output, advanced=True) or []
        for pin, value in forced:
            # enumerate all total input assignments consistent with `inputs`
            # and the output constraint; the forced pin must always hold.
            for m in range(1 << num_vars):
                consistent = all(
                    inputs[i] is None or inputs[i] == ((m >> i) & 1)
                    for i in range(num_vars)
                )
                if not consistent:
                    continue
                out_m = table.output_for(m)
                if output is not None and out_m != output:
                    continue
                if pin == num_vars:
                    assert out_m == value
                else:
                    assert ((m >> pin) & 1) == value, (
                        table, inputs, output, pin, value, m
                    )
