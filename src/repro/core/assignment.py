"""Partial node-value assignments (the paper's ``nodeVals``).

Algorithm 1 incrementally assigns 0/1 values to node outputs while
propagating a target's OUTgold value toward the PIs.  The assignment records
its trail so a conflicting target can be reverted wholesale (Line 12 of
Algorithm 1: ``nodeVals = initVals``), and timestamps each assignment so
``latestUpdated`` can find the most recently touched node of a cone.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import GenerationError
from repro.network.network import Network


class Conflict(Exception):
    """Raised when a propagation contradicts an existing assignment.

    Carries the node and the two clashing values; Algorithm 1 catches it to
    revert the current target.
    """

    def __init__(self, uid: int, have: int, want: int):
        self.uid = uid
        self.have = have
        self.want = want
        super().__init__(f"node {uid}: have {have}, want {want}")


class Assignment:
    """A revertible partial map from node ids to output values."""

    def __init__(self, network: Network):
        self.network = network
        self._values: dict[int, int] = {}
        self._trail: list[int] = []  # uids in assignment order

    # ------------------------------------------------------------------
    def value(self, uid: int) -> Optional[int]:
        """The assigned value of a node, or ``None``."""
        return self._values.get(uid)

    def is_assigned(self, uid: int) -> bool:
        return uid in self._values

    def __len__(self) -> int:
        return len(self._values)

    def assign(self, uid: int, value: int) -> bool:
        """Set a node's value.

        Returns True if the assignment is new, False if the node already
        holds that value.  Raises :class:`Conflict` on contradiction.
        """
        if value not in (0, 1):
            raise GenerationError(f"assignment value must be 0/1, got {value!r}")
        current = self._values.get(uid)
        if current is not None:
            if current != value:
                raise Conflict(uid, current, value)
            return False
        self._values[uid] = value
        self._trail.append(uid)
        return True

    def pins_of(self, uid: int) -> tuple[list[Optional[int]], Optional[int]]:
        """(fanin values, output value) of a node under this assignment."""
        node = self.network.node(uid)
        inputs = [self._values.get(f) for f in node.fanins]
        return inputs, self._values.get(uid)

    # ------------------------------------------------------------------
    # Checkpoint / revert (Algorithm 1 lines 4 and 12)
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Opaque marker for the current trail position."""
        return len(self._trail)

    def revert(self, marker: int) -> None:
        """Undo every assignment made after ``marker``."""
        if not 0 <= marker <= len(self._trail):
            raise GenerationError(f"invalid checkpoint marker {marker}")
        for uid in self._trail[marker:]:
            del self._values[uid]
        del self._trail[marker:]

    # ------------------------------------------------------------------
    # Queries used by Algorithm 1
    # ------------------------------------------------------------------
    def latest_updated(
        self, cone: Iterable[int], since: int = 0
    ) -> Optional[int]:
        """Most recently assigned node among ``cone`` (after ``since``)."""
        cone_set = set(cone)
        for index in range(len(self._trail) - 1, since - 1, -1):
            uid = self._trail[index]
            if uid in cone_set:
                return uid
        return None

    def trail(self) -> list[int]:
        """Assigned node ids in assignment order (a copy)."""
        return list(self._trail)

    def pis_set(self, cone: Iterable[int]) -> bool:
        """Algorithm 1's ``PIsSet``: every PI of the cone is assigned."""
        for uid in cone:
            node = self.network.node(uid)
            if node.is_pi and uid not in self._values:
                return False
        return True

    def pi_values(self) -> dict[int, int]:
        """The assigned primary-input values (the generated vector)."""
        return {
            uid: value
            for uid, value in self._values.items()
            if self.network.node(uid).is_pi
        }

    def as_dict(self) -> dict[int, int]:
        """All assigned values (a copy)."""
        return dict(self._values)
