"""Process-parallel equivalence-pair checking with a deterministic merge.

SAT sweeping spends its SAT phase on *independent* pair queries, which makes
it embarrassingly parallel — the headline win of hybrid sweeping engines
(PAPERS.md: arXiv:2501.14740).  This module provides the worker pool the
sweep engine and CEC fall back on when ``jobs > 1``.

Determinism contract
--------------------

The refinement trajectory of a parallel sweep must be **bit-identical for
any worker count**.  Two mechanisms guarantee it:

* **Virtual solver shards.**  Pair queries are routed to a fixed number of
  virtual shards by a stable hash of the pair — *independent of the worker
  count*.  Each shard owns one incremental :class:`PairChecker` (persistent
  CDCL solver + Tseitin encoder) and serves its queries in canonical
  dispatch order, so the query sequence any solver instance observes — and
  therefore every verdict, counterexample model, and conflict count — is a
  pure function of the dispatched pairs.  Changing ``jobs`` only changes
  which *process* hosts a shard, never what a solver sees.

* **Canonical merge order.**  :meth:`CheckerPool.check_pairs` returns
  verdicts in dispatch order regardless of completion order; the engine
  merges them in that order and absorbs all counterexamples through one
  batched resimulation.

Fault tolerance and supervision
-------------------------------

A worker killed mid-query no longer forfeits its pairs.  The parent
respawns a replacement on the same task queue — queued-but-unread tasks
survive in the queue and are served by the replacement — and sends a
*fence* message; any task submitted before the fence that still has no
answer when the fence returns was lost inside the dead worker.  Lost
pairs are **re-dispatched** to the respawned worker under a bounded
:class:`~repro.runtime.supervise.RetryPolicy` (exponential backoff,
jittered via the seeded RNG — the schedule is a pure function of the pair,
never of wall clock), and only degrade to ``UNKNOWN`` once the retry
budget is exhausted.  Degradation is still never a fabricated verdict.

Re-dispatch preserves the determinism contract: verdicts are a pure
function of the solver state the query meets, and a respawned worker's
shard checkers replay the same canonical query sequence, so a retried
pair's verdict is the one an undisturbed run would have produced whenever
the queries are state-independent (fresh/query-pure mode, or a respawn
that re-serves the shard's full sequence).

Workers emit a heartbeat when they pick up a task; a busy worker silent
past ``heartbeat_interval`` bumps a counter (``pool.heartbeats_missed``)
for observability — process liveness stays authoritative.  Budget
deadlines are polled by the parent while collecting; expiry abandons
outstanding work as ``UNKNOWN``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import signal
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SweepError
from repro.network.network import Network
from repro.obs import NULL_TRACER
from repro.runtime.budget import Budget
from repro.runtime.supervise import RetryPolicy, WorkerSupervisor
from repro.sat.solver import SatResult
from repro.simulation.patterns import InputVector

#: Virtual shard count.  Fixed (never derived from the worker count) so the
#: trajectory is identical for any ``jobs``; raising it increases available
#: parallelism but changes which solver serves which pair (a different —
#: still deterministic — trajectory).
DEFAULT_SHARDS = 16


@dataclass(slots=True)
class PairVerdict:
    """One worker answer, merged by the parent in dispatch order."""

    outcome: SatResult
    vector: Optional[InputVector]
    #: CDCL conflicts the query consumed (charged to the parent's budget).
    conflicts: int
    #: Solver wall-clock seconds inside the worker.
    sat_time: float
    #: Unit propagations the query consumed (folded into the parent's
    #: ``sat.solver.propagations`` counter).
    propagations: int = 0
    #: True when no worker answer exists (worker death past the retry
    #: budget, or budget expiry); the outcome is then UNKNOWN — degraded,
    #: never fabricated.
    degraded: bool = False
    #: Conflict limit actually applied to the query (the parent may have
    #: tightened the nominal limit to the budget's remaining headroom);
    #: verdict journals use this to tell a deterministic UNKNOWN-at-limit
    #: from a budget-squeezed one.
    limit: Optional[int] = None


def _worker_main(
    network: Network,
    conflict_limit: Optional[int],
    incremental: bool,
    sat_backend: str,
    worker_index: int,
    task_queue,
    result_queue,
    chaos_kill_pair: Optional[tuple[int, int]],
) -> None:
    """Worker loop: route each task to its shard's checker and answer.

    ``chaos_kill_pair`` is a fault-injection seam (see
    :mod:`repro.runtime.faults`): receiving that exact pair SIGKILLs the
    process mid-query — the real failure mode supervision is built for —
    which chaos tests use to prove re-dispatch and bounded degradation.
    """
    # Imported here so the module can be imported without the sweep package
    # (and so spawn-start workers resolve it in their own interpreter).
    from repro.sweep.checker import PairChecker

    checkers: dict[int, PairChecker] = {}
    while True:
        message = task_queue.get()
        if message is None:
            break
        if message[0] == "fence":
            result_queue.put(("fence", message[1]))
            continue
        _, task_id, shard, rep, member, complemented, limit = message
        # Heartbeat on pickup: the parent learns the worker is alive and
        # which query it committed to before any solving happens.
        result_queue.put(("hb", worker_index, task_id))
        if chaos_kill_pair is not None and (rep, member) == chaos_kill_pair:
            if hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            os._exit(1)  # pragma: no cover - non-POSIX fallback
        checker = checkers.get(shard)
        if checker is None:
            checker = PairChecker(
                network,
                conflict_limit=conflict_limit,
                incremental=incremental,
                sat_backend=sat_backend,
            )
            checkers[shard] = checker
        conflicts_before = checker.stats.conflicts
        props_before = checker.stats.propagations
        time_before = checker.stats.sat_time
        outcome, vector = checker.check(
            rep, member, complemented, conflict_limit=limit
        )
        result_queue.put(
            (
                "done",
                task_id,
                outcome.value,
                None if vector is None else dict(vector.values),
                checker.stats.conflicts - conflicts_before,
                checker.stats.sat_time - time_before,
                checker.stats.propagations - props_before,
            )
        )


class CheckerPool:
    """A pool of worker processes answering pair-equivalence queries.

    Each worker holds the incremental checkers of the shards routed to it
    over a read-only copy of the network (inherited copy-on-write under
    ``fork``, pickled under ``spawn``).

    Args:
        retry_policy: Bounded-retry/backoff policy for pairs lost inside a
            dead worker (``None`` = default :class:`RetryPolicy`; pass
            ``RetryPolicy(max_retries=0)`` for the legacy
            degrade-on-first-loss behaviour).
        heartbeat_interval: Seconds of silence from a *busy* worker before
            ``pool.heartbeats_missed`` increments (observational only).
        chaos_kill_limit: How many worker deaths the ``chaos_kill_pair``
            seam may cause before respawned workers are disarmed (so a
            retried pair can succeed).  ``None`` keeps every respawn armed
            — the retry budget then exhausts and the pair degrades.
    """

    #: Seconds between liveness/deadline polls while collecting.
    POLL_INTERVAL = 0.05

    def __init__(
        self,
        network: Network,
        jobs: int,
        shards: int = DEFAULT_SHARDS,
        conflict_limit: Optional[int] = 20000,
        incremental: bool = True,
        sat_backend: str = "compiled",
        chaos_kill_pair: Optional[tuple[int, int]] = None,
        chaos_kill_limit: Optional[int] = 1,
        retry_policy: Optional[RetryPolicy] = None,
        heartbeat_interval: float = 5.0,
        tracer=None,
    ):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        if shards < 1:
            raise SweepError(f"shards must be >= 1, got {shards}")
        self.jobs = jobs
        self.shards = shards
        self._network = network
        self._conflict_limit = conflict_limit
        self._incremental = incremental
        self._sat_backend = sat_backend
        self._chaos_kill_pair = (
            None if chaos_kill_pair is None else tuple(chaos_kill_pair)
        )
        self._chaos_kill_limit = chaos_kill_limit
        self._chaos_deaths = 0
        # Parent-side only (never shipped to workers; a Tracer holds an
        # open file).  ``pool.*`` records are jobs-dependent by nature and
        # excluded from the deterministic trace projection.
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._supervisor = WorkerSupervisor(
            policy=retry_policy, heartbeat_interval=heartbeat_interval
        )
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._result_queue = self._ctx.Queue()
        self._task_queues = [self._ctx.Queue() for _ in range(jobs)]
        self._processes: list = [None] * jobs
        self._task_seq = 0
        self._fence_seq = 0
        #: Worker deaths absorbed by respawning (chaos metric).
        self.worker_failures = 0
        self._closed = False
        for index in range(jobs):
            self._spawn(index)

    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> None:
        chaos = self._chaos_kill_pair
        if (
            chaos is not None
            and self._chaos_kill_limit is not None
            and self._chaos_deaths >= self._chaos_kill_limit
        ):
            # The seam already killed its quota; respawns run disarmed so
            # the re-dispatched pair can actually be solved.
            chaos = None
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._network,
                self._conflict_limit,
                self._incremental,
                self._sat_backend,
                index,
                self._task_queues[index],
                self._result_queue,
                chaos,
            ),
            daemon=True,
        )
        process.start()
        self._processes[index] = process
        self._supervisor.on_spawn(index)

    def shard_of(self, rep: int, member: int) -> int:
        """Stable shard routing: a pure function of the pair (never of
        ``jobs``), so retries and escalations hit the same solver state."""
        return ((rep * 0x9E3779B1) ^ (member * 0x85EBCA6B)) % self.shards

    @property
    def supervision_stats(self) -> dict:
        """``pool.*`` counters (heartbeats_missed / retries / respawns /
        pairs_redispatched) for registry export."""
        return dict(self._supervisor.stats)

    # ------------------------------------------------------------------
    def check_pairs(
        self,
        pairs: Sequence[tuple[int, int, bool]],
        limits: Optional[Sequence[Optional[int]]] = None,
        budget: Optional[Budget] = None,
    ) -> list[PairVerdict]:
        """Check ``(rep, member, complemented)`` pairs concurrently.

        Verdicts come back **in dispatch order** regardless of completion
        order.  Pairs lost to a dead worker are re-dispatched under the
        retry policy; a pair whose answer never arrives — retry budget
        exhausted, or the run's deadline — is returned as degraded
        ``UNKNOWN``.

        Args:
            limits: Optional per-pair conflict-limit overrides (escalation
                ladders pass the rung's limit); ``None`` entries mean the
                pool-wide limit.
            budget: Polled for its deadline while collecting; conflict
                headroom tightens each dispatched limit at wave granularity.
        """
        if self._closed:
            raise SweepError("pool is closed")
        count = len(pairs)
        if self._tracer.enabled:
            self._tracer.event("pool.dispatch", count=count)
        verdicts: list[Optional[PairVerdict]] = [None] * count
        position: dict[int, int] = {}
        owner: dict[int, int] = {}
        message_of: dict[int, tuple] = {}
        applied_limit: dict[int, Optional[int]] = {}
        attempts: dict[int, int] = {}
        remaining = (
            budget.remaining_conflicts() if budget is not None else None
        )
        for offset, (rep, member, complemented) in enumerate(pairs):
            limit = self._conflict_limit
            if limits is not None and limits[offset] is not None:
                limit = limits[offset]
            if remaining is not None and (limit is None or remaining < limit):
                limit = remaining
            task_id = self._task_seq
            self._task_seq += 1
            position[task_id] = offset
            shard = self.shard_of(rep, member)
            worker = shard % self.jobs
            owner[task_id] = worker
            applied_limit[task_id] = limit
            attempts[task_id] = 0
            message = (
                "check", task_id, shard, rep, member, complemented, limit
            )
            message_of[task_id] = message
            self._task_queues[worker].put(message)
        pending_fences: dict[int, list[int]] = {}
        outstanding = set(position)
        #: Lost tasks awaiting their backoff: (due monotonic time, task_id).
        deferred: list[tuple[float, int]] = []
        deferred_ids: set[int] = set()
        while outstanding:
            if budget is not None and budget.time_expired():
                break  # outstanding work is abandoned, degraded to UNKNOWN
            if deferred:
                now = time.monotonic()
                due = [t for d, t in deferred if d <= now]
                if due:
                    deferred = [(d, t) for d, t in deferred if t not in due]
                    for task_id in due:
                        if task_id not in outstanding:
                            continue
                        deferred_ids.discard(task_id)
                        self._task_queues[owner[task_id]].put(
                            message_of[task_id]
                        )
            try:
                message = self._result_queue.get(timeout=self.POLL_INTERVAL)
            except queue_mod.Empty:
                self._reap_dead(
                    owner, outstanding, pending_fences, deferred_ids
                )
                self._supervisor.check_heartbeats(
                    {
                        owner[t]
                        for t in outstanding
                        if t not in deferred_ids
                    }
                )
                continue
            kind = message[0]
            if kind == "hb":
                self._supervisor.heartbeat(message[1])
                continue
            if kind == "fence":
                lost = pending_fences.pop(message[1], ())
                for task_id in lost:
                    # Submitted before the fence, no answer by the time the
                    # replacement reached it: lost inside the dead worker.
                    if task_id not in outstanding or task_id in deferred_ids:
                        continue
                    attempts[task_id] += 1
                    check = message_of[task_id]
                    delay = self._supervisor.should_retry(
                        (check[3], check[4]), attempts[task_id]
                    )
                    if delay is None:
                        # Retry budget exhausted: degraded below, never
                        # fabricated.
                        outstanding.discard(task_id)
                    else:
                        deferred.append((time.monotonic() + delay, task_id))
                        deferred_ids.add(task_id)
                        if self._tracer.enabled:
                            self._tracer.event(
                                "pool.redispatch",
                                rep=check[3],
                                member=check[4],
                                attempt=attempts[task_id],
                            )
                continue
            _, task_id, outcome, values, conflicts, sat_time, props = message
            if task_id not in outstanding:
                continue  # straggler from an abandoned earlier call
            outstanding.discard(task_id)
            deferred_ids.discard(task_id)
            verdicts[position[task_id]] = PairVerdict(
                SatResult(outcome),
                None if values is None else InputVector(dict(values)),
                conflicts,
                sat_time,
                propagations=props,
                limit=applied_limit[task_id],
            )
        for offset in range(count):
            if verdicts[offset] is None:
                verdicts[offset] = PairVerdict(
                    SatResult.UNKNOWN, None, 0, 0.0, degraded=True
                )
        return verdicts  # type: ignore[return-value]

    def _reap_dead(
        self,
        owner: dict[int, int],
        outstanding: set[int],
        pending_fences: dict[int, list[int]],
        deferred_ids: set[int],
    ) -> None:
        """Respawn dead workers; fence to find which tasks died with them.

        Tasks already sitting in the backoff queue are excluded from the
        fence candidates — they are not in flight, so the fence cannot
        prove anything about them (and must not double-charge a retry).
        """
        for index, process in enumerate(self._processes):
            if process.is_alive():
                continue
            self.worker_failures += 1
            if self._chaos_kill_pair is not None:
                self._chaos_deaths += 1
            if self._tracer.enabled:
                self._tracer.event("pool.respawn", worker=index)
            self._spawn(index)
            fence_id = self._fence_seq
            self._fence_seq += 1
            pending_fences[fence_id] = [
                task_id
                for task_id in outstanding
                if owner.get(task_id) == index
                and task_id not in deferred_ids
            ]
            self._task_queues[index].put(("fence", fence_id))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop all workers (terminating any still mid-query)."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=0.5)
        self._result_queue.close()
        for task_queue in self._task_queues:
            task_queue.close()

    def __enter__(self) -> "CheckerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
