"""Structural hashing and constant/buffer cleanup.

``strash`` rebuilds a network merging gates with identical (function,
fanins) pairs, propagating constants, shrinking tables to their true
support, and collapsing buffers — the light-weight normalization ABC
applies implicitly.  Running it after rewrites keeps networks tidy without
erasing the *functional* redundancies sweeping is supposed to find (merged
nodes are bit-identical structure, which no simulation is needed to spot).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.logic.truthtable import TruthTable
from repro.network.network import Network


def _digest(*parts) -> int:
    hasher = hashlib.blake2b(digest_size=8)
    for part in parts:
        hasher.update(str(part).encode("ascii"))
        hasher.update(b"|")
    return int.from_bytes(hasher.digest(), "big")


def node_signatures(network: Network) -> dict[int, int]:
    """Structural signature (stable 64-bit hash) of every node.

    The signature is a pure function of the node's *structure*: PIs hash
    their interface position, gates hash ``(num_vars, table bits, fanin
    signatures)`` — the same key :func:`strash` merges on, so structural
    twins share a signature while uids (which depend on construction
    order) do not leak in.  This is what makes signatures usable as
    **durable pair keys**: a verdict journal keyed by signatures stays
    valid across process restarts, for any worker count, and even across
    re-parses of the same netlist.
    """
    signatures: dict[int, int] = {}
    for position, pi in enumerate(network.pis):
        signatures[pi] = _digest("pi", position)
    for uid in network.topological_order():
        node = network.node(uid)
        if node.is_pi:
            continue
        signatures[uid] = _digest(
            "gate",
            node.table.num_vars,
            node.table.bits,
            *(signatures[f] for f in node.fanins),
        )
    return signatures


def network_signature(network: Network) -> str:
    """Structural fingerprint of a whole network (hex string).

    Hashes the PI count and the PO-ordered node signatures (with PO
    names), so two networks agree iff their interface and PO cone
    structures agree.  The verdict journal stores this in its header and
    refuses to resume against a different network.
    """
    signatures = node_signatures(network)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(f"pis={len(network.pis)}".encode("ascii"))
    for name, uid in network.pos:
        hasher.update(f"|{name}={signatures[uid]:016x}".encode("ascii"))
    return hasher.hexdigest()


def _shrink_to_support(table: TruthTable) -> tuple[TruthTable, list[int]]:
    """Drop don't-care inputs; returns (table, kept input positions)."""
    support = table.support()
    if len(support) == table.num_vars:
        return table, support
    if not support:
        return TruthTable(0, table.bits & 1), []
    bits = 0
    for m in range(1 << len(support)):
        src = 0
        for j, var in enumerate(support):
            if (m >> j) & 1:
                src |= 1 << var
        if (table.bits >> src) & 1:
            bits |= 1 << m
    return TruthTable(len(support), bits), support


def _identify_duplicates(
    table: TruthTable, fanins: list[int]
) -> tuple[TruthTable, list[int]]:
    """Merge truth-table variables whose drivers are the same node.

    ``f(x, x)`` becomes a single-variable function of ``x`` (the diagonal of
    the table), enabling OR(x, x) -> x style collapses downstream.
    """
    unique: list[int] = []
    position: dict[int, int] = {}
    for f in fanins:
        if f not in position:
            position[f] = len(unique)
            unique.append(f)
    if len(unique) == len(fanins):
        return table, fanins
    bits = 0
    for m in range(1 << len(unique)):
        src = 0
        for i, f in enumerate(fanins):
            if (m >> position[f]) & 1:
                src |= 1 << i
        if (table.bits >> src) & 1:
            bits |= 1 << m
    return TruthTable(len(unique), bits), unique


def strash(network: Network, name: Optional[str] = None) -> Network:
    """Structurally hashed copy of the network.

    Gates with the same truth table and the same (order-sensitive) fanin
    list are merged; constants propagate through tables; buffers collapse
    onto their drivers.  PIs and PO names/positions are preserved.
    """
    result = Network(name or f"{network.name}_strash")
    new_id: dict[int, int] = {}
    hash_table: dict[tuple, int] = {}
    const_cache: dict[bool, int] = {}

    def get_const(value: bool) -> int:
        if value not in const_cache:
            const_cache[value] = result.add_const(value)
        return const_cache[value]

    for pi in network.pis:
        new_id[pi] = result.add_pi(network.node(pi).name)

    for uid in network.topological_order():
        node = network.node(uid)
        if node.is_pi:
            continue
        if node.is_const:
            new_id[uid] = get_const(bool(node.table.bits))
            continue
        table = node.table
        fanins = [new_id[f] for f in node.fanins]
        # Substitute constant fanins into the table.
        const_positions = [
            (i, result.node(f).table.bits & 1)
            for i, f in enumerate(fanins)
            if f in result and result.node(f).is_const
        ]
        for position, value in const_positions:
            table = table.cofactor(position, value)
        table, support = _shrink_to_support(table)
        fanins = [fanins[i] for i in support]
        table, fanins = _identify_duplicates(table, fanins)
        table, support = _shrink_to_support(table)
        fanins = [fanins[i] for i in support]
        if table.num_vars == 0:
            new_id[uid] = get_const(bool(table.bits))
            continue
        if table.num_vars == 1 and table.bits == 0b10:  # buffer
            new_id[uid] = fanins[0]
            continue
        key = (table.num_vars, table.bits, tuple(fanins))
        if key in hash_table:
            new_id[uid] = hash_table[key]
            continue
        created = result.add_gate(table, fanins, node.name)
        hash_table[key] = created
        new_id[uid] = created

    for po_name, uid in network.pos:
        result.add_po(new_id[uid], po_name)
    result.remove_dangling()
    return result
