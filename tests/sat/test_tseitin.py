"""Tseitin encoding and miters, checked against exhaustive simulation."""

import pytest

from repro.errors import SatError
from repro.network import NetworkBuilder
from repro.sat import (
    CdclSolver,
    SatResult,
    TseitinEncoder,
    pair_miter,
    po_miter,
    solve_cnf,
)
from repro.simulation import Simulator
from tests.conftest import networks_equal, random_network


class TestEncoding:
    def test_models_agree_with_simulation(self):
        """Every SAT model of the encoding is a consistent circuit valuation."""
        net = random_network(seed=2, num_inputs=4, num_gates=8)
        root = net.pos[0][1]
        encoder = TseitinEncoder(net)
        root_var = encoder.encode_cone(root)
        sim = Simulator(net)
        # Force each output value in turn and validate the model.
        for target in (1, 0):
            solver = CdclSolver()
            solver.add_cnf(encoder.cnf)
            solver.add_clause([root_var if target else -root_var])
            result = solver.solve()
            if result is not SatResult.SAT:
                continue
            model = solver.model()
            vector = encoder.model_to_vector(model)
            full = vector.completed(net.pis, __import__("random").Random(0))
            values = sim.run_vector(full.values)
            assert values[root] == target

    def test_exhaustive_equisatisfiability(self):
        """For every PI pattern there is exactly one consistent valuation."""
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g = builder.xor_(a, b)
        h = builder.nand_(g, a)
        builder.po(h)
        net = builder.build()
        encoder = TseitinEncoder(net)
        h_var = encoder.encode_cone(h)
        sim = Simulator(net)
        for m in range(4):
            vals = {a: m & 1, b: (m >> 1) & 1}
            expected = sim.run_vector(vals)[h]
            solver = CdclSolver()
            solver.add_cnf(encoder.cnf)
            solver.add_clause([encoder.var_of(a) * (1 if vals[a] else -1)])
            solver.add_clause([encoder.var_of(b) * (1 if vals[b] else -1)])
            # The circuit forces h to its simulated value.
            solver.add_clause([h_var if not expected else -h_var])
            assert solver.solve() is SatResult.UNSAT

    def test_constant_node_encoding(self):
        builder = NetworkBuilder()
        a = builder.pi()
        one = builder.const(True)
        g = builder.and_(a, one)
        builder.po(g)
        net = builder.build()
        encoder = TseitinEncoder(net)
        g_var = encoder.encode_cone(g)
        solver = CdclSolver()
        solver.add_cnf(encoder.cnf)
        solver.add_clause([g_var])
        assert solver.solve() is SatResult.SAT
        assert solver.model()[encoder.var_of(a)] is True


class TestPairMiter:
    def test_equivalent_nodes_unsat(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.not_(builder.nand_(a, b))
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        cnf, _ = pair_miter(net, g1, g2)
        result, _ = solve_cnf(cnf)
        assert result is SatResult.UNSAT

    def test_different_nodes_sat_with_valid_cex(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.or_(a, b)
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        cnf, encoder = pair_miter(net, g1, g2)
        result, model = solve_cnf(cnf)
        assert result is SatResult.SAT
        vector = encoder.model_to_vector(model)
        values = Simulator(net).run_vector(
            vector.completed(net.pis, __import__("random").Random(0)).values
        )
        assert values[g1] != values[g2]

    def test_complement_miter(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.nand_(a, b)
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        # g1 == NOT g2 everywhere: complement miter must be UNSAT.
        cnf, _ = pair_miter(net, g1, g2, complement=True)
        result, _ = solve_cnf(cnf)
        assert result is SatResult.UNSAT
        # Plain miter is SAT everywhere (they always differ).
        cnf, _ = pair_miter(net, g1, g2)
        result, _ = solve_cnf(cnf)
        assert result is SatResult.SAT

    def test_self_miter_rejected(self, and_or_network):
        net, ids = and_or_network
        with pytest.raises(SatError):
            pair_miter(net, ids["out"], ids["out"])


class TestPoMiter:
    def test_miter_of_equivalent_networks_constant_zero(self):
        net_a = random_network(seed=5)
        net_b, _ = net_a.map_clone()
        miter = po_miter(net_a, net_b)
        assert networks_equal(net_a, net_b)
        # every miter PO must be constant 0: check by exhaustive simulation
        from repro.simulation import cone_function

        for _, po in miter.pos:
            table, _ = cone_function(miter, po, max_support=10)
            assert table.const_value() == 0

    def test_interface_mismatch_rejected(self):
        builder_a = NetworkBuilder()
        a = builder_a.pi()
        builder_a.po(a)
        builder_b = NetworkBuilder()
        builder_b.pis(2)
        with pytest.raises(SatError):
            po_miter(builder_a.build(), builder_b.build())
