"""Admission control for the sweep service: fair FIFO with aging.

The daemon serves many clients from a bounded worker pool, so two
pressures must be balanced:

* **Fairness** — a client that floods the queue must not starve others:
  each pending job is penalised by how many of its client's jobs are
  already ahead of it (queued or running), so interleaved clients drain
  round-robin even when one submitted a burst.
* **No starvation** — the penalty *ages away*: every time a job is
  passed over, its effective penalty drops by one, so even a deeply
  penalised job runs after a bounded number of other completions.  With
  a single client the queue degrades to plain FIFO.

Per-client budgets are enforced at admission time (``max_pending``) and
at execution time (the service clamps each job's wall-clock budget to
``max_job_seconds``).  All decisions are pure functions of the submit
order — never of wall clock — so the schedule is deterministic and
testable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional


@dataclass(slots=True)
class ClientBudget:
    """Admission-time and execution-time limits for one client."""

    #: Queued-but-not-finished jobs allowed at once (admission refuses
    #: beyond this; the submitter sees a clean "rejected" answer).
    max_pending: int = 16
    #: Clamp applied to each job's requested wall-clock budget (seconds);
    #: ``None`` leaves requests unclamped.
    max_job_seconds: Optional[float] = None


@dataclass(slots=True)
class _Pending:
    seq: int
    client: str
    job: object
    #: Effective penalty; decremented each time the job is passed over.
    penalty: int = 0
    #: Observability: times this job was aged past.
    aged: int = 0


@dataclass(slots=True)
class AdmissionStats:
    admitted: int = 0
    rejected: int = 0
    dispatched: int = 0
    aged: int = 0

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "dispatched": self.dispatched,
            "aged": self.aged,
        }


class AdmissionQueue:
    """Bounded, fair, aging job queue (thread-safe).

    ``submit`` either admits a job or returns ``False`` (client over its
    pending budget).  ``pop`` blocks until a job is available (or the
    queue is closed) and returns the fairest eligible job.
    """

    def __init__(
        self,
        default_budget: Optional[ClientBudget] = None,
        penalty_per_pending: int = 1,
    ):
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._default_budget = default_budget or ClientBudget()
        self._budgets: dict[str, ClientBudget] = {}
        self._penalty_per_pending = penalty_per_pending
        self._pending: list[_Pending] = []
        #: Client -> jobs admitted but not yet finished (queued + running).
        self._inflight: dict[str, int] = {}
        self._seq = 0
        self._closed = False
        self.stats = AdmissionStats()

    def set_budget(self, client: str, budget: ClientBudget) -> None:
        with self._lock:
            self._budgets[client] = budget

    def budget_for(self, client: str) -> ClientBudget:
        with self._lock:
            return self._budgets.get(client, self._default_budget)

    # ------------------------------------------------------------------
    def submit(self, client: str, job: object) -> bool:
        """Admit a job, or refuse it when the client is over budget."""
        with self._lock:
            if self._closed:
                return False
            budget = self._budgets.get(client, self._default_budget)
            inflight = self._inflight.get(client, 0)
            if inflight >= budget.max_pending:
                self.stats.rejected += 1
                return False
            # Fairness penalty: one unit per job this client already has
            # in flight, so a burst interleaves with other clients.
            penalty = self._penalty_per_pending * inflight
            self._pending.append(
                _Pending(seq=self._seq, client=client, job=job, penalty=penalty)
            )
            self._seq += 1
            self._inflight[client] = inflight + 1
            self.stats.admitted += 1
            self._available.notify()
            return True

    def pop(self, timeout: Optional[float] = None):
        """The next job by (penalty, seq); ages every job passed over.

        Returns ``None`` when the queue is closed (or the wait timed
        out) with nothing pending.
        """
        with self._lock:
            while not self._pending:
                if self._closed:
                    return None
                if not self._available.wait(timeout=timeout):
                    return None
            best = min(self._pending, key=lambda p: (p.penalty, p.seq))
            self._pending.remove(best)
            for other in self._pending:
                # Aging: being passed over erodes the fairness penalty,
                # so no job waits forever behind a steady stream.
                if other.penalty > 0:
                    other.penalty -= 1
                    other.aged += 1
                    self.stats.aged += 1
            self.stats.dispatched += 1
            return best.job

    def finish(self, client: str) -> None:
        """Mark one of ``client``'s jobs complete (frees pending budget)."""
        with self._lock:
            count = self._inflight.get(client, 0)
            if count <= 1:
                self._inflight.pop(client, None)
            else:
                self._inflight[client] = count - 1

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        """Wake every waiter; subsequent submits are refused."""
        with self._lock:
            self._closed = True
            self._available.notify_all()
