"""Exhaustive implication validation over all small gate functions.

For every non-trivial function of 2 and a sample of 3 inputs, and every
partial pin assignment, the implication engine's conclusions are compared
against ground truth computed by enumerating the function's minterms:

* a pin is truly forced iff every consistent completion agrees on it;
* the engine must flag a contradiction iff no consistent completion exists.

Simple implication is additionally checked to be weaker-or-equal to
advanced (it may force fewer pins, never different ones).
"""

import itertools

import pytest

from repro.core.assignment import Assignment
from repro.core.implication import ImplicationEngine, ImplicationStrategy
from repro.logic.truthtable import TruthTable
from repro.network.build import NetworkBuilder


def consistent_completions(table, inputs, output):
    """All (minterm, out) consistent with the partial pin assignment."""
    result = []
    for m in range(table.size):
        if any(
            inputs[i] is not None and inputs[i] != ((m >> i) & 1)
            for i in range(table.num_vars)
        ):
            continue
        out = table.output_for(m)
        if output is not None and out != output:
            continue
        result.append((m, out))
    return result


def ground_truth_forced(table, inputs, output):
    """(contradiction?, forced pin dict) by brute-force enumeration."""
    completions = consistent_completions(table, inputs, output)
    if not completions:
        return True, {}
    forced = {}
    for i in range(table.num_vars):
        if inputs[i] is not None:
            continue
        values = {(m >> i) & 1 for m, _ in completions}
        if len(values) == 1:
            forced[i] = values.pop()
    if output is None:
        outs = {out for _, out in completions}
        if len(outs) == 1:
            forced[table.num_vars] = outs.pop()
    return False, forced


def build_single_gate(table):
    builder = NetworkBuilder()
    pis = builder.pis(table.num_vars)
    g = builder.table(table, pis)
    builder.po(g)
    return builder.build(), pis, g


def apply_engine(net, pis, g, inputs, output, strategy):
    assignment = Assignment(net)
    seeds = []
    for i, value in enumerate(inputs):
        if value is not None:
            assignment.assign(pis[i], value)
            seeds.append(pis[i])
    if output is not None:
        assignment.assign(g, output)
        seeds.append(g)
    engine = ImplicationEngine(net, strategy)
    outcome = engine.propagate(assignment, seeds or [g])
    return assignment, outcome


def all_partial_assignments(num_vars):
    for inputs in itertools.product([None, 0, 1], repeat=num_vars):
        for output in (None, 0, 1):
            yield list(inputs), output


@pytest.mark.parametrize("bits", range(1, 15))
def test_all_two_input_functions(bits):
    """Every non-constant 2-input function, every partial assignment."""
    table = TruthTable(2, bits)
    net, pis, g = build_single_gate(table)
    for inputs, output in all_partial_assignments(2):
        contradiction, forced = ground_truth_forced(table, inputs, output)
        assignment, outcome = apply_engine(
            net, pis, g, inputs, output, ImplicationStrategy.ADVANCED
        )
        if contradiction:
            assert outcome.conflict, (bits, inputs, output)
            continue
        # No false conflicts.
        assert not outcome.conflict, (bits, inputs, output)
        # Everything truly forced must be found (single-gate completeness),
        # and nothing else may be assigned.
        for pin, value in forced.items():
            uid = g if pin == 2 else pis[pin]
            assert assignment.value(uid) == value, (bits, inputs, output, pin)
        for i, pi in enumerate(pis):
            if inputs[i] is None and i not in forced:
                assert assignment.value(pi) is None, (bits, inputs, output, i)
        if output is None and 2 not in forced:
            assert assignment.value(g) is None, (bits, inputs, output)


@pytest.mark.parametrize(
    "bits", [0x80, 0xE8, 0x96, 0x17, 0x6A, 0xCA, 0x01, 0x7F]
)
def test_sample_three_input_functions(bits):
    """Representative 3-input functions (and3, maj, xor3, mux, ...)."""
    table = TruthTable(3, bits)
    net, pis, g = build_single_gate(table)
    for inputs, output in all_partial_assignments(3):
        contradiction, forced = ground_truth_forced(table, inputs, output)
        assignment, outcome = apply_engine(
            net, pis, g, inputs, output, ImplicationStrategy.ADVANCED
        )
        if contradiction:
            assert outcome.conflict, (inputs, output)
            continue
        assert not outcome.conflict, (inputs, output)
        for pin, value in forced.items():
            uid = g if pin == 3 else pis[pin]
            assert assignment.value(uid) == value, (inputs, output, pin)


@pytest.mark.parametrize("bits", range(1, 15))
def test_simple_never_stronger_than_advanced(bits):
    table = TruthTable(2, bits)
    net, pis, g = build_single_gate(table)
    for inputs, output in all_partial_assignments(2):
        simple_asn, simple_out = apply_engine(
            net, pis, g, inputs, output, ImplicationStrategy.SIMPLE
        )
        advanced_asn, advanced_out = apply_engine(
            net, pis, g, inputs, output, ImplicationStrategy.ADVANCED
        )
        if simple_out.conflict:
            # simple conflicts only on true contradictions; advanced must too
            assert advanced_out.conflict
            continue
        if advanced_out.conflict:
            continue  # advanced may detect more contradictions
        for uid in (*pis, g):
            simple_value = simple_asn.value(uid)
            if simple_value is not None:
                assert advanced_asn.value(uid) == simple_value
