"""Node invariants."""

import pytest

from repro.errors import NetworkError
from repro.logic import gates
from repro.network.node import Node, NodeKind


class TestConstruction:
    def test_pi_node(self):
        node = Node(0, NodeKind.PI, name="a")
        assert node.is_pi
        assert not node.is_gate
        assert node.num_fanins == 0
        assert node.label() == "a"

    def test_pi_with_table_rejected(self):
        with pytest.raises(NetworkError):
            Node(0, NodeKind.PI, table=gates.inv())

    def test_pi_with_fanins_rejected(self):
        with pytest.raises(NetworkError):
            Node(0, NodeKind.PI, fanins=(1,))

    def test_gate_requires_table(self):
        with pytest.raises(NetworkError):
            Node(1, NodeKind.GATE, fanins=(0,))

    def test_gate_arity_must_match(self):
        with pytest.raises(NetworkError):
            Node(1, NodeKind.GATE, fanins=(0,), table=gates.and_gate(2))

    def test_const_gate(self):
        from repro.logic.truthtable import TruthTable

        node = Node(2, NodeKind.GATE, (), TruthTable.const(0, True))
        assert node.is_const
        assert node.is_gate


class TestQueries:
    def test_fanin_index(self):
        node = Node(3, NodeKind.GATE, (1, 2), gates.and_gate(2))
        assert node.fanin_index(1) == 0
        assert node.fanin_index(2) == 1

    def test_fanin_index_missing(self):
        node = Node(3, NodeKind.GATE, (1, 2), gates.and_gate(2))
        with pytest.raises(NetworkError):
            node.fanin_index(9)

    def test_duplicate_fanin_first_position(self):
        node = Node(3, NodeKind.GATE, (1, 1), gates.xor_gate(2))
        assert node.fanin_index(1) == 0

    def test_default_label(self):
        node = Node(17, NodeKind.PI)
        assert node.label() == "n17"
