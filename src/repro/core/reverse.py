"""Reverse simulation — the paper's baseline (Zhang et al., DAC 2021).

Reverse simulation propagates a desired value from a target node backward
to the PIs, choosing a random compatible input assignment at every gate and
failing outright on the first conflict (paper §1, Figure 1).  It performs
the *backward* subset of implication implicitly — when only one compatible
row exists there is nothing to choose — but it never propagates forward,
never uses advanced implication, and never ranks its choices, which is
exactly the gap SimGen fills.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.assignment import Assignment, Conflict
from repro.core.generator import GenerationReport, TargetedVectorGenerator


class ReverseSimGenerator(TargetedVectorGenerator):
    """The RevS baseline of the paper's evaluation.

    The classic formulation targets a *pair* of same-class nodes with
    complementary values (paper §1 step 1); ``max_targets`` therefore
    defaults to 2, but the implementation accepts any target count for
    apples-to-apples comparisons with SimGen.
    """

    name = "revsim"

    def __init__(
        self,
        network,
        seed: int = 0,
        vectors_per_iteration: int = 4,
        max_targets: int = 2,
        outgold_strategy=None,
    ):
        from repro.core.outgold import alternating_outgold

        super().__init__(
            network,
            seed,
            vectors_per_iteration,
            max_targets,
            outgold_strategy or alternating_outgold,
        )

    def generate_for_targets(
        self, outgold: Mapping[int, int]
    ) -> GenerationReport:
        assignment = Assignment(self.network)
        report = GenerationReport(vector=None)
        for target in self._order_targets(outgold):
            self._propagate_backward(assignment, target, outgold[target], report)
        return self._finalize(assignment, outgold, report)

    def _propagate_backward(
        self,
        assignment: Assignment,
        target: int,
        gold: int,
        report: GenerationReport,
    ) -> None:
        """Steps 2-5 of the reverse-simulation procedure (paper §1)."""
        marker = assignment.checkpoint()
        try:
            assignment.assign(target, gold)
        except Conflict:
            report.conflicts += 1
            return
        stack = [target]
        while stack:
            uid = stack.pop()
            node = self.network.node(uid)
            if node.is_pi or node.is_const:
                continue
            inputs, output = assignment.pins_of(uid)
            # Reverse simulation chooses among *complete* input assignments
            # producing the desired output (paper §1 / Figure 1: "'0' to one
            # input and '1' to the other or '0' to both" — full minterms, no
            # don't-cares).  Exploiting DCs is precisely what SimGen adds.
            table = node.table
            minterms = [
                m
                for m in range(1 << node.num_fanins)
                if table.output_for(m) == output
                and all(
                    inputs[i] is None or inputs[i] == ((m >> i) & 1)
                    for i in range(node.num_fanins)
                )
            ]
            if not minterms:
                # Step 5: a conflicting assignment terminates the attempt.
                assignment.revert(marker)
                report.conflicts += 1
                return
            if len(minterms) == 1:
                chosen = minterms[0]  # forced: backward-implication case
                report.implications += 1
            else:
                chosen = self.rng.choice(minterms)  # step 3: pick randomly
                report.decisions += 1
            try:
                for i in range(node.num_fanins):
                    if inputs[i] is None:
                        value = (chosen >> i) & 1
                        if assignment.assign(node.fanins[i], value):
                            stack.append(node.fanins[i])
            except Conflict:
                assignment.revert(marker)
                report.conflicts += 1
                return
