"""numpy backend: bit-identical to the big-int simulator."""

import random

import pytest

numpy = pytest.importorskip("numpy")

from repro.simulation import PatternBatch, Simulator
from repro.simulation.numpy_backend import (
    NumpySimulator,
    int_to_words,
    words_to_int,
)
from tests.conftest import random_network


class TestWordPacking:
    @pytest.mark.parametrize("width", [1, 63, 64, 65, 130, 1000])
    def test_roundtrip(self, width):
        rng = random.Random(width)
        value = rng.getrandbits(width)
        assert words_to_int(int_to_words(value, width), width) == value

    def test_zero_width(self):
        assert words_to_int(int_to_words(0, 0), 0) == 0


class TestCrossCheck:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("width", [1, 32, 64, 100, 257])
    def test_matches_bigint_simulator(self, seed, width):
        net = random_network(seed=seed, num_inputs=5, num_gates=15)
        batch = PatternBatch(net.pis, random.Random(seed))
        batch.add_random(width)
        words = batch.words()
        reference = Simulator(net).run_words(words, width)
        fast = NumpySimulator(net).run_words(words, width)
        assert fast == reference

    def test_constants_and_masking(self):
        from repro.network import NetworkBuilder

        builder = NetworkBuilder()
        a = builder.pi()
        one = builder.const(True)
        g = builder.and_(a, one)
        builder.po(g)
        net = builder.build()
        width = 70  # crosses a word boundary
        words = {a: (1 << 69) | 0b101}
        reference = Simulator(net).run_words(words, width)
        fast = NumpySimulator(net).run_words(words, width)
        assert fast == reference
        assert fast[one] == (1 << width) - 1

    def test_mapped_benchmark(self):
        from repro.benchgen import sweep_instance

        net = sweep_instance("alu4")
        batch = PatternBatch(net.pis, random.Random(3))
        batch.add_random(128)
        words = batch.words()
        assert NumpySimulator(net).run_words(words, 128) == Simulator(
            net
        ).run_words(words, 128)
