"""Network DAG construction, orders, levels, mutation, cloning."""

import pytest

from repro.errors import NetworkError
from repro.logic import gates
from repro.network import Network, NetworkBuilder, validate


class TestConstruction:
    def test_pi_and_gate_ids_increase(self):
        net = Network()
        a = net.add_pi("a")
        b = net.add_pi("b")
        g = net.add_gate(gates.and_gate(2), (a, b))
        assert a < b < g

    def test_missing_fanin_rejected(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.add_gate(gates.and_gate(2), (0, 1))

    def test_arity_mismatch_rejected(self):
        net = Network()
        a = net.add_pi()
        with pytest.raises(NetworkError):
            net.add_gate(gates.and_gate(2), (a,))

    def test_const_node(self):
        net = Network()
        c = net.add_const(True)
        assert net.node(c).is_const
        assert net.node(c).table.bits == 1

    def test_po_requires_existing_node(self):
        net = Network()
        with pytest.raises(NetworkError):
            net.add_po(7)

    def test_po_default_names(self):
        net = Network()
        a = net.add_pi()
        net.add_po(a)
        net.add_po(a)
        assert [name for name, _ in net.pos] == ["po0", "po1"]

    def test_counts(self, and_or_network):
        net, ids = and_or_network
        assert net.num_nodes == 5
        assert net.num_gates == 2
        assert len(net.pis) == 3


class TestFanouts:
    def test_fanouts_tracked(self, and_or_network):
        net, ids = and_or_network
        assert ids["inner"] in net.fanouts(ids["a"])
        assert ids["out"] in net.fanouts(ids["inner"])
        assert net.fanouts(ids["out"]) == ()

    def test_duplicate_fanin_single_fanout_entry(self):
        net = Network()
        a = net.add_pi()
        g = net.add_gate(gates.xor_gate(2), (a, a))
        assert net.fanouts(a) == (g,)

    def test_num_fanouts(self, and_or_network):
        net, ids = and_or_network
        assert net.num_fanouts(ids["inner"]) == 1


class TestOrders:
    def test_topological_order_respects_edges(self, and_or_network):
        net, ids = and_or_network
        order = net.topological_order()
        position = {uid: i for i, uid in enumerate(order)}
        for node in net.nodes():
            for f in node.fanins:
                assert position[f] < position[node.uid]

    def test_levels(self, and_or_network):
        net, ids = and_or_network
        assert net.level(ids["a"]) == 0
        assert net.level(ids["inner"]) == 1
        assert net.level(ids["out"]) == 2
        assert net.depth() == 2

    def test_const_is_level_zero(self):
        net = Network()
        c = net.add_const(False)
        g = net.add_gate(gates.inv(), (c,))
        assert net.level(c) == 0
        assert net.level(g) == 1


class TestMutation:
    def test_replace_fanin(self, and_or_network):
        net, ids = and_or_network
        net.replace_fanin(ids["out"], ids["inner"], ids["a"])
        assert net.node(ids["out"]).fanins == (ids["a"], ids["c"])
        assert ids["out"] not in net.fanouts(ids["inner"])
        assert ids["out"] in net.fanouts(ids["a"])

    def test_replace_fanin_rejects_non_fanin(self, and_or_network):
        net, ids = and_or_network
        with pytest.raises(NetworkError):
            net.replace_fanin(ids["out"], ids["a"], ids["b"])

    def test_replace_node_redirects_pos(self, and_or_network):
        net, ids = and_or_network
        net.replace_node(ids["out"], ids["inner"])
        assert net.pos[0][1] == ids["inner"]

    def test_replace_node_redirects_readers(self, and_or_network):
        net, ids = and_or_network
        net.replace_node(ids["inner"], ids["c"])
        assert ids["c"] in net.node(ids["out"]).fanins
        validate_ok = True
        try:
            validate(net)
        except NetworkError:
            validate_ok = False
        assert validate_ok

    def test_remove_dangling(self, and_or_network):
        net, ids = and_or_network
        net.replace_node(ids["inner"], ids["c"])
        removed = net.remove_dangling()
        assert removed == 1
        assert ids["inner"] not in net

    def test_remove_dangling_keeps_pos_and_pis(self, and_or_network):
        net, ids = and_or_network
        assert net.remove_dangling() == 0
        assert len(net.pis) == 3


class TestClone:
    def test_clone_is_deep(self, and_or_network):
        net, ids = and_or_network
        copy = net.clone()
        copy.replace_fanin(ids["out"], ids["inner"], ids["a"])
        assert net.node(ids["out"]).fanins == (ids["inner"], ids["c"])

    def test_map_clone_preserves_pi_order_and_function(self, and_or_network):
        net, ids = and_or_network
        from tests.conftest import networks_equal

        copy, mapping = net.map_clone()
        assert len(copy.pis) == len(net.pis)
        assert [copy.node(p).name for p in copy.pis] == [
            net.node(p).name for p in net.pis
        ]
        assert networks_equal(net, copy)

    def test_map_clone_mapping_complete(self, and_or_network):
        net, ids = and_or_network
        copy, mapping = net.map_clone()
        assert set(mapping) == set(net.node_ids())


class TestCycleDetection:
    def test_self_loop_detected(self):
        net = Network()
        a = net.add_pi()
        g = net.add_gate(gates.and_gate(2), (a, a))
        # Force a cycle by hand (bypassing the API, as a corruption test).
        net.node(g).fanins = (a, g)
        net._fanouts[g].append(g)
        net._invalidate()
        with pytest.raises(NetworkError):
            net.topological_order()


class TestValidate:
    def test_valid_network_passes(self, and_or_network):
        net, _ = and_or_network
        validate(net)

    def test_detects_arity_corruption(self, and_or_network):
        net, ids = and_or_network
        net.node(ids["out"]).fanins = (ids["inner"],)
        with pytest.raises(NetworkError):
            validate(net)
