"""Shannon decomposition to bounded arity."""

import pytest

from repro.errors import NetworkError
from repro.logic import TruthTable
from repro.network import NetworkBuilder, validate
from repro.transforms import decompose_to_arity
from tests.conftest import networks_equal, random_network


class TestDecompose:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("max_arity", [2, 3])
    def test_function_preserved(self, seed, max_arity):
        net = random_network(seed=seed, num_inputs=5, num_gates=14)
        dec = decompose_to_arity(net, max_arity)
        validate(dec)
        assert networks_equal(net, dec)

    @pytest.mark.parametrize("max_arity", [2, 3, 4])
    def test_arity_bound_respected(self, max_arity):
        net = random_network(seed=7, num_inputs=6, num_gates=20)
        dec = decompose_to_arity(net, max_arity)
        for node in dec.gates():
            assert node.num_fanins <= max_arity

    def test_narrow_gates_copied_unchanged(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g = builder.and_(a, b)
        builder.po(g)
        net = builder.build()
        dec = decompose_to_arity(net, 4)
        assert dec.num_gates == net.num_gates

    def test_wide_parity_decomposed(self):
        builder = NetworkBuilder()
        xs = builder.pis(5)
        g = builder.gate("xor", xs)  # one 5-input XOR gate
        builder.po(g)
        net = builder.build()
        dec = decompose_to_arity(net, 2)
        validate(dec)
        assert networks_equal(net, dec)
        assert all(n.num_fanins <= 2 for n in dec.gates())

    def test_constant_function_collapses(self):
        builder = NetworkBuilder()
        xs = builder.pis(3)
        g = builder.table(TruthTable.const(3, True), xs)
        builder.po(g)
        net = builder.build()
        dec = decompose_to_arity(net, 2)
        # three-input const gate must become a plain constant
        consts = [n for n in dec.gates() if n.is_const]
        assert consts

    def test_min_arity_enforced(self):
        net = random_network(seed=0)
        with pytest.raises(NetworkError):
            decompose_to_arity(net, 1)

    def test_pi_po_interface_preserved(self):
        net = random_network(seed=3)
        dec = decompose_to_arity(net, 2)
        assert [dec.node(p).name for p in dec.pis] == [
            net.node(p).name for p in net.pis
        ]
        assert [n for n, _ in dec.pos] == [n for n, _ in net.pos]
