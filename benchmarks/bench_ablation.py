"""Ablation benches for SimGen's design choices (DESIGN.md §3).

Each test sweeps one knob the paper fixes implicitly and prints the
Equation-5 cost it yields, so the contribution of each choice is
measurable: Eq. 4's alpha/beta balance, the per-vector target budget, the
vector budget per iteration, and the OUTgold ordering strategy.
"""

from __future__ import annotations

from repro.benchgen import sweep_instance
from repro.core import (
    DecisionStrategy,
    ImplicationStrategy,
    SimGenGenerator,
    level_alternating_outgold,
)
from repro.sweep import SweepConfig, SweepEngine

BENCH = "cps"
SWEEP = SweepConfig(seed=7, iterations=15, random_width=8)


def _final_cost(network, generator) -> int:
    engine = SweepEngine(network, generator, SWEEP)
    _, metrics = engine.run_simulation_phase()
    return metrics.final_cost


def test_ablation_alpha_beta(benchmark):
    """Eq. 4 weighting: beta=0 disables the MFFC term entirely."""
    network = sweep_instance(BENCH)

    def run():
        costs = {}
        for alpha, beta in ((100.0, 0.0), (100.0, 1.0), (1.0, 1.0)):
            generator = SimGenGenerator(
                network, seed=1, alpha=alpha, beta=beta
            )
            costs[(alpha, beta)] = _final_cost(network, generator)
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for (alpha, beta), cost in costs.items():
        print(f"  alpha={alpha:5.1f} beta={beta:3.1f} -> cost {cost}")


def test_ablation_max_targets(benchmark):
    """Targets per vector: 2 (RevS-style pairs) up to 16."""
    network = sweep_instance(BENCH)

    def run():
        return {
            m: _final_cost(
                network, SimGenGenerator(network, seed=1, max_targets=m)
            )
            for m in (2, 4, 8, 16)
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for m, cost in costs.items():
        print(f"  max_targets={m:2d} -> cost {cost}")


def test_ablation_vectors_per_iteration(benchmark):
    network = sweep_instance(BENCH)

    def run():
        return {
            v: _final_cost(
                network,
                SimGenGenerator(network, seed=1, vectors_per_iteration=v),
            )
            for v in (1, 4, 8)
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for v, cost in costs.items():
        print(f"  vectors/iter={v} -> cost {cost}")


def test_ablation_outgold_strategy(benchmark):
    """Paper §3: id-alternating vs the level-aware OUTgold variant."""
    network = sweep_instance(BENCH)

    def run():
        default = _final_cost(network, SimGenGenerator(network, seed=1))
        leveled = _final_cost(
            network,
            SimGenGenerator(
                network, seed=1, outgold_strategy=level_alternating_outgold
            ),
        )
        return {"id-alternating": default, "level-alternating": leveled}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, cost in costs.items():
        print(f"  {name}: cost {cost}")


def test_ablation_implication_strength(benchmark):
    """§4's question 'how much to imply?' head-to-head."""
    network = sweep_instance(BENCH)

    def run():
        return {
            strategy.value: _final_cost(
                network,
                SimGenGenerator(
                    network,
                    seed=1,
                    implication_strategy=strategy,
                    decision_strategy=DecisionStrategy.RANDOM,
                ),
            )
            for strategy in ImplicationStrategy
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, cost in costs.items():
        print(f"  implication={name}: cost {cost}")


def test_ablation_generator_family(benchmark):
    """All four vector sources head-to-head, including their hidden costs.

    The SAT-cex generator splits classes perfectly but pays solver calls
    during *generation* (the related-work trade-off the paper critiques);
    the table prints both the final cost and that hidden budget.
    """
    from repro.core import RandomGenerator, SatCexGenerator, make_generator

    network = sweep_instance(BENCH)

    def run():
        rows = {}
        for name in ("RandS", "RevS", "AI+DC+MFFC"):
            generator = make_generator(name, network, seed=1)
            rows[name] = (_final_cost(network, generator), 0)
        satgen = SatCexGenerator(network, seed=1)
        rows["SAT-cex"] = (_final_cost(network, satgen), satgen.sat_calls)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, (cost, hidden) in rows.items():
        suffix = f" (+{hidden} generation SAT calls)" if hidden else ""
        print(f"  {name:12s} cost {cost}{suffix}")
