"""A CDCL SAT solver.

This is the verification engine behind SAT sweeping (the role MiniSat plays
inside ABC).  Features: two-watched-literal propagation, first-UIP conflict
analysis with clause learning, VSIDS-style activity with decay, phase
saving (polarities persist across backtracks *and* across incremental
solve calls), LBD-scored learnt clauses with periodic database reduction
(so a long-lived incremental solver serving thousands of sweep queries
does not accumulate learnts unboundedly), geometric restarts, and an
optional conflict budget that yields ``UNKNOWN`` instead of running away
on hard instances.

Internal literal encoding: variable ``v`` (1-based) has positive literal
``2*v`` and negative literal ``2*v + 1``; DIMACS ints are converted at the
API boundary.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Iterable, Optional, Sequence

from repro.errors import SatError
from repro.sat.cnf import Cnf


class SatResult(Enum):
    """Outcome of a solve call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


def _to_internal(lit: int) -> int:
    if lit == 0:
        raise SatError("literal 0 is not allowed")
    var = abs(lit)
    return 2 * var + (1 if lit < 0 else 0)


def _negate(ilit: int) -> int:
    return ilit ^ 1


def _var(ilit: int) -> int:
    return ilit >> 1


class CdclSolver:
    """Conflict-driven clause-learning solver over DIMACS-style literals."""

    _UNASSIGNED = -1

    #: Learnt-DB reduction starts once this many learnts are live; the cap
    #: grows geometrically after every reduction (MiniSat-style).
    LEARNT_CAP_INIT = 4000
    LEARNT_CAP_GROWTH = 1.3

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[Optional[list[int]]] = []
        #: literal -> list of ``(clause index, blocker literal)`` watchers.
        #: The blocker is a cached other literal of the clause; while it is
        #: true the clause is satisfied and the visit skips the clause
        #: entirely (MiniSat's blocker discipline — the compiled backend
        #: implements the identical rule, which keeps the two bit-identical).
        self._watches: dict[int, list[tuple[int, int]]] = {}
        #: Live learnt clauses: clause index -> LBD at learn time.
        self._learnts: dict[int, int] = {}
        self._learnt_cap = self.LEARNT_CAP_INIT
        # Per-variable state, 1-indexed (index 0 unused).
        self._assign: list[int] = [self._UNASSIGNED]  # 0/1/UNASSIGNED
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]  # clause index or -1
        self._activity: list[float] = [0.0]
        self._phase: list[int] = [0]
        self._trail: list[int] = []  # internal literals in assignment order
        self._trail_lim: list[int] = []  # trail length at each decision level
        self._qhead = 0
        self._ok = True  # False once an empty clause was added
        self._var_inc = 1.0
        self._var_decay = 0.95
        self.stats = {
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "restarts": 0,
            "learnts_deleted": 0,
            "reductions": 0,
            "solve_calls": 0,
            "solve_seconds": 0.0,
            "watchers_compacted": 0,
        }

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its DIMACS index."""
        self._num_vars += 1
        self._assign.append(self._UNASSIGNED)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(0)
        return self._num_vars

    def _ensure_vars(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause (DIMACS literals); returns False if trivially UNSAT.

        Must be called at decision level 0 (i.e., between solve calls).
        """
        if self._trail_lim:
            raise SatError("add_clause only allowed at decision level 0")
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            ilit = _to_internal(lit)
            self._ensure_vars(_var(ilit))
            if _negate(ilit) in seen:
                return True  # tautology
            if ilit in seen:
                continue
            value = self._value(ilit)
            if value == 1 and self._level[_var(ilit)] == 0:
                return True  # satisfied at root
            if value == 0 and self._level[_var(ilit)] == 0:
                continue  # falsified at root: drop literal
            seen.add(ilit)
            clause.append(ilit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict >= 0:
                self._ok = False
                return False
            return True
        self._attach_clause(clause)
        return True

    def add_cnf(self, cnf: Cnf) -> bool:
        """Add all clauses of a :class:`~repro.sat.cnf.Cnf`."""
        self._ensure_vars(cnf.num_vars)
        ok = True
        for clause in cnf:
            ok = self.add_clause(clause) and ok
        return ok

    def _attach_clause(self, clause: list[int], lbd: Optional[int] = None) -> int:
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append((index, clause[1]))
        self._watches.setdefault(clause[1], []).append((index, clause[0]))
        if lbd is not None:
            self._learnts[index] = lbd
        return index

    def _reduce_learnts(self) -> None:
        """Delete the worst half of the removable learnt clauses.

        Ranking is (LBD desc, length desc, index desc) — fully deterministic.
        Glue clauses (LBD <= 2) and clauses locked as a reason of a current
        trail assignment are never removed.  Deleted slots become ``None``
        tombstones, and every watch list is compacted eagerly right here:
        dropping tombstoned entries only when their literal is next
        falsified (the old lazy rule) let watch lists on rarely-assigned
        literals grow without bound across escalation rungs.
        """
        locked = {self._reason[_var(ilit)] for ilit in self._trail}
        removable = sorted(
            (
                ci
                for ci, lbd in self._learnts.items()
                if lbd > 2 and ci not in locked
            ),
            key=lambda ci: (
                -self._learnts[ci],
                -len(self._clauses[ci]),
                -ci,
            ),
        )
        deleted = removable[: len(removable) // 2]
        for ci in deleted:
            self._clauses[ci] = None
            del self._learnts[ci]
        self.stats["learnts_deleted"] += len(deleted)
        self.stats["reductions"] += 1
        self._learnt_cap = int(self._learnt_cap * self.LEARNT_CAP_GROWTH)
        if deleted:
            self._compact_watches()

    def _compact_watches(self) -> None:
        """Drop watch entries of deleted clauses from every watch list.

        Order-preserving, so the surviving entries are visited in the same
        order as before — the propagation trajectory is unchanged.
        """
        clauses = self._clauses
        dropped = 0
        for lit, watch_list in self._watches.items():
            kept = [
                entry for entry in watch_list if clauses[entry[0]] is not None
            ]
            if len(kept) != len(watch_list):
                dropped += len(watch_list) - len(kept)
                self._watches[lit] = kept
        self.stats["watchers_compacted"] += dropped

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------
    def _value(self, ilit: int) -> int:
        """1 if literal true, 0 if false, UNASSIGNED otherwise."""
        av = self._assign[_var(ilit)]
        if av == self._UNASSIGNED:
            return self._UNASSIGNED
        return av ^ (ilit & 1)

    def _enqueue(self, ilit: int, reason: int) -> bool:
        value = self._value(ilit)
        if value == 0:
            return False
        if value == 1:
            return True
        var = _var(ilit)
        self._assign[var] = 1 - (ilit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(ilit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns conflicting clause index or -1."""
        while self._qhead < len(self._trail):
            ilit = self._trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            false_lit = _negate(ilit)
            watch_list = self._watches.get(false_lit)
            if not watch_list:
                continue
            new_list: list[tuple[int, int]] = []
            conflict = -1
            i = 0
            while i < len(watch_list):
                ci, blocker = watch_list[i]
                i += 1
                # A true blocker means the clause is satisfied: skip it
                # without touching the clause (the entry keeps its blocker).
                if self._value(blocker) == 1:
                    new_list.append((ci, blocker))
                    continue
                clause = self._clauses[ci]
                if clause is None:
                    continue  # deleted learnt: drop from this watch list
                # Normalize: put the false literal at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if first != blocker and self._value(first) == 1:
                    new_list.append((ci, first))
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(
                            (ci, first)
                        )
                        moved = True
                        break
                if moved:
                    continue
                new_list.append((ci, first))
                if not self._enqueue(first, ci):
                    conflict = ci
                    new_list.extend(watch_list[i:])
                    break
            self._watches[false_lit] = new_list
            if conflict >= 0:
                return conflict
        return -1

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        for ilit in reversed(self._trail[bound:]):
            var = _var(ilit)
            self._phase[var] = self._assign[var]
            self._assign[var] = self._UNASSIGNED
            self._reason[var] = -1
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP analysis; returns (learnt clause, backjump level)."""
        current = len(self._trail_lim)
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        p = -1
        index = len(self._trail) - 1
        clause = self._clauses[conflict]
        while True:
            start = 0 if p == -1 else 1
            for q in clause[start:]:
                var = _var(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find the next literal on the trail to resolve on.
            while not seen[_var(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            index -= 1
            var = _var(p)
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            clause = self._clauses[self._reason[var]]
        learnt[0] = _negate(p)
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest level in the clause; move that
        # literal to watch position 1.
        max_i = 1
        for i in range(2, len(learnt)):
            if self._level[_var(learnt[i])] > self._level[_var(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self._level[_var(learnt[1])]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _pick_branch(self) -> int:
        best_var = 0
        best_act = -1.0
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == self._UNASSIGNED:
                if self._activity[var] > best_act:
                    best_act = self._activity[var]
                    best_var = var
        if best_var == 0:
            return -1
        phase = self._phase[best_var]
        return 2 * best_var + (1 if phase == 0 else 0)

    #: Propagations between deadline polls.  Checking wall time costs a
    #: clock read, so the hot loop only looks every this many propagations;
    #: the worst-case deadline overshoot is one interval of propagation.
    BUDGET_CHECK_INTERVAL = 2048

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        budget=None,
    ) -> SatResult:
        """Run the CDCL search.

        Args:
            assumptions: Literals forced for this call only.
            conflict_limit: Abort with ``UNKNOWN`` after this many conflicts.
            budget: Optional :class:`~repro.runtime.budget.Budget`.  Its
                deadline is polled every :attr:`BUDGET_CHECK_INTERVAL`
                propagations, its conflict headroom tightens the conflict
                limit, and consumed conflicts are charged back on return.
        """
        start = time.perf_counter()
        try:
            return self._solve(assumptions, conflict_limit, budget)
        finally:
            # Closed on every exit path (UNKNOWN abort, interrupt) so the
            # per-solve wall clock never leaks an open window.
            self.stats["solve_calls"] += 1
            self.stats["solve_seconds"] += time.perf_counter() - start

    def _solve(
        self,
        assumptions: Sequence[int],
        conflict_limit: Optional[int],
        budget,
    ) -> SatResult:
        if not self._ok:
            return SatResult.UNSAT
        # Deadline / conflict headroom gate the work below; the SAT-call cap
        # deliberately does not — admission of a new call is the caller's
        # decision (the cap counts calls allowed to run, and this one was).
        if budget is not None and (
            budget.time_expired() or budget.remaining_conflicts() == 0
        ):
            self._model = None
            return SatResult.UNKNOWN
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict >= 0:
            self._ok = False
            return SatResult.UNSAT

        assumption_lits = [_to_internal(lit) for lit in assumptions]
        for ilit in assumption_lits:
            self._ensure_vars(_var(ilit))

        if budget is not None:
            remaining = budget.remaining_conflicts()
            if remaining is not None and (
                conflict_limit is None or remaining < conflict_limit
            ):
                conflict_limit = remaining
        next_time_check = (
            self.stats["propagations"] + self.BUDGET_CHECK_INTERVAL
            if budget is not None
            else None
        )

        conflicts_seen = 0
        restart_budget = 64
        result = SatResult.UNKNOWN
        while True:
            conflict = self._propagate()
            if (
                next_time_check is not None
                and self.stats["propagations"] >= next_time_check
            ):
                next_time_check = (
                    self.stats["propagations"] + self.BUDGET_CHECK_INTERVAL
                )
                if budget.time_expired():
                    result = SatResult.UNKNOWN
                    break
            if conflict >= 0:
                conflicts_seen += 1
                self.stats["conflicts"] += 1
                level = len(self._trail_lim)
                if level <= len(assumption_lits):
                    # Conflict depends only on assumptions (or root): UNSAT
                    # under these assumptions.
                    result = SatResult.UNSAT
                    break
                learnt, back = self._analyze(conflict)
                # LBD (literal block distance): distinct decision levels in
                # the learnt clause, measured before backjumping unassigns
                # them.  Low LBD ("glue") clauses are kept forever.
                lbd = len({self._level[_var(q)] for q in learnt})
                back = max(back, self._num_assumption_levels())
                self._cancel_until(back)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], -1):
                        result = SatResult.UNSAT
                        break
                else:
                    ci = self._attach_clause(learnt, lbd=lbd)
                    self._enqueue(learnt[0], ci)
                self._var_inc /= self._var_decay
                if conflict_limit is not None and conflicts_seen >= conflict_limit:
                    result = SatResult.UNKNOWN
                    break
                if conflicts_seen >= restart_budget:
                    restart_budget = int(restart_budget * 1.5)
                    self.stats["restarts"] += 1
                    self._cancel_until(self._num_assumption_levels())
                    if len(self._learnts) >= self._learnt_cap:
                        self._reduce_learnts()
                continue

            # No conflict: extend assumptions, then decide.
            level = len(self._trail_lim)
            if level < len(assumption_lits):
                ilit = assumption_lits[level]
                value = self._value(ilit)
                if value == 0:
                    result = SatResult.UNSAT
                    break
                self._trail_lim.append(len(self._trail))
                if value != 1:
                    self._enqueue(ilit, -1)
                continue
            decision = self._pick_branch()
            if decision == -1:
                result = SatResult.SAT
                break
            self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, -1)

        if budget is not None:
            budget.charge_conflicts(conflicts_seen)
        if result is SatResult.SAT:
            self._model = {
                var: bool(self._assign[var])
                for var in range(1, self._num_vars + 1)
                if self._assign[var] != self._UNASSIGNED
            }
        else:
            self._model = None
        self._cancel_until(0)
        return result

    def _num_assumption_levels(self) -> int:
        # During search, assumption decisions occupy the lowest levels; we
        # conservatively never backjump past them inside one solve call.
        return 0

    def model(self) -> dict[int, bool]:
        """The satisfying assignment of the last SAT solve call."""
        if getattr(self, "_model", None) is None:
            raise SatError("no model available (last result was not SAT)")
        return dict(self._model)


def solve_cnf(
    cnf: Cnf,
    assumptions: Sequence[int] = (),
    conflict_limit: Optional[int] = None,
    budget=None,
) -> tuple[SatResult, Optional[dict[int, bool]]]:
    """One-shot solve of a CNF; returns (result, model or None)."""
    solver = CdclSolver()
    solver.add_cnf(cnf)
    result = solver.solve(assumptions, conflict_limit, budget)
    model = solver.model() if result is SatResult.SAT else None
    return result, model
