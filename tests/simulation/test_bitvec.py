"""Packed bit-vector helpers."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import bitvec


class TestBasics:
    def test_width_mask(self):
        assert bitvec.width_mask(0) == 0
        assert bitvec.width_mask(3) == 0b111
        assert bitvec.width_mask(64) == (1 << 64) - 1

    def test_width_mask_negative(self):
        with pytest.raises(SimulationError):
            bitvec.width_mask(-1)

    def test_random_word_in_range(self):
        rng = random.Random(0)
        for width in (0, 1, 7, 65):
            word = bitvec.random_word(rng, width)
            assert 0 <= word <= bitvec.width_mask(width)

    def test_get_set_bit(self):
        word = 0b1010
        assert bitvec.get_bit(word, 1) == 1
        assert bitvec.get_bit(word, 2) == 0
        assert bitvec.set_bit(word, 0, 1) == 0b1011
        assert bitvec.set_bit(word, 3, 0) == 0b0010

    def test_from_to_bits_roundtrip(self):
        bits = [1, 0, 1, 1, 0]
        word = bitvec.from_bits(bits)
        assert bitvec.to_bits(word, 5) == bits

    def test_from_bits_rejects_non_boolean(self):
        with pytest.raises(SimulationError):
            bitvec.from_bits([2])


class TestExhaustiveWord:
    def test_matches_truth_table_convention(self):
        # Variable i's column: bit p of the word is bit i of pattern p.
        for num_vars in (1, 2, 3):
            for var in range(num_vars):
                word = bitvec.exhaustive_word(var, num_vars)
                for p in range(1 << num_vars):
                    assert bitvec.get_bit(word, p) == (p >> var) & 1

    def test_out_of_range(self):
        with pytest.raises(SimulationError):
            bitvec.exhaustive_word(2, 2)


class TestConcat:
    def test_concat_words(self):
        word, width = bitvec.concat_words([(0b01, 2), (0b1, 1), (0b10, 2)])
        assert width == 5
        assert word == 0b10_1_01

    def test_concat_masks_overflow(self):
        word, width = bitvec.concat_words([(0b111, 2)])
        assert word == 0b11
        assert width == 2


class TestProperties:
    @given(st.lists(st.integers(0, 1), max_size=40))
    def test_roundtrip_property(self, bits):
        assert bitvec.to_bits(bitvec.from_bits(bits), len(bits)) == bits

    @given(st.integers(0, 60), st.integers(1, 61))
    def test_set_then_get(self, pos, width):
        word = bitvec.set_bit(0, pos, 1)
        assert bitvec.get_bit(word, pos) == 1
