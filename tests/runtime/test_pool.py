"""CheckerPool: canonical-order verdicts, supervised retry, budgets."""

import pytest

from repro.errors import SweepError
from repro.network import NetworkBuilder
from repro.runtime import Budget, CheckerPool, RetryPolicy
from repro.sat.solver import SatResult
from repro.simulation.simulator import Simulator


def triple_network():
    """g1 == g2 (same AND), g3 differs, g4 == NOT g1 (NAND)."""
    builder = NetworkBuilder("pool")
    a, b = builder.pis(2)
    g1 = builder.and_(a, b, "g1")
    g2 = builder.and_(a, b, "g2")
    g3 = builder.or_(a, b, "g3")
    g4 = builder.nand_(a, b, "g4")
    builder.po(g3, "f")
    return builder.build(), (g1, g2, g3, g4)


def standard_pairs(nodes):
    g1, g2, g3, g4 = nodes
    return [
        (g1, g2, False),  # equal -> UNSAT
        (g1, g3, False),  # different -> SAT + counterexample
        (g1, g4, True),  # complement-equal -> UNSAT
    ]


class TestCheckPairs:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_verdicts_in_dispatch_order(self, jobs):
        net, nodes = triple_network()
        with CheckerPool(net, jobs) as pool:
            verdicts = pool.check_pairs(standard_pairs(nodes))
        assert [v.outcome for v in verdicts] == [
            SatResult.UNSAT,
            SatResult.SAT,
            SatResult.UNSAT,
        ]
        assert not any(v.degraded for v in verdicts)

    def test_counterexample_vector_distinguishes_the_pair(self):
        net, nodes = triple_network()
        g1, _, g3, _ = nodes
        with CheckerPool(net, 2) as pool:
            (_, sat, _) = pool.check_pairs(standard_pairs(nodes))
        import random

        total = sat.vector.completed(net.pis, random.Random(0))
        values = Simulator(net).run_vector(total.values)
        assert (values[g1] ^ values[g3]) & 1

    def test_repeated_calls_reuse_the_pool(self):
        net, nodes = triple_network()
        g1, g2, _, _ = nodes
        with CheckerPool(net, 2) as pool:
            first = pool.check_pairs([(g1, g2, False)])
            second = pool.check_pairs([(g1, g2, False)])
        assert first[0].outcome is SatResult.UNSAT
        assert second[0].outcome is SatResult.UNSAT

    def test_worker_conflicts_and_time_are_reported(self):
        net, nodes = triple_network()
        with CheckerPool(net, 2) as pool:
            verdicts = pool.check_pairs(standard_pairs(nodes))
        assert all(v.sat_time >= 0.0 for v in verdicts)
        assert all(v.conflicts >= 0 for v in verdicts)


class TestFaults:
    def test_killed_worker_pair_is_redispatched_and_resolved(self):
        """A SIGKILLed worker's pair is retried, not abandoned: the respawn
        runs disarmed (chaos_kill_limit=1) and answers it for real."""
        net, nodes = triple_network()
        g1, g2, _, _ = nodes
        with CheckerPool(
            net, 2, chaos_kill_pair=(g1, g2),
            retry_policy=RetryPolicy(backoff_base=0.01),
        ) as pool:
            verdicts = pool.check_pairs(standard_pairs(nodes))
            assert pool.worker_failures == 1
            stats = pool.supervision_stats
        retried, sat, comp = verdicts
        assert not retried.degraded
        assert retried.outcome is SatResult.UNSAT
        assert stats["respawns"] >= 1
        assert stats["retries"] >= 1
        assert stats["pairs_redispatched"] >= 1
        # The surviving pairs still get real answers (respawned worker
        # serves the tasks that were queued behind the poisoned one).
        assert sat.outcome is SatResult.SAT and not sat.degraded
        assert comp.outcome is SatResult.UNSAT and not comp.degraded

    def test_zero_retry_policy_degrades_on_first_loss(self):
        """RetryPolicy(max_retries=0) restores the legacy behaviour: the
        lost pair degrades to UNKNOWN immediately, never fabricated."""
        net, nodes = triple_network()
        g1, g2, _, _ = nodes
        with CheckerPool(
            net, 2, chaos_kill_pair=(g1, g2),
            retry_policy=RetryPolicy(max_retries=0),
        ) as pool:
            verdicts = pool.check_pairs(standard_pairs(nodes))
            assert pool.worker_failures == 1
        poisoned, sat, comp = verdicts
        assert poisoned.degraded
        assert poisoned.outcome is SatResult.UNKNOWN
        assert poisoned.vector is None
        assert sat.outcome is SatResult.SAT and not sat.degraded
        assert comp.outcome is SatResult.UNSAT and not comp.degraded

    def test_persistent_killer_exhausts_retry_budget_then_degrades(self):
        """chaos_kill_limit=None keeps every respawn armed: the pair keeps
        dying, the bounded retry budget runs out, and only then does the
        verdict degrade to UNKNOWN."""
        net, nodes = triple_network()
        g1, g2, _, _ = nodes
        with CheckerPool(
            net, 2, chaos_kill_pair=(g1, g2), chaos_kill_limit=None,
            retry_policy=RetryPolicy(max_retries=1, backoff_base=0.01),
        ) as pool:
            verdicts = pool.check_pairs(standard_pairs(nodes))
            # Initial dispatch + one retry, both killed.
            assert pool.worker_failures == 2
            stats = pool.supervision_stats
        poisoned, sat, comp = verdicts
        assert poisoned.degraded
        assert poisoned.outcome is SatResult.UNKNOWN
        assert stats["retries"] == 1
        assert sat.outcome is SatResult.SAT and not sat.degraded
        assert comp.outcome is SatResult.UNSAT and not comp.degraded

    def test_expired_deadline_degrades_outstanding_pairs(self):
        net, nodes = triple_network()
        with CheckerPool(net, 2) as pool:
            verdicts = pool.check_pairs(
                standard_pairs(nodes), budget=Budget(seconds=0)
            )
        assert all(v.degraded for v in verdicts)
        assert all(v.outcome is SatResult.UNKNOWN for v in verdicts)

    def test_closed_pool_rejects_work(self):
        net, nodes = triple_network()
        pool = CheckerPool(net, 1)
        pool.close()
        with pytest.raises(SweepError):
            pool.check_pairs(standard_pairs(nodes))

    def test_invalid_worker_count_rejected(self):
        net, _ = triple_network()
        with pytest.raises(SweepError):
            CheckerPool(net, 0)


class TestRouting:
    def test_shard_routing_is_stable_and_jobs_independent(self):
        net, _ = triple_network()
        with CheckerPool(net, 1) as one, CheckerPool(net, 4) as four:
            for rep, member in [(3, 4), (3, 5), (10, 99)]:
                assert one.shard_of(rep, member) == four.shard_of(rep, member)
                assert 0 <= one.shard_of(rep, member) < one.shards
