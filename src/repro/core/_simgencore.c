/* SimGen lane core: Algorithm 1's per-target inner loop in C.
 *
 * The compiled Python kernel (repro/core/compiled.py) already lowered the
 * assignment, implication fixpoint, and decision commit onto dense slot
 * arrays; this file is the same machine once more, in C, so the batch
 * generation driver (repro/core/batch.py) can retire whole targets per
 * call instead of paying interpreter cost per examination.  The contract
 * is *bit-identity*: every counter bump, every queue push, every trail
 * entry happens in exactly the order of CompiledSimGenKernel — the Python
 * driver owns everything that consumes the RNG, and this core suspends (a
 * "bounce", SG_NEED_RNG) whenever a decision needs a roulette/choice
 * draw.  The caller draws from the Python Random and resumes; the
 * suspended state machine continues exactly where it stopped, with no
 * double counting.  Transition-table states are resolved lazily *in C*
 * (sg_resolve_forced / sg_resolve_decision, verbatim ports of the Python
 * _TransitionTable.resolve / resolve_decision): resolution is a pure
 * integer function of the packed state and the rows, so doing it here
 * rather than bouncing into Python preserves bit-identity while removing
 * the dominant per-state round-trip cost.
 *
 * One core holds ONE assignment state (values/trail/packed gate state).
 * Lane parallelism lives a level up: the batch driver runs attempts
 * sequentially (the RNG serializes them anyway), snapshots each attempt's
 * tiny result (trail values), and verifies up to 64 of them in one
 * 64-wide simulator word.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Statuses returned by sg_start_target / sg_resume_*. */
#define SG_DONE 0            /* target finished (PIs set / no candidate) */
#define SG_CONFLICT 1        /* conflict hit; trail reverted to marker   */
#define SG_ASSIGN_CONFLICT 2 /* target node already holds the other value */
#define SG_ALREADY 3         /* not fresh and cone PIs already set       */
#define SG_NEED_RNG 4        /* mailbox: cand slot, state index, n rows  */
#define SG_ERROR (-1)

/* Transition-table entry markers (fref/dref). */
#define REF_UNRESOLVED (-1)
#define REF_CONFLICT (-2)

/* Resumable phases of the per-target state machine. */
#define PH_IDLE 0
#define PH_CHECK_TOP 1
#define PH_PROPAGATE 2
#define PH_DECIDE 3
#define PH_COMMIT 4

/* Counter indices (sg_counters order; the glue reads deltas). */
#define C_PROP_CALLS 0
#define C_EXAMINATIONS 1
#define C_FORCED 2
#define C_IMPL_CONFLICTS 3
#define C_DECISIONS 4
#define C_DEC_CONFLICTS 5
#define C_ROWS_COMMITTED 6
#define C_REVERTED 7
#define C_COUNT 8

typedef struct {
    int32_t k;
    int32_t n_rows;
    int32_t advanced; /* ImplicationStrategy.ADVANCED (multi-row meet) */
    int64_t stride;   /* 1 << (2k); index space is 3 * stride */
    int64_t *row_mask;
    int64_t *row_vals;
    int8_t *row_out;
    int32_t *fref; /* forced-pin pool offsets, REF_* markers */
    int32_t *dref; /* decision-row pool offsets, REF_* markers */
} SgTable;

typedef struct {
    int32_t n;

    /* Compiled network (write-once at build). */
    int8_t *is_pi;
    int32_t *table_of; /* table id, -1 for PI/const */
    int64_t *full_bits;
    int64_t *out_delta;
    int32_t *fi_off; /* fanin CSR */
    int32_t *fi;
    int32_t fi_len, fi_cap;
    int32_t *exam_off; /* examiner CSR */
    int32_t *exam;
    int32_t exam_len, exam_cap;
    int32_t *pin_off; /* pin-position CSR: (gate, delta0, delta1) */
    int32_t *pin_g;
    int64_t *pin_d0;
    int64_t *pin_d1;
    int32_t built_upto; /* next slot sg_set_node expects */
    int finalized;

    SgTable *tables;
    int32_t n_tables, cap_tables;

    /* Shared pools behind fref/dref (offset -> [count, payload...]). */
    int32_t *fpool;
    int32_t fpool_len, fpool_cap;
    int32_t *dpool;
    int32_t dpool_len, dpool_cap;
    int32_t *scratch; /* decision-resolution row buffer (max table rows) */
    int32_t scratch_cap;

    /* Assignment state (one lane; reused across attempts). */
    int8_t *values; /* -1 unassigned */
    int64_t *state;
    int32_t *trail;
    int32_t trail_len;
    uint8_t *queued;
    int32_t *queue; /* FIFO ring, capacity n + 1 */
    int32_t q_head, q_tail, q_cap;
    int64_t *exh_epoch;
    int64_t *cone_epoch;
    int64_t epoch;

    /* Cone cache: per target slot, fanin-cone members and cone PIs (built
     * lazily by one C DFS; only the *sets* are observable — via the
     * cone-epoch stamps and the all-PIs-assigned check — so the C visit
     * order need not replicate the Python dfs_fanin order). */
    int32_t **cone_mem;
    int32_t *cone_mem_n;
    int32_t **cone_pi;
    int32_t *cone_pi_n;
    int64_t *visit_epoch;
    int64_t visit_counter;
    int32_t *dfs_stack;
    int32_t *mem_buf;
    int32_t *pi_buf;

    /* Per-target context. */
    const int32_t *cur_cone_pis;
    int32_t n_cone_pis;
    int32_t marker;
    int32_t phase;
    int32_t cand_slot;
    int32_t chosen_row;
    int32_t *seeds;
    int32_t n_seeds, cap_seeds;
    int64_t prop_examined, prop_assigned;
    int64_t rep_implications, rep_decisions;

    int64_t counters[C_COUNT];

    /* Caller-owned mailboxes (bounce info / candidate row indices). */
    int64_t *info;
    int32_t *indices;
} SgCore;

static void *xalloc(size_t bytes) {
    void *p = malloc(bytes ? bytes : 1);
    return p;
}

static int grow_i32(int32_t **arr, int32_t *cap, int32_t need) {
    if (need <= *cap)
        return 0;
    int32_t c = *cap ? *cap : 64;
    while (c < need)
        c *= 2;
    int32_t *p = (int32_t *)realloc(*arr, (size_t)c * sizeof(int32_t));
    if (!p)
        return -1;
    *arr = p;
    *cap = c;
    return 0;
}

void *sg_new(int32_t n) {
    if (n < 0)
        return NULL;
    SgCore *h = (SgCore *)calloc(1, sizeof(SgCore));
    if (!h)
        return NULL;
    h->n = n;
    h->is_pi = (int8_t *)calloc((size_t)n + 1, 1);
    h->table_of = (int32_t *)xalloc(((size_t)n) * sizeof(int32_t));
    h->full_bits = (int64_t *)calloc((size_t)n + 1, sizeof(int64_t));
    h->out_delta = (int64_t *)calloc((size_t)n + 1, sizeof(int64_t));
    h->fi_off = (int32_t *)calloc((size_t)n + 2, sizeof(int32_t));
    h->exam_off = (int32_t *)calloc((size_t)n + 2, sizeof(int32_t));
    h->values = (int8_t *)xalloc((size_t)n);
    h->state = (int64_t *)calloc((size_t)n + 1, sizeof(int64_t));
    h->trail = (int32_t *)xalloc((size_t)n * sizeof(int32_t));
    h->queued = (uint8_t *)calloc((size_t)n + 1, 1);
    h->q_cap = n + 1;
    h->queue = (int32_t *)xalloc((size_t)h->q_cap * sizeof(int32_t));
    h->exh_epoch = (int64_t *)calloc((size_t)n + 1, sizeof(int64_t));
    h->cone_epoch = (int64_t *)calloc((size_t)n + 1, sizeof(int64_t));
    if (!h->is_pi || !h->table_of || !h->full_bits || !h->out_delta ||
        !h->fi_off || !h->exam_off || !h->values || !h->state || !h->trail ||
        !h->queued || !h->queue || !h->exh_epoch || !h->cone_epoch) {
        /* Leak-free enough for a build-time failure: the caller frees. */
        return NULL;
    }
    memset(h->values, 0xff, (size_t)n); /* all -1 */
    for (int32_t i = 0; i < n; i++)
        h->table_of[i] = -1;
    h->phase = PH_IDLE;
    return h;
}

void sg_free(void *hp) {
    SgCore *h = (SgCore *)hp;
    if (!h)
        return;
    for (int32_t t = 0; t < h->n_tables; t++) {
        free(h->tables[t].row_mask);
        free(h->tables[t].row_vals);
        free(h->tables[t].row_out);
        free(h->tables[t].fref);
        free(h->tables[t].dref);
    }
    free(h->tables);
    free(h->is_pi);
    free(h->table_of);
    free(h->full_bits);
    free(h->out_delta);
    free(h->fi_off);
    free(h->fi);
    free(h->exam_off);
    free(h->exam);
    free(h->pin_off);
    free(h->pin_g);
    free(h->pin_d0);
    free(h->pin_d1);
    free(h->fpool);
    free(h->dpool);
    free(h->scratch);
    free(h->values);
    free(h->state);
    free(h->trail);
    free(h->queued);
    free(h->queue);
    free(h->exh_epoch);
    free(h->cone_epoch);
    if (h->cone_mem)
        for (int32_t i = 0; i < h->n; i++)
            free(h->cone_mem[i]);
    if (h->cone_pi)
        for (int32_t i = 0; i < h->n; i++)
            free(h->cone_pi[i]);
    free(h->cone_mem);
    free(h->cone_mem_n);
    free(h->cone_pi);
    free(h->cone_pi_n);
    free(h->visit_epoch);
    free(h->dfs_stack);
    free(h->mem_buf);
    free(h->pi_buf);
    free(h->seeds);
    free(h);
}

int32_t sg_add_table(void *hp, int32_t k, int32_t n_rows, int32_t advanced,
                     const int64_t *mask, const int64_t *vals,
                     const int8_t *out) {
    SgCore *h = (SgCore *)hp;
    if (!h || k < 0 || k > 15 || n_rows < 0)
        return -1;
    if (grow_i32(&h->scratch, &h->scratch_cap, n_rows))
        return -1;
    if (h->n_tables == h->cap_tables) {
        int32_t c = h->cap_tables ? h->cap_tables * 2 : 16;
        SgTable *p = (SgTable *)realloc(h->tables, (size_t)c * sizeof(SgTable));
        if (!p)
            return -1;
        h->tables = p;
        h->cap_tables = c;
    }
    SgTable *t = &h->tables[h->n_tables];
    memset(t, 0, sizeof(*t));
    t->k = k;
    t->n_rows = n_rows;
    t->advanced = advanced ? 1 : 0;
    t->stride = (int64_t)1 << (2 * k);
    size_t span = (size_t)(3 * t->stride);
    t->row_mask = (int64_t *)xalloc((size_t)n_rows * sizeof(int64_t));
    t->row_vals = (int64_t *)xalloc((size_t)n_rows * sizeof(int64_t));
    t->row_out = (int8_t *)xalloc((size_t)n_rows);
    t->fref = (int32_t *)xalloc(span * sizeof(int32_t));
    t->dref = (int32_t *)xalloc(span * sizeof(int32_t));
    if (!t->row_mask || !t->row_vals || !t->row_out || !t->fref || !t->dref)
        return -1;
    memcpy(t->row_mask, mask, (size_t)n_rows * sizeof(int64_t));
    memcpy(t->row_vals, vals, (size_t)n_rows * sizeof(int64_t));
    memcpy(t->row_out, out, (size_t)n_rows);
    /* 0xff bytes == REF_UNRESOLVED (-1) in every int32. */
    memset(t->fref, 0xff, span * sizeof(int32_t));
    memset(t->dref, 0xff, span * sizeof(int32_t));
    return h->n_tables++;
}

int32_t sg_set_node(void *hp, int32_t slot, int32_t table_id, int32_t is_pi,
                    const int32_t *fanins, int32_t k, const int32_t *examiners,
                    int32_t n_exam) {
    SgCore *h = (SgCore *)hp;
    if (!h || slot != h->built_upto || slot >= h->n || h->finalized)
        return -1;
    if (table_id >= h->n_tables || k < 0 || n_exam < 0)
        return -1;
    h->built_upto++;
    h->is_pi[slot] = (int8_t)(is_pi ? 1 : 0);
    h->table_of[slot] = table_id;
    if (table_id >= 0) {
        if (h->tables[table_id].k != k)
            return -1;
        h->full_bits[slot] = (((int64_t)1 << k) - 1) << k;
        h->out_delta[slot] = (int64_t)1 << (2 * k);
    }
    if (grow_i32(&h->fi, &h->fi_cap, h->fi_len + k) ||
        grow_i32(&h->exam, &h->exam_cap, h->exam_len + n_exam))
        return -1;
    h->fi_off[slot] = h->fi_len;
    for (int32_t i = 0; i < k; i++) {
        if (fanins[i] < 0 || fanins[i] >= h->n)
            return -1;
        h->fi[h->fi_len++] = fanins[i];
    }
    h->fi_off[slot + 1] = h->fi_len;
    h->exam_off[slot] = h->exam_len;
    for (int32_t i = 0; i < n_exam; i++) {
        if (examiners[i] < 0 || examiners[i] >= h->n)
            return -1;
        h->exam[h->exam_len++] = examiners[i];
    }
    h->exam_off[slot + 1] = h->exam_len;
    if (k + 2 > h->cap_seeds)
        h->cap_seeds = k + 2;
    return 0;
}

int32_t sg_finalize(void *hp) {
    SgCore *h = (SgCore *)hp;
    if (!h || h->built_upto != h->n || h->finalized)
        return -1;
    int32_t n = h->n;
    h->seeds = (int32_t *)xalloc((size_t)(h->cap_seeds + 1) * sizeof(int32_t));
    h->pin_off = (int32_t *)calloc((size_t)n + 2, sizeof(int32_t));
    h->cone_mem = (int32_t **)calloc((size_t)n + 1, sizeof(int32_t *));
    h->cone_mem_n = (int32_t *)calloc((size_t)n + 1, sizeof(int32_t));
    h->cone_pi = (int32_t **)calloc((size_t)n + 1, sizeof(int32_t *));
    h->cone_pi_n = (int32_t *)calloc((size_t)n + 1, sizeof(int32_t));
    h->visit_epoch = (int64_t *)calloc((size_t)n + 1, sizeof(int64_t));
    h->dfs_stack = (int32_t *)xalloc(((size_t)n + 1) * sizeof(int32_t));
    h->mem_buf = (int32_t *)xalloc(((size_t)n + 1) * sizeof(int32_t));
    h->pi_buf = (int32_t *)xalloc(((size_t)n + 1) * sizeof(int32_t));
    if (!h->seeds || !h->pin_off || !h->cone_mem || !h->cone_mem_n ||
        !h->cone_pi || !h->cone_pi_n || !h->visit_epoch || !h->dfs_stack ||
        !h->mem_buf || !h->pi_buf)
        return -1;
    /* Count pin positions per driver, then fill (classic CSR two-pass). */
    for (int32_t g = 0; g < n; g++)
        for (int32_t p = h->fi_off[g]; p < h->fi_off[g + 1]; p++)
            h->pin_off[h->fi[p] + 1]++;
    for (int32_t s = 0; s < n; s++)
        h->pin_off[s + 1] += h->pin_off[s];
    int32_t total = h->pin_off[n];
    h->pin_g = (int32_t *)xalloc((size_t)total * sizeof(int32_t));
    h->pin_d0 = (int64_t *)xalloc((size_t)total * sizeof(int64_t));
    h->pin_d1 = (int64_t *)xalloc((size_t)total * sizeof(int64_t));
    int32_t *cursor = (int32_t *)xalloc((size_t)(n + 1) * sizeof(int32_t));
    if (!h->pin_g || !h->pin_d0 || !h->pin_d1 || !cursor)
        return -1;
    memcpy(cursor, h->pin_off, (size_t)n * sizeof(int32_t));
    for (int32_t g = 0; g < n; g++) {
        int32_t k = h->fi_off[g + 1] - h->fi_off[g];
        for (int32_t i = 0; i < k; i++) {
            int32_t driver = h->fi[h->fi_off[g] + i];
            int32_t at = cursor[driver]++;
            int64_t mask_delta = (int64_t)1 << (i + k);
            h->pin_g[at] = g;
            h->pin_d0[at] = mask_delta;
            h->pin_d1[at] = mask_delta + ((int64_t)1 << i);
        }
    }
    free(cursor);
    h->finalized = 1;
    return 0;
}

void sg_set_mailbox(void *hp, int64_t *info, int32_t *indices) {
    SgCore *h = (SgCore *)hp;
    h->info = info;
    h->indices = indices;
}

static int32_t pool_append(int32_t **pool, int32_t *len, int32_t *cap,
                           const int32_t *payload, int32_t count) {
    if (grow_i32(pool, cap, *len + count + 1))
        return -1;
    int32_t off = *len;
    (*pool)[(*len)++] = count;
    for (int32_t i = 0; i < count; i++)
        (*pool)[(*len)++] = payload[i];
    return off;
}

/* Lazily resolve one packed implication state — the fused single pass of
 * _TransitionTable.resolve, ported verbatim (same row order via the
 * output filter, same early "nothing forced" exits, same advanced-mode
 * meet).  Stores into fref; returns 0, or -1 on allocation failure. */
static int sg_resolve_forced(SgCore *h, SgTable *t, int64_t index) {
    int32_t k = t->k;
    int32_t output = (int32_t)(index / t->stride) - 1;
    int64_t rem = index - (int64_t)(output + 1) * t->stride;
    int64_t known_mask = rem >> k;
    int64_t known_values = rem & (((int64_t)1 << k) - 1);
    int32_t pairs[2 * 16]; /* k <= 15 pins + output */
    int32_t n_pairs = 0;
    if (output < 0 && !known_mask) {
        int32_t off =
            pool_append(&h->fpool, &h->fpool_len, &h->fpool_cap, pairs, 0);
        if (off < 0)
            return -1;
        t->fref[index] = off;
        return 0;
    }
    int advanced = t->advanced;
    int32_t count = 0;
    int64_t base_vals = 0;
    int32_t base_out = 0;
    int64_t forced_mask = 0;
    int out_agree = output < 0;
    int dead = 0; /* an early "forced = ()" return of the scalar resolve */
    for (int32_t r = 0; r < t->n_rows; r++) {
        if (output >= 0 && t->row_out[r] != output)
            continue;
        if ((t->row_vals[r] ^ known_values) & (t->row_mask[r] & known_mask))
            continue;
        if (count == 0) {
            base_vals = t->row_vals[r];
            base_out = t->row_out[r];
            forced_mask = t->row_mask[r] & ~known_mask;
        } else {
            if (!advanced) {
                /* Two or more matches without advanced implications:
                 * nothing is forced. */
                dead = 1;
                break;
            }
            forced_mask &= t->row_mask[r] & ~(t->row_vals[r] ^ base_vals);
            if (t->row_out[r] != base_out)
                out_agree = 0;
            if (!forced_mask && !out_agree) {
                dead = 1;
                break;
            }
        }
        count++;
    }
    if (count == 0) {
        t->fref[index] = REF_CONFLICT;
        return 0;
    }
    if (!dead) {
        for (int32_t i = 0; i < k; i++) {
            if ((forced_mask >> i) & 1) {
                pairs[2 * n_pairs] = i;
                pairs[2 * n_pairs + 1] = (int32_t)((base_vals >> i) & 1);
                n_pairs++;
            }
        }
        if (out_agree) {
            /* Single match: iff the output was unassigned; multi match:
             * iff every matching row agrees on the output. */
            pairs[2 * n_pairs] = k;
            pairs[2 * n_pairs + 1] = base_out;
            n_pairs++;
        }
    }
    int32_t off = pool_append(&h->fpool, &h->fpool_len, &h->fpool_cap, pairs,
                              2 * n_pairs);
    if (off < 0)
        return -1;
    /* The count slot stores the PAIR count. */
    h->fpool[off] = n_pairs;
    t->fref[index] = off;
    return 0;
}

/* Lazily resolve one packed decision state — _TransitionTable's
 * resolve_decision, fused into one pass (the early break only trims the
 * useful list; the conflict test needs just "any match").  Stores into
 * dref; returns 0, or -1 on allocation failure. */
static int sg_resolve_decision(SgCore *h, SgTable *t, int64_t index) {
    int32_t k = t->k;
    int32_t output = (int32_t)(index / t->stride) - 1;
    int64_t rem = index - (int64_t)(output + 1) * t->stride;
    int64_t known_mask = rem >> k;
    int64_t known_values = rem & (((int64_t)1 << k) - 1);
    int32_t n_match = 0;
    int32_t n_useful = 0;
    for (int32_t r = 0; r < t->n_rows; r++) {
        if (output >= 0 && t->row_out[r] != output)
            continue;
        if ((t->row_vals[r] ^ known_values) & (t->row_mask[r] & known_mask))
            continue;
        n_match++;
        int64_t binds_new = t->row_mask[r] & ~known_mask;
        if (!binds_new && output >= 0) {
            /* A matching row whose bound pins are all assigned covers
             * every completion: the node needs no decision at all. */
            n_useful = 0;
            break;
        }
        if (binds_new || output < 0)
            h->scratch[n_useful++] = r;
    }
    if (n_match == 0) {
        t->dref[index] = REF_CONFLICT;
        return 0;
    }
    int32_t off = pool_append(&h->dpool, &h->dpool_len, &h->dpool_cap,
                              h->scratch, n_useful);
    if (off < 0)
        return -1;
    t->dref[index] = off;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Assignment primitives (bit-for-bit the Python kernel's _set/_unwind) */
/* ------------------------------------------------------------------ */

static void sg_assign_slot(SgCore *h, int32_t slot, int32_t value) {
    h->values[slot] = (int8_t)value;
    h->trail[h->trail_len++] = slot;
    int32_t lo = h->pin_off[slot], hi = h->pin_off[slot + 1];
    if (value) {
        for (int32_t p = lo; p < hi; p++)
            h->state[h->pin_g[p]] += h->pin_d1[p];
        h->state[slot] += h->out_delta[slot] << 1;
    } else {
        for (int32_t p = lo; p < hi; p++)
            h->state[h->pin_g[p]] += h->pin_d0[p];
        h->state[slot] += h->out_delta[slot];
    }
}

static void sg_unwind_to(SgCore *h, int32_t mark) {
    for (int32_t t = mark; t < h->trail_len; t++) {
        int32_t slot = h->trail[t];
        int8_t value = h->values[slot];
        h->values[slot] = -1;
        int32_t lo = h->pin_off[slot], hi = h->pin_off[slot + 1];
        if (value) {
            for (int32_t p = lo; p < hi; p++)
                h->state[h->pin_g[p]] -= h->pin_d1[p];
            h->state[slot] -= h->out_delta[slot] << 1;
        } else {
            for (int32_t p = lo; p < hi; p++)
                h->state[h->pin_g[p]] -= h->pin_d0[p];
            h->state[slot] -= h->out_delta[slot];
        }
    }
    h->trail_len = mark;
}

void sg_reset(void *hp) {
    SgCore *h = (SgCore *)hp;
    /* Like kernel.reset(): unwind everything, NO reverted accounting. */
    sg_unwind_to(h, 0);
    h->phase = PH_IDLE;
    while (h->q_head != h->q_tail) {
        h->queued[h->queue[h->q_head]] = 0;
        h->q_head = (h->q_head + 1) % h->q_cap;
    }
}

int32_t sg_read_trail(void *hp, int32_t *slots, int8_t *vals) {
    SgCore *h = (SgCore *)hp;
    for (int32_t t = 0; t < h->trail_len; t++) {
        slots[t] = h->trail[t];
        vals[t] = h->values[h->trail[t]];
    }
    return h->trail_len;
}

/* Write the requested slots' current values into out (-1 unassigned). */
void sg_read_values(void *hp, const int32_t *slots, int32_t n, int8_t *out) {
    SgCore *h = (SgCore *)hp;
    for (int32_t i = 0; i < n; i++)
        out[i] = h->values[slots[i]];
}

/* Write only the assigned-PI trail entries (slot, value) in trail order;
 * returns the count.  The attempt driver needs exactly the cone-PI
 * bindings — filtering here avoids decoding the full trail in Python. */
int32_t sg_read_trail_pis(void *hp, int32_t *slots, int8_t *vals) {
    SgCore *h = (SgCore *)hp;
    int32_t n = 0;
    for (int32_t t = 0; t < h->trail_len; t++) {
        int32_t slot = h->trail[t];
        if (h->is_pi[slot]) {
            slots[n] = slot;
            vals[n++] = h->values[slot];
        }
    }
    return n;
}

void sg_counters(void *hp, int64_t *out) {
    SgCore *h = (SgCore *)hp;
    memcpy(out, h->counters, sizeof(h->counters));
}

/* ------------------------------------------------------------------ */
/* The per-target state machine                                        */
/* ------------------------------------------------------------------ */

static int sg_pis_set(SgCore *h) {
    for (int32_t i = 0; i < h->n_cone_pis; i++)
        if (h->values[h->cur_cone_pis[i]] < 0)
            return 0;
    return 1;
}

/* Build and cache the fanin cone of one target slot (members + PIs). */
static int sg_build_cone(SgCore *h, int32_t root) {
    int32_t n_mem = 0, n_pi = 0, sp = 0;
    int64_t vc = ++h->visit_counter;
    h->dfs_stack[sp++] = root;
    h->visit_epoch[root] = vc;
    while (sp) {
        int32_t u = h->dfs_stack[--sp];
        h->mem_buf[n_mem++] = u;
        if (h->is_pi[u])
            h->pi_buf[n_pi++] = u;
        for (int32_t p = h->fi_off[u]; p < h->fi_off[u + 1]; p++) {
            int32_t f = h->fi[p];
            if (h->visit_epoch[f] != vc) {
                h->visit_epoch[f] = vc;
                h->dfs_stack[sp++] = f;
            }
        }
    }
    int32_t *mem = (int32_t *)xalloc((size_t)n_mem * sizeof(int32_t));
    int32_t *pis = (int32_t *)xalloc((size_t)n_pi * sizeof(int32_t));
    if (!mem || !pis) {
        free(mem);
        free(pis);
        return -1;
    }
    memcpy(mem, h->mem_buf, (size_t)n_mem * sizeof(int32_t));
    if (n_pi > 0)
        memcpy(pis, h->pi_buf, (size_t)n_pi * sizeof(int32_t));
    h->cone_mem[root] = mem;
    h->cone_mem_n[root] = n_mem;
    h->cone_pi[root] = pis;
    h->cone_pi_n[root] = n_pi;
    return 0;
}

static void sg_push(SgCore *h, int32_t slot) {
    h->queue[h->q_tail] = slot;
    h->q_tail = (h->q_tail + 1) % h->q_cap;
}

static void sg_drain(SgCore *h) {
    while (h->q_head != h->q_tail) {
        h->queued[h->queue[h->q_head]] = 0;
        h->q_head = (h->q_head + 1) % h->q_cap;
    }
}

static void sg_push_examiners(SgCore *h, int32_t slot) {
    int32_t lo = h->exam_off[slot], hi = h->exam_off[slot + 1];
    for (int32_t e = lo; e < hi; e++) {
        int32_t cand = h->exam[e];
        if (!h->queued[cand]) {
            h->queued[cand] = 1;
            sg_push(h, cand);
        }
    }
}

/* Apply one slot's forced entry: 0 ok, 1 conflict, -1 allocation error. */
static int sg_examine(SgCore *h, int32_t slot) {
    int32_t tid = h->table_of[slot];
    SgTable *t = &h->tables[tid];
    int64_t index = h->state[slot];
    int32_t fr = t->fref[index];
    if (fr == REF_UNRESOLVED) {
        if (sg_resolve_forced(h, t, index))
            return -1;
        fr = t->fref[index];
    }
    if (fr == REF_CONFLICT)
        return 1;
    int32_t n_pairs = h->fpool[fr];
    const int32_t *pairs = h->fpool + fr + 1;
    int32_t k = t->k;
    const int32_t *fanins = h->fi + h->fi_off[slot];
    for (int32_t i = 0; i < n_pairs; i++) {
        int32_t pin = pairs[2 * i];
        int32_t val = pairs[2 * i + 1];
        int32_t target = (pin == k) ? slot : fanins[pin];
        int8_t cur = h->values[target];
        if (cur >= 0) {
            if (cur != val)
                return 1; /* clash with another implication path */
            continue;
        }
        sg_assign_slot(h, target, val);
        h->prop_assigned++;
        sg_push_examiners(h, target);
    }
    return 0;
}

/* Worklist fixpoint: 0 fixpoint, 1 conflict, -1 allocation error. */
static int sg_propagate(SgCore *h) {
    while (h->q_head != h->q_tail) {
        int32_t slot = h->queue[h->q_head];
        h->q_head = (h->q_head + 1) % h->q_cap;
        h->queued[slot] = 0;
        h->prop_examined++;
        if (h->table_of[slot] < 0)
            continue; /* PI or constant: nothing to force */
        int r = sg_examine(h, slot);
        if (r)
            return r;
    }
    return 0;
}

static int32_t sg_pick_candidate(SgCore *h) {
    for (int32_t t = h->trail_len - 1; t >= 0; t--) {
        int32_t slot = h->trail[t];
        if (h->cone_epoch[slot] != h->epoch)
            continue;
        int64_t full = h->full_bits[slot];
        if ((h->state[slot] & full) != full && h->exh_epoch[slot] != h->epoch)
            return slot;
    }
    return -1;
}

static int32_t sg_finish(SgCore *h, int32_t status) {
    h->info[3] = h->rep_implications;
    h->info[4] = h->rep_decisions;
    h->phase = PH_IDLE;
    return status;
}

static int32_t sg_conflict_out(SgCore *h) {
    h->counters[C_REVERTED] += h->trail_len - h->marker;
    sg_unwind_to(h, h->marker);
    return sg_finish(h, SG_CONFLICT);
}

static int32_t sg_run(SgCore *h) {
    for (;;) {
        switch (h->phase) {
        case PH_CHECK_TOP: {
            if (sg_pis_set(h))
                return sg_finish(h, SG_DONE);
            for (int32_t s = 0; s < h->n_seeds; s++)
                sg_push_examiners(h, h->seeds[s]);
            h->n_seeds = 0;
            h->prop_examined = 0;
            h->prop_assigned = 0;
            h->phase = PH_PROPAGATE;
        } /* fall through */
        case PH_PROPAGATE: {
            int r = sg_propagate(h);
            if (r < 0)
                return SG_ERROR;
            /* Close the propagate stats window (the scalar `finally`). */
            h->counters[C_PROP_CALLS]++;
            h->counters[C_EXAMINATIONS] += h->prop_examined;
            h->counters[C_FORCED] += h->prop_assigned;
            h->rep_implications += h->prop_assigned;
            if (r == 1) {
                h->counters[C_IMPL_CONFLICTS]++;
                sg_drain(h);
                return sg_conflict_out(h);
            }
            if (sg_pis_set(h))
                return sg_finish(h, SG_DONE);
            int32_t cand = sg_pick_candidate(h);
            if (cand < 0)
                return sg_finish(h, SG_DONE);
            h->cand_slot = cand;
            h->counters[C_DECISIONS]++;
            h->phase = PH_DECIDE;
        } /* fall through */
        case PH_DECIDE: {
            int32_t tid = h->table_of[h->cand_slot];
            SgTable *t = &h->tables[tid];
            int64_t index = h->state[h->cand_slot];
            int32_t dr = t->dref[index];
            if (dr == REF_UNRESOLVED) {
                if (sg_resolve_decision(h, t, index))
                    return SG_ERROR;
                dr = t->dref[index];
            }
            if (dr == REF_CONFLICT) {
                h->counters[C_DEC_CONFLICTS]++;
                return sg_conflict_out(h);
            }
            int32_t count = h->dpool[dr];
            if (count == 0) {
                /* decide() returned (False, []): candidate exhausted. */
                h->exh_epoch[h->cand_slot] = h->epoch;
                h->n_seeds = 0;
                h->phase = PH_CHECK_TOP;
                continue;
            }
            h->counters[C_ROWS_COMMITTED]++;
            memcpy(h->indices, h->dpool + dr + 1,
                   (size_t)count * sizeof(int32_t));
            h->info[0] = h->cand_slot;
            h->info[1] = index;
            h->info[2] = count;
            return SG_NEED_RNG; /* resume lands in PH_COMMIT */
        }
        case PH_COMMIT: {
            int32_t slot = h->cand_slot;
            SgTable *t = &h->tables[h->table_of[slot]];
            int32_t row = h->chosen_row;
            if (row < 0 || row >= t->n_rows)
                return SG_ERROR;
            int64_t mask = t->row_mask[row];
            int64_t vals = t->row_vals[row];
            int32_t out = t->row_out[row];
            int32_t k = t->k;
            const int32_t *fanins = h->fi + h->fi_off[slot];
            h->n_seeds = 0;
            int committed = 0;
            for (int32_t i = 0; i < k; i++) {
                if (!((mask >> i) & 1))
                    continue;
                int32_t lit = (int32_t)((vals >> i) & 1);
                int32_t f = fanins[i];
                int8_t cur = h->values[f];
                if (cur >= 0) {
                    if (cur != lit) {
                        /* Duplicated fanins bound to opposite values by
                         * the chosen row: decide() -> (True, committed);
                         * the driver reverts, with NO dec-conflict count. */
                        return sg_conflict_out(h);
                    }
                    continue;
                }
                sg_assign_slot(h, f, lit);
                h->seeds[h->n_seeds++] = f;
                committed = 1;
            }
            if (h->values[slot] < 0) {
                sg_assign_slot(h, slot, out);
                h->seeds[h->n_seeds++] = slot;
                committed = 1;
            }
            if (!committed) {
                h->exh_epoch[slot] = h->epoch;
                h->n_seeds = 0;
            } else {
                h->rep_decisions++;
            }
            h->phase = PH_CHECK_TOP;
            continue;
        }
        default:
            return SG_ERROR;
        }
    }
}

int32_t sg_start_target(void *hp, int32_t target, int32_t gold) {
    SgCore *h = (SgCore *)hp;
    if (!h || !h->finalized || !h->info || target < 0 || target >= h->n)
        return SG_ERROR;
    if (!h->cone_mem[target] && sg_build_cone(h, target))
        return SG_ERROR;
    h->epoch++;
    h->cur_cone_pis = h->cone_pi[target];
    h->n_cone_pis = h->cone_pi_n[target];
    const int32_t *members = h->cone_mem[target];
    int32_t n_members = h->cone_mem_n[target];
    for (int32_t i = 0; i < n_members; i++)
        h->cone_epoch[members[i]] = h->epoch;
    h->marker = h->trail_len;
    h->rep_implications = 0;
    h->rep_decisions = 0;
    int8_t cur = h->values[target];
    int fresh;
    if (cur >= 0) {
        if (cur != (int8_t)gold)
            return sg_finish(h, SG_ASSIGN_CONFLICT);
        fresh = 0;
    } else {
        sg_assign_slot(h, target, gold);
        fresh = 1;
    }
    if (!fresh && sg_pis_set(h))
        return sg_finish(h, SG_ALREADY);
    h->seeds[0] = target;
    h->n_seeds = 1;
    h->phase = PH_CHECK_TOP;
    return sg_run(h);
}

int32_t sg_resume_rng(void *hp, int32_t chosen_row) {
    SgCore *h = (SgCore *)hp;
    if (!h || h->phase != PH_DECIDE)
        return SG_ERROR;
    h->chosen_row = chosen_row;
    h->phase = PH_COMMIT;
    return sg_run(h);
}
