"""Bench: regenerate Figure 7 (random vs hybrid traces on apex2/cps, §6.5)."""

from __future__ import annotations

from repro.experiments.fig7 import run_fig7


def test_fig7(benchmark, config, shared_runner):
    result = benchmark.pedantic(
        run_fig7,
        kwargs={
            "config": config,
            "runner": shared_runner,
            "iterations": 25,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    for bench_name, traces in result.traces.items():
        by_label = {t.label: t for t in traces}
        rand_final = by_label["RandS"].costs[-1]
        simgen_final = by_label["RandS->SimGen"].costs[-1]
        # Reproduction shape: the SimGen hybrid ends at or below the pure
        # random plateau (it shares the random prefix, then keeps splitting).
        assert simgen_final <= rand_final, bench_name
