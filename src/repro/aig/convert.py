"""Conversions between table-based networks and AIGs.

``network_to_aig`` synthesizes each gate's truth table into AND/INV logic
through its ISOP cover (a cube becomes an AND of literals, the cover an OR
of cubes) — with structural hashing this is a reasonable strash.
``aig_to_network`` re-expresses the AIG as a gate network of 2-input ANDs
and inverters, so the whole toolbox (mapping, sweeping, SimGen) applies to
AIG-sourced designs.
"""

from __future__ import annotations

from typing import Optional

from repro.aig.aig import FALSE, TRUE, Aig, lit_node, lit_not, lit_phase
from repro.logic import gates
from repro.logic.cubes import isop
from repro.network.network import Network


def network_to_aig(network: Network, name: Optional[str] = None) -> Aig:
    """Synthesize a gate network into a structurally hashed AIG."""
    aig = Aig(name or network.name)
    literal_of: dict[int, int] = {}
    for pi in network.pis:
        literal_of[pi] = aig.add_pi(network.node(pi).name)
    for uid in network.topological_order():
        node = network.node(uid)
        if node.is_pi:
            continue
        if node.is_const:
            literal_of[uid] = TRUE if node.table.bits else FALSE
            continue
        fanin_lits = [literal_of[f] for f in node.fanins]
        terms = []
        for cube in isop(node.table):
            cube_lits = []
            for i, value in enumerate(cube.literals()):
                if value is None:
                    continue
                cube_lits.append(
                    fanin_lits[i] if value else lit_not(fanin_lits[i])
                )
            terms.append(aig.and_many(cube_lits))
        literal_of[uid] = aig.or_many(terms)
    for po_name, uid in network.pos:
        aig.add_po(literal_of[uid], po_name)
    return aig


def aig_to_network(aig: Aig, name: Optional[str] = None) -> Network:
    """Express an AIG as a network of 2-input AND gates and inverters."""
    network = Network(name or aig.name)
    node_of: dict[int, int] = {}
    inverter_of: dict[int, int] = {}
    const0: Optional[int] = None

    def ensure_const0() -> int:
        nonlocal const0
        if const0 is None:
            const0 = network.add_const(False)
        return const0

    for index in aig.pis:
        node_of[index] = network.add_pi(aig.node(index).name)

    def literal_node(literal: int) -> int:
        index = lit_node(literal)
        if index == 0:
            base = ensure_const0()
        else:
            base = node_of[index]
        if not lit_phase(literal):
            return base
        if base not in inverter_of:
            inverter_of[base] = network.add_gate(gates.inv(), (base,))
        return inverter_of[base]

    for node in aig.ands():
        a = literal_node(node.fanin0)
        b = literal_node(node.fanin1)
        node_of[node.index] = network.add_gate(gates.and_gate(2), (a, b))
    for po_name, literal in aig.pos:
        network.add_po(literal_node(literal), po_name)
    return network
