"""Crash-safe resume: interrupted-then-resumed runs equal uninterrupted ones.

The acceptance gate of the durable-session work: a journaled sweep killed
at an *arbitrary* byte offset of its journal and then resumed must produce
a byte-identical reduced network and an identical sweep signature to a run
that was never interrupted — for any worker count.
"""

import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.strategies import make_generator
from repro.io.blif import blif_text
from repro.runtime import VerdictJournal, sweep_signature
from repro.sat.tseitin import po_miter
from repro.sweep import SweepConfig, SweepEngine
from repro.sweep.reduce import reduce_network
from tests.conftest import random_network
from tests.sweep.test_parallel import merge_projection


def workload_network():
    """Two copies of a random circuit over shared PIs (real SAT work)."""
    base = random_network(seed=3, num_inputs=5, num_gates=25)
    return po_miter(base, base)


def journaled_sweep(net, journal_path, jobs=1, resume=False):
    journal = VerdictJournal(journal_path, resume=resume, fsync=False)
    config = SweepConfig(seed=11, jobs=jobs, journal=journal)
    generator = make_generator("RandS", net, seed=11)
    try:
        return SweepEngine(net, generator, config).run()
    finally:
        journal.close()


def reduced_bytes(net, result):
    reduced, _ = reduce_network(net, result.equivalences)
    return blif_text(reduced)


class TestResumeIdentity:
    def test_full_journal_replays_with_zero_solving(self, tmp_path):
        net = workload_network()
        path = tmp_path / "j.jsonl"
        baseline = journaled_sweep(net, path)
        resumed = journaled_sweep(net, path, resume=True)
        assert sweep_signature(net, resumed) == sweep_signature(net, baseline)
        assert reduced_bytes(net, resumed) == reduced_bytes(net, baseline)
        # Everything came from the journal: zero SAT wall time.
        assert resumed.metrics.sat_time == 0.0

    def test_journaled_run_matches_plain_run(self, tmp_path):
        """Query-pure journaled mode merges exactly what the default
        incremental mode merges (the trajectory projection is shared)."""
        net = workload_network()
        plain = SweepEngine(
            net, make_generator("RandS", net, seed=11), SweepConfig(seed=11)
        ).run()
        journaled = journaled_sweep(net, tmp_path / "j.jsonl")
        assert merge_projection(journaled) == merge_projection(plain)

    @pytest.mark.parametrize("jobs,seeds", [(1, 30), (4, 6)])
    def test_kill_at_random_offset_then_resume_is_identical(
        self, tmp_path, jobs, seeds
    ):
        """Simulated crash at every kind of journal offset: resuming from
        the torn prefix reproduces the uninterrupted run bit-for-bit."""
        net = workload_network()
        base_path = tmp_path / "base.jsonl"
        baseline = journaled_sweep(net, base_path, jobs=jobs)
        base_sig = sweep_signature(net, baseline)
        base_blif = reduced_bytes(net, baseline)
        intact = base_path.read_bytes()
        assert len(intact) > 100, "workload must journal real verdicts"
        for seed in range(seeds):
            offset = random.Random(seed).randrange(len(intact))
            path = tmp_path / f"crash{jobs}_{seed}.jsonl"
            path.write_bytes(intact[:offset])
            resumed = journaled_sweep(net, path, jobs=jobs, resume=True)
            assert sweep_signature(net, resumed) == base_sig, (jobs, seed)
            assert reduced_bytes(net, resumed) == base_blif, (jobs, seed)

    def test_journal_recorded_at_jobs4_replays_at_jobs1(self, tmp_path):
        net = workload_network()
        path = tmp_path / "j4.jsonl"
        baseline = journaled_sweep(net, path, jobs=4)
        resumed = journaled_sweep(net, path, jobs=1, resume=True)
        assert sweep_signature(net, resumed) == sweep_signature(net, baseline)
        assert reduced_bytes(net, resumed) == reduced_bytes(net, baseline)


class TestCliCrashResume:
    def test_sigkilled_sweep_resumes_to_identical_network(self, tmp_path):
        """End-to-end crash drill through the CLI: SIGKILL the coordinator
        while it is journaling, resume, byte-compare the reduced network."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")

        def tools(*argv, **kwargs):
            return subprocess.run(
                [sys.executable, "-m", "repro.tools", *argv],
                cwd=tmp_path, env=env, capture_output=True, **kwargs
            )

        assert tools("gen", "cordic", "-o", "net.blif").returncode == 0
        baseline = tools(
            "sweep", "net.blif", "-o", "base.blif",
            "--journal", "base.jsonl", "--seed", "1",
        )
        assert baseline.returncode == 0, baseline.stderr

        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.tools", "sweep", "net.blif",
             "-o", "crash.blif", "--journal", "crash.jsonl", "--seed", "1"],
            cwd=tmp_path, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        journal = tmp_path / "crash.jsonl"
        deadline = time.monotonic() + 60
        # Kill once verdicts are flowing (mid-run if we catch it; a clean
        # exit first just means the resume below replays everything).
        while time.monotonic() < deadline and victim.poll() is None:
            if journal.exists() and journal.stat().st_size > 2000:
                victim.send_signal(signal.SIGKILL)
                break
            time.sleep(0.001)
        victim.wait(timeout=60)
        assert not (tmp_path / "crash.blif").exists() or victim.returncode == 0

        resumed = tools(
            "sweep", "net.blif", "-o", "crash.blif",
            "--journal", "crash.jsonl", "--resume", "--seed", "1",
        )
        assert resumed.returncode == 0, resumed.stderr
        assert (tmp_path / "crash.blif").read_bytes() == (
            tmp_path / "base.blif"
        ).read_bytes()


class TestCrossBackendResume:
    """A journal is keyed by trajectory, not by kernel implementation.

    The batch/compiled/reference SimGen backends produce bit-identical
    trajectories, so a journal recorded under one must replay under any
    other.  (The fingerprint's generator label once kept the ``Batch``
    prefix, so journals written under the *default* backend refused to
    resume under ``--simgen-backend compiled``/``reference``.)
    """

    def backend_sweep(self, net, journal_path, backend, resume=False):
        journal = VerdictJournal(journal_path, resume=resume, fsync=False)
        config = SweepConfig(seed=11, journal=journal)
        generator = make_generator(
            "RandS", net, seed=11, simgen_backend=backend
        )
        try:
            return SweepEngine(net, generator, config).run()
        finally:
            journal.close()

    @pytest.mark.parametrize("resume_backend", ["compiled", "reference"])
    def test_batch_journal_replays_under_other_backends(
        self, tmp_path, resume_backend
    ):
        net = workload_network()
        path = tmp_path / "j.jsonl"
        baseline = self.backend_sweep(net, path, "batch")
        resumed = self.backend_sweep(
            net, path, resume_backend, resume=True
        )
        assert sweep_signature(net, resumed) == sweep_signature(net, baseline)
        assert reduced_bytes(net, resumed) == reduced_bytes(net, baseline)
        assert resumed.metrics.sat_time == 0.0
