"""Bit-parallel circuit simulation (paper §2.3).

The simulator evaluates every node for a whole batch of input patterns at
once.  Per distinct truth table it precomputes an *evaluation plan*: the
smaller of the onset/offset ISOP covers, applied cube-by-cube with word-wide
AND/OR — typical LUT functions have only a handful of cubes, so evaluating a
node costs a few big-int operations regardless of batch width.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Mapping, Optional

from repro.errors import SimulationError
from repro.logic.cubes import isop
from repro.logic.truthtable import TruthTable
from repro.network.network import Network
from repro.network.traversal import cone_pis, cone_topological_order
from repro.simulation.bitvec import exhaustive_word, width_mask
from repro.simulation.patterns import PatternBatch


@lru_cache(maxsize=16384)
def _eval_plan(table: TruthTable) -> tuple[bool, tuple[tuple[int, int], ...]]:
    """(complement?, cubes) — the cheaper of onset/offset covers.

    Each cube is ``(mask, values)`` over the table's inputs.  If
    ``complement`` is True the cubes cover the offset and the OR of their
    terms must be inverted.
    """
    onset = isop(table)
    offset = isop(~table)
    if len(offset) < len(onset):
        return True, tuple((c.mask, c.values) for c in offset)
    return False, tuple((c.mask, c.values) for c in onset)


def _eval_node(
    table: TruthTable, fanin_words: list[int], mask: int
) -> int:
    """Evaluate one gate over packed fanin words."""
    complement, cubes = _eval_plan(table)
    result = 0
    for cube_mask, cube_values in cubes:
        term = mask
        i = 0
        m = cube_mask
        while m:
            if m & 1:
                word = fanin_words[i]
                term &= word if (cube_values >> i) & 1 else ~word & mask
                if not term:
                    break
            m >>= 1
            i += 1
        result |= term
        if result == mask:
            break
    return (result ^ mask) if complement else result


class Simulator:
    """Simulates a fixed network for arbitrary pattern batches."""

    def __init__(self, network: Network):
        self.network = network
        self._topo = network.topological_order()
        #: Work counters for the metrics registry (published as ``sim.*``).
        self.stats = {"batches": 0, "patterns": 0, "node_evals": 0}

    def run_words(
        self, pi_words: Mapping[int, int], width: int
    ) -> dict[int, int]:
        """Simulate packed PI words; returns node id -> packed output word.

        Every PI of the network must be present in ``pi_words``.
        """
        if width < 0:
            raise SimulationError("width must be >= 0")
        self.stats["batches"] += 1
        self.stats["patterns"] += width
        self.stats["node_evals"] += len(self._topo) * max(1, (width + 63) // 64)
        mask = width_mask(width)
        values: dict[int, int] = {}
        for pi in self.network.pis:
            if pi not in pi_words:
                raise SimulationError(f"missing word for PI {pi}")
            values[pi] = pi_words[pi] & mask
        for uid in self._topo:
            node = self.network.node(uid)
            if node.is_pi:
                continue
            if node.is_const:
                values[uid] = mask if node.table.bits else 0
                continue
            fanin_words = [values[f] for f in node.fanins]
            values[uid] = _eval_node(node.table, fanin_words, mask)
        return values

    def run_batch(self, batch: PatternBatch) -> dict[int, int]:
        """Simulate a :class:`PatternBatch`."""
        return self.run_words(batch.words(), batch.width)

    def run_vector(self, values: Mapping[int, int]) -> dict[int, int]:
        """Simulate a single total input vector; returns node id -> 0/1."""
        return self.run_words(values, 1)

    def output_words(
        self, node_values: Mapping[int, int]
    ) -> dict[str, int]:
        """Extract PO name -> packed word from a simulation result."""
        return {name: node_values[uid] for name, uid in self.network.pos}


def simulate(
    network: Network, pi_words: Mapping[int, int], width: int
) -> dict[int, int]:
    """One-shot simulation convenience wrapper."""
    return Simulator(network).run_words(pi_words, width)


def cone_function(
    network: Network,
    root: int,
    support: Optional[Iterable[int]] = None,
    max_support: int = 16,
) -> tuple[TruthTable, list[int]]:
    """The global function of ``root`` over its cone PIs, by exhaustive sim.

    Returns ``(table, support_pis)`` where table variable ``i`` is
    ``support_pis[i]``.  Raises :class:`SimulationError` if the support
    exceeds ``max_support`` (exhaustive simulation is exponential).
    """
    support_pis = sorted(support) if support is not None else cone_pis(network, root)
    n = len(support_pis)
    if n > max_support:
        raise SimulationError(
            f"cone of node {root} has {n} PIs (> {max_support})"
        )
    width = 1 << n
    mask = width_mask(width)
    values: dict[int, int] = {}
    pi_index = {pi: i for i, pi in enumerate(support_pis)}
    for pi in network.pis:
        if pi in pi_index:
            values[pi] = exhaustive_word(pi_index[pi], n)
        else:
            values[pi] = 0  # outside the requested support; irrelevant to root
    for uid in cone_topological_order(network, [root]):
        node = network.node(uid)
        if node.is_pi:
            if uid not in values:
                raise SimulationError(f"PI {uid} missing from support")
            continue
        if node.is_const:
            values[uid] = mask if node.table.bits else 0
            continue
        values[uid] = _eval_node(
            node.table, [values[f] for f in node.fanins], mask
        )
    return TruthTable(n, values[root]), support_pis
