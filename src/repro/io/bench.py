"""ISCAS .bench reader/writer.

The .bench format of the ISCAS'85/'89 suites (also emitted by ABC's
``write_bench``): ``INPUT(x)``, ``OUTPUT(y)``, and gate lines like
``y = NAND(a, b)``.  Supported gates: AND, OR, NAND, NOR, XOR, XNOR, NOT,
BUF/BUFF, plus the LUT form ``y = LUT 0x8 (a, b)`` that ABC writes for
mapped networks.
"""

from __future__ import annotations

import re
from typing import TextIO

from repro.errors import LogicError, NetworkError, ParseError
from repro.io._names import gate_names
from repro.logic import gates
from repro.logic.truthtable import TruthTable
from repro.network.network import Network

_GATE_RE = re.compile(
    r"^(?P<out>[^=\s]+)\s*=\s*(?P<kind>[A-Za-z]+)\s*"
    r"(?:(?P<hex>0x[0-9a-fA-F]+)\s*)?\((?P<args>[^)]*)\)$"
)
_IO_RE = re.compile(r"^(INPUT|OUTPUT)\((?P<name>[^)]+)\)$")

_KINDS = {
    "AND": "and",
    "OR": "or",
    "NAND": "nand",
    "NOR": "nor",
    "XOR": "xor",
    "XNOR": "xnor",
    "NOT": "inv",
    "INV": "inv",
    "BUF": "buf",
    "BUFF": "buf",
}


def parse_bench(text: str) -> Network:
    """Parse .bench text into a network.

    Every malformed input fails with :class:`ParseError` carrying the line
    number of the offending (or referencing) line — lower-level
    ``LogicError``/``NetworkError`` never escape.
    """
    inputs: list[tuple[str, int]] = []
    outputs: list[tuple[str, int]] = []
    defs: dict[str, tuple[int, str, str | None, list[str]]] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            name = io_match.group("name").strip()
            if line.startswith("INPUT"):
                inputs.append((name, number))
            else:
                outputs.append((name, number))
            continue
        gate_match = _GATE_RE.match(line)
        if not gate_match:
            raise ParseError(f"unparsable line {line!r}", number)
        out = gate_match.group("out")
        kind = gate_match.group("kind").upper()
        args = [
            a.strip() for a in gate_match.group("args").split(",") if a.strip()
        ]
        defs[out] = (number, kind, gate_match.group("hex"), args)

    network = Network("bench")
    node_of: dict[str, int] = {}
    for name, number in inputs:
        if name in defs:
            raise ParseError(f"signal {name!r} is both INPUT and gate", number)
        if name not in node_of:
            node_of[name] = network.add_pi(name)

    resolving: set[str] = set()

    def resolve(name: str, ref_line: int) -> int:
        if name in node_of:
            return node_of[name]
        if name not in defs:
            raise ParseError(f"undefined signal {name!r}", ref_line)
        if name in resolving:
            raise ParseError(
                f"combinational cycle through {name!r}", defs[name][0]
            )
        resolving.add(name)
        number, kind, hex_tt, args = defs[name]
        fanins = [resolve(a, number) for a in args]
        try:
            if kind == "LUT":
                if hex_tt is None:
                    raise ParseError("LUT gate without a truth table", number)
                table = TruthTable.from_hex(len(fanins), hex_tt[2:])
            elif kind in ("VDD", "GND", "CONST0", "CONST1"):
                value = kind in ("VDD", "CONST1")
                table = TruthTable.const(0, value)
            elif kind in _KINDS:
                table = gates.gate(_KINDS[kind], max(1, len(fanins)))
            else:
                raise ParseError(f"unknown gate kind {kind!r}", number)
            node_of[name] = network.add_gate(table, fanins, name)
        except (LogicError, NetworkError) as exc:
            raise ParseError(str(exc), number) from exc
        resolving.discard(name)
        return node_of[name]

    for name, number in outputs:
        try:
            network.add_po(resolve(name, number), name)
        except (LogicError, NetworkError) as exc:
            raise ParseError(str(exc), number) from exc
    return network


def read_bench(path) -> Network:
    """Read a .bench file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_bench(handle.read())


def write_bench(network: Network, handle: TextIO) -> None:
    """Write a network in .bench LUT form."""
    names = gate_names(network)

    def ref(uid: int) -> str:
        node = network.node(uid)
        return node.label() if node.is_pi else names[uid]

    for pi in network.pis:
        handle.write(f"INPUT({network.node(pi).label()})\n")
    for po_name, _ in network.pos:
        handle.write(f"OUTPUT({po_name})\n")
    for node in network.gates():
        args = ", ".join(ref(f) for f in node.fanins)
        handle.write(
            f"{names[node.uid]} = LUT 0x{node.table.to_hex()} ({args})\n"
        )
    for po_name, uid in network.pos:
        if ref(uid) != po_name:
            handle.write(f"{po_name} = BUF({ref(uid)})\n")


def bench_text(network: Network) -> str:
    """The .bench serialization as a string."""
    import io

    buffer = io.StringIO()
    write_bench(network, buffer)
    return buffer.getvalue()
