"""Vector-quality metrics from the related work (paper §2.3).

Lee et al. score vectors by *expressiveness* (how many distinct node
values they produce relative to earlier patterns) and Amarù et al. by
*toggle rate* (how many nodes change value between consecutive patterns).
These metrics let experiments quantify — independently of the sweep —
why SimGen's vectors split classes that random patterns cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.network.network import Network
from repro.simulation.patterns import PatternBatch
from repro.simulation.simulator import Simulator


@dataclass(slots=True)
class VectorQuality:
    """Per-batch quality summary."""

    #: Patterns in the batch.
    patterns: int
    #: Mean fraction of nodes toggling between consecutive patterns.
    toggle_rate: float
    #: Number of classes the batch's signatures induce over the nodes
    #: (more classes = more expressive distinctions).
    signature_classes: int
    #: Fraction of nodes whose value is constant across the whole batch.
    constant_fraction: float


def batch_quality(
    network: Network,
    batch: PatternBatch,
    nodes: Sequence[int] | None = None,
) -> VectorQuality:
    """Evaluate a batch's quality metrics over the given nodes.

    Args:
        nodes: Node ids to score (default: all gates).
    """
    if nodes is None:
        nodes = [n.uid for n in network.gates()]
    values = Simulator(network).run_batch(batch)
    width = batch.width
    if width == 0 or not nodes:
        return VectorQuality(0, 0.0, 0, 0.0)
    mask = (1 << width) - 1

    toggles = 0
    constants = 0
    signatures: set[int] = set()
    for uid in nodes:
        word = values[uid] & mask
        signatures.add(word)
        if word == 0 or word == mask:
            constants += 1
        # Toggles between consecutive patterns p and p+1: the set bits of
        # word XOR (word >> 1), restricted to the width-1 valid positions.
        if width > 1:
            transition_mask = (1 << (width - 1)) - 1
            toggles += ((word ^ (word >> 1)) & transition_mask).bit_count()
    toggle_rate = (
        toggles / (len(nodes) * (width - 1)) if width > 1 else 0.0
    )
    return VectorQuality(
        patterns=width,
        toggle_rate=toggle_rate,
        signature_classes=len(signatures),
        constant_fraction=constants / len(nodes),
    )


def distinguishing_power(
    network: Network,
    batch: PatternBatch,
    classes: Sequence[Sequence[int]],
) -> int:
    """How many class splits the batch would cause (without applying them).

    For each class, counts the number of distinct signatures minus one —
    the direct analogue of the Equation-5 cost reduction the batch buys.
    """
    values = Simulator(network).run_batch(batch)
    mask = (1 << batch.width) - 1
    splits = 0
    for members in classes:
        signatures = {values[uid] & mask for uid in members}
        splits += len(signatures) - 1
    return splits
