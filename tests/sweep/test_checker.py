"""PairChecker: incremental vs fresh agreement, counterexample validity."""

import random

import pytest

from repro.network import NetworkBuilder
from repro.sat.solver import SatResult
from repro.simulation import Simulator
from repro.sweep.checker import PairChecker
from tests.conftest import random_network


class TestBasics:
    def test_equivalent_pair_unsat(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.not_(builder.nand_(a, b))
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        for incremental in (True, False):
            checker = PairChecker(net, incremental=incremental)
            result, vector = checker.check(g1, g2)
            assert result is SatResult.UNSAT
            assert vector is None
            assert checker.stats.proven == 1

    def test_different_pair_sat_with_valid_cex(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.xor_(a, b)
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        sim = Simulator(net)
        for incremental in (True, False):
            checker = PairChecker(net, incremental=incremental)
            result, vector = checker.check(g1, g2)
            assert result is SatResult.SAT
            full = vector.completed(net.pis, random.Random(0))
            values = sim.run_vector(full.values)
            assert values[g1] != values[g2]

    def test_complement_check(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.nand_(a, b)
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        checker = PairChecker(net, incremental=True)
        result, _ = checker.check(g1, g2, complement=True)
        assert result is SatResult.UNSAT  # g1 == NOT g2 proven


class TestIncrementalAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_agrees_with_fresh_over_many_queries(self, seed):
        net = random_network(seed=seed, num_inputs=6, num_gates=25)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        rng = random.Random(seed)
        incremental = PairChecker(net, incremental=True)
        fresh = PairChecker(net, incremental=False)
        for _ in range(30):
            a, b = rng.sample(gates, 2)
            complement = rng.random() < 0.3
            result_inc, _ = incremental.check(a, b, complement)
            result_fresh, _ = fresh.check(a, b, complement)
            assert result_inc == result_fresh, (a, b, complement)

    def test_stats_accumulate(self):
        net = random_network(seed=1)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        checker = PairChecker(net)
        checker.check(gates[0], gates[1])
        checker.check(gates[1], gates[2])
        assert checker.stats.calls == 2
        assert checker.stats.sat_time > 0
        assert (
            checker.stats.proven
            + checker.stats.disproven
            + checker.stats.unknown
            == 2
        )
