"""SAT sweeping: equivalence classes, the sweep engine, and CEC on top."""

from repro.sweep.cexmin import minimize_counterexample
from repro.sweep.reduce import ReductionStats, reduce_network, sweep_and_reduce
from repro.sweep.cec import CecResult, check_equivalence, union_network
from repro.sweep.classes import EquivalenceClasses
from repro.sweep.engine import SweepConfig, SweepEngine, SweepMetrics, SweepResult

__all__ = [
    "CecResult",
    "ReductionStats",
    "EquivalenceClasses",
    "SweepConfig",
    "SweepEngine",
    "SweepMetrics",
    "SweepResult",
    "check_equivalence",
    "minimize_counterexample",
    "reduce_network",
    "sweep_and_reduce",
    "union_network",
]
