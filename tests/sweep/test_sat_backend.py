"""The ``sat_backend`` seam: compiled and reference solvers, one sweep.

The seam mirrors ``simgen_backend``: a config string selects the solver
the SAT phase runs on, and both choices must land on the *same* sweep —
identical verdicts, counterexamples, cost histories, equivalences, and
conflict/propagation counts — serially and through the worker pool.
"""

import pytest

from repro.errors import SweepError
from repro.io import bench_text
from repro.sweep.cec import union_network
from repro.sweep.checker import PairChecker
from repro.sweep.engine import SweepConfig, SweepEngine
from repro.tools.cli import main
from tests.conftest import random_network


def _redundant_instance(seed: int, num_gates: int = 30):
    """Two copies of one random circuit over shared PIs: every gate has an
    equivalent twin, so the sweep's SAT phase has real proving to do."""
    base = random_network(seed=seed, num_gates=num_gates)
    union, _ = union_network(base, base)
    return union


def _sweep_signature(network_seed: int, sat_backend: str, jobs: int = 1):
    network = _redundant_instance(network_seed)
    config = SweepConfig(
        seed=7, iterations=4, jobs=jobs, sat_backend=sat_backend
    )
    engine = SweepEngine(network, None, config)
    result = engine.run()
    metrics = result.metrics
    counters = engine.registry.as_dict()
    return (
        metrics.proven,
        metrics.disproven,
        metrics.unknown,
        metrics.sat_calls,
        tuple(metrics.cost_history),
        tuple(result.equivalences),
        tuple(map(tuple, result.classes.all_classes())),
        counters.get("sat.solver.conflicts", 0),
        counters.get("sat.solver.propagations", 0),
    )


class TestSweepIdentity:
    @pytest.mark.parametrize("network_seed", [0, 4])
    def test_serial_identity(self, network_seed):
        compiled = _sweep_signature(network_seed, "compiled")
        reference = _sweep_signature(network_seed, "reference")
        assert compiled == reference
        assert compiled[0] > 0  # the stacked instance must prove merges

    def test_pooled_identity(self):
        compiled = _sweep_signature(2, "compiled", jobs=2)
        reference = _sweep_signature(2, "reference", jobs=2)
        assert compiled == reference

    def test_unknown_backend_rejected(self):
        network = random_network(seed=0)
        with pytest.raises(SweepError):
            SweepEngine(
                network, None, SweepConfig(sat_backend="picosat")
            )

    def test_checker_counts_propagations(self):
        network = _redundant_instance(1, num_gates=20)
        checker = PairChecker(network, sat_backend="compiled")
        gates = [n.uid for n in network.gates()]
        checker.check(gates[0], gates[-1])
        assert checker.stats.propagations > 0
        assert checker.stats.calls == 1


class TestCliFlag:
    def _write_instance(self, tmp_path):
        network = _redundant_instance(9, num_gates=25)
        path = tmp_path / "inst.bench"
        path.write_text(bench_text(network), encoding="utf-8")
        return path

    @pytest.mark.parametrize("backend", ["compiled", "reference"])
    def test_sweep_flag(self, tmp_path, backend, capsys):
        path = self._write_instance(tmp_path)
        out = tmp_path / f"reduced_{backend}.bench"
        assert (
            main(
                [
                    "sweep",
                    str(path),
                    "--iterations",
                    "3",
                    "--sat-backend",
                    backend,
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert out.exists()

    def test_backends_reduce_identically(self, tmp_path, capsys):
        """The CI smoke contract: byte-identical reduced networks."""
        path = self._write_instance(tmp_path)
        outputs = {}
        for backend in ("compiled", "reference"):
            out = tmp_path / f"r_{backend}.bench"
            assert (
                main(
                    [
                        "sweep",
                        str(path),
                        "--iterations",
                        "3",
                        "--sat-backend",
                        backend,
                        "-o",
                        str(out),
                    ]
                )
                == 0
            )
            outputs[backend] = out.read_bytes()
        capsys.readouterr()
        assert outputs["compiled"] == outputs["reference"]
