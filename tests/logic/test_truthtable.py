"""Unit and property tests for TruthTable."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.logic.truthtable import MAX_VARS, TruthTable

tables = st.integers(min_value=0, max_value=4).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestConstruction:
    def test_const_false(self):
        tt = TruthTable.const(3, False)
        assert tt.bits == 0
        assert tt.const_value() == 0

    def test_const_true(self):
        tt = TruthTable.const(3, True)
        assert tt.bits == 0xFF
        assert tt.const_value() == 1

    def test_var_semantics(self):
        tt = TruthTable.var(3, 1)
        for m in range(8):
            assert tt.output_for(m) == (m >> 1) & 1

    def test_var_out_of_range(self):
        with pytest.raises(LogicError):
            TruthTable.var(2, 2)

    def test_from_minterms(self):
        tt = TruthTable.from_minterms(2, [0, 3])
        assert tt.bits == 0b1001

    def test_from_minterms_out_of_range(self):
        with pytest.raises(LogicError):
            TruthTable.from_minterms(2, [4])

    def test_from_outputs(self):
        tt = TruthTable.from_outputs([0, 1, 1, 0])
        assert tt.num_vars == 2
        assert tt.bits == 0b0110

    def test_from_outputs_bad_length(self):
        with pytest.raises(LogicError):
            TruthTable.from_outputs([0, 1, 1])

    def test_from_hex_roundtrip(self):
        tt = TruthTable(3, 0xCA)
        assert TruthTable.from_hex(3, tt.to_hex()) == tt

    def test_bits_out_of_range(self):
        with pytest.raises(LogicError):
            TruthTable(1, 0b100)

    def test_num_vars_bounds(self):
        with pytest.raises(LogicError):
            TruthTable(MAX_VARS + 1, 0)
        with pytest.raises(LogicError):
            TruthTable(-1, 0)


class TestQueries:
    def test_evaluate_matches_output_for(self):
        tt = TruthTable(3, 0b10110100)
        for m in range(8):
            bits = [(m >> i) & 1 for i in range(3)]
            assert tt.evaluate(bits) == tt.output_for(m)

    def test_evaluate_arity_mismatch(self):
        with pytest.raises(LogicError):
            TruthTable(2, 0b1000).evaluate([1])

    def test_minterms(self):
        tt = TruthTable(2, 0b1010)
        assert list(tt.minterms()) == [1, 3]

    def test_count_ones(self):
        assert TruthTable(3, 0b10110100).count_ones() == 4

    def test_support_of_degenerate_function(self):
        # f(a, b) = a: does not depend on b.
        tt = TruthTable.var(2, 0)
        assert tt.support() == [0]
        assert not tt.depends_on(1)

    def test_is_const(self):
        assert TruthTable.const(2, True).is_const()
        assert not TruthTable.var(2, 0).is_const()


class TestAlgebra:
    def test_and_or_xor_not(self):
        a = TruthTable.var(2, 0)
        b = TruthTable.var(2, 1)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110
        assert (~a).bits == 0b0101

    def test_arity_mismatch(self):
        with pytest.raises(LogicError):
            TruthTable.var(2, 0) & TruthTable.var(3, 0)

    def test_cofactor_shannon(self):
        # f = a & b; f|a=1 = b, f|a=0 = 0.
        f = TruthTable.var(2, 0) & TruthTable.var(2, 1)
        assert f.cofactor(0, 1).bits == TruthTable.var(2, 1).bits
        assert f.cofactor(0, 0).bits == 0

    def test_cofactor_removes_dependence(self):
        f = TruthTable(3, 0b10010110)  # parity
        assert not f.cofactor(1, 0).depends_on(1)

    def test_compose_identity(self):
        f = TruthTable(2, 0b0110)
        vars2 = [TruthTable.var(2, 0), TruthTable.var(2, 1)]
        assert f.compose(vars2) == f

    def test_compose_inverts(self):
        f = TruthTable.var(1, 0)
        inv = ~TruthTable.var(2, 1)
        assert f.compose([inv]) == inv

    def test_compose_arity_check(self):
        with pytest.raises(LogicError):
            TruthTable(2, 0b0110).compose([TruthTable.var(2, 0)])

    def test_permute_swap(self):
        f = TruthTable.var(2, 0)
        assert f.permute([1, 0]) == TruthTable.var(2, 1)

    def test_permute_invalid(self):
        with pytest.raises(LogicError):
            TruthTable.var(2, 0).permute([0, 0])

    def test_expand_embeds(self):
        f = TruthTable.var(1, 0)
        wide = f.expand(3, [2])
        assert wide == TruthTable.var(3, 2)

    def test_expand_duplicate_positions(self):
        with pytest.raises(LogicError):
            TruthTable(2, 0b0110).expand(3, [1, 1])


class TestProperties:
    @given(tables)
    def test_double_negation(self, tt):
        assert ~~tt == tt

    @given(tables)
    def test_and_self_idempotent(self, tt):
        assert (tt & tt) == tt
        assert (tt | tt) == tt
        assert (tt ^ tt).bits == 0

    @given(tables)
    def test_demorgan(self, tt):
        other = ~tt
        assert ~(tt & other) == (~tt | ~other)

    @given(tables, st.data())
    def test_cofactor_evaluation(self, tt, data):
        if tt.num_vars == 0:
            return
        index = data.draw(st.integers(0, tt.num_vars - 1))
        value = data.draw(st.integers(0, 1))
        cof = tt.cofactor(index, value)
        for m in range(tt.size):
            forced = (m | (1 << index)) if value else (m & ~(1 << index))
            assert cof.output_for(m) == tt.output_for(forced)

    @given(tables)
    def test_shannon_expansion_identity(self, tt):
        # f = (~x & f0) | (x & f1) for every variable.
        for i in range(tt.num_vars):
            x = TruthTable.var(tt.num_vars, i)
            rebuilt = (~x & tt.cofactor(i, 0)) | (x & tt.cofactor(i, 1))
            assert rebuilt == tt

    @given(tables)
    def test_hex_roundtrip(self, tt):
        assert TruthTable.from_hex(tt.num_vars, tt.to_hex()) == tt

    @given(tables)
    def test_support_is_sound(self, tt):
        support = tt.support()
        for i in range(tt.num_vars):
            if i not in support:
                assert tt.cofactor(i, 0) == tt.cofactor(i, 1)
