"""CDCL solver: unit cases, assumptions, fuzz vs brute force."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SatError
from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver, SatResult, solve_cnf


def make_cnf(clauses, num_vars=0):
    cnf = Cnf(num_vars)
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


class TestBasics:
    def test_empty_formula_sat(self):
        result, model = solve_cnf(Cnf(2))
        assert result is SatResult.SAT

    def test_single_unit(self):
        result, model = solve_cnf(make_cnf([[1]]))
        assert result is SatResult.SAT
        assert model[1] is True

    def test_contradictory_units(self):
        result, _ = solve_cnf(make_cnf([[1], [-1]]))
        assert result is SatResult.UNSAT

    def test_propagation_chain(self):
        result, model = solve_cnf(make_cnf([[1], [-1, 2], [-2, 3]]))
        assert result is SatResult.SAT
        assert model[1] and model[2] and model[3]

    def test_simple_unsat(self):
        # (a|b) & (a|~b) & (~a|b) & (~a|~b)
        result, _ = solve_cnf(make_cnf([[1, 2], [1, -2], [-1, 2], [-1, -2]]))
        assert result is SatResult.UNSAT

    def test_tautology_clause_ignored(self):
        solver = CdclSolver()
        assert solver.add_clause([1, -1])
        assert solver.solve() is SatResult.SAT

    def test_duplicate_literals_collapsed(self):
        result, model = solve_cnf(make_cnf([[1, 1, 1]]))
        assert result is SatResult.SAT
        assert model[1]

    def test_model_satisfies_formula(self):
        cnf = make_cnf([[1, 2, 3], [-1, -2], [2, -3], [-1, 3]])
        result, model = solve_cnf(cnf)
        assert result is SatResult.SAT
        assert cnf.evaluate(model)

    def test_model_unavailable_after_unsat(self):
        solver = CdclSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is SatResult.UNSAT
        with pytest.raises(SatError):
            solver.model()

    def test_literal_zero_rejected(self):
        with pytest.raises(SatError):
            CdclSolver().add_clause([0])


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) is SatResult.SAT
        assert solver.model()[2] is True

    def test_unsat_under_assumptions_sat_without(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[-2]) is SatResult.UNSAT
        assert solver.solve() is SatResult.SAT

    def test_conflicting_assumptions(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1, -1]) is SatResult.UNSAT

    def test_assumptions_do_not_persist(self):
        solver = CdclSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]) is SatResult.UNSAT
        assert solver.solve(assumptions=[1]) is SatResult.SAT
        assert solver.solve() is SatResult.SAT

    def test_incremental_selector_pattern(self):
        """The sweeping engine's usage: guard clauses, solve, retire."""
        solver = CdclSolver()
        a = solver.new_var()
        b = solver.new_var()
        solver.add_clause([a, b])
        s1 = solver.new_var()
        solver.add_clause([-s1, -a])
        solver.add_clause([-s1, -b])
        assert solver.solve(assumptions=[s1]) is SatResult.UNSAT
        solver.add_clause([-s1])
        s2 = solver.new_var()
        solver.add_clause([-s2, a])
        assert solver.solve(assumptions=[s2]) is SatResult.SAT
        assert solver.model()[a] is True


class TestConflictLimit:
    def test_unknown_on_tiny_budget(self):
        rng = random.Random(3)
        cnf = Cnf(30)
        # A dense random 3-CNF near the phase transition.
        for _ in range(128):
            clause = [
                rng.choice([1, -1]) * rng.randint(1, 30) for _ in range(3)
            ]
            cnf.add_clause(clause)
        result, _ = solve_cnf(cnf, conflict_limit=1)
        assert result in (SatResult.UNKNOWN, SatResult.SAT, SatResult.UNSAT)
        # With limit 1 the solver must stop almost immediately.
        solver = CdclSolver()
        solver.add_cnf(cnf)
        solver.solve(conflict_limit=1)
        assert solver.stats["conflicts"] <= 2


class TestFuzzAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_3cnf(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 9)
        num_clauses = rng.randint(1, 40)
        cnf = Cnf(num_vars)
        for _ in range(num_clauses):
            k = rng.randint(1, 3)
            cnf.add_clause(
                [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(k)]
            )
        result, model = solve_cnf(cnf)
        reference = cnf.brute_force()
        if reference is None:
            assert result is SatResult.UNSAT
        else:
            assert result is SatResult.SAT
            assert cnf.evaluate(model)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_cnf_with_assumptions(self, seed):
        rng = random.Random(1000 + seed)
        num_vars = rng.randint(2, 8)
        cnf = Cnf(num_vars)
        for _ in range(rng.randint(1, 25)):
            k = rng.randint(1, 3)
            cnf.add_clause(
                [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(k)]
            )
        assumptions = []
        for v in rng.sample(range(1, num_vars + 1), rng.randint(1, num_vars)):
            assumptions.append(v if rng.random() < 0.5 else -v)
        # Reference: add assumptions as units.
        ref_cnf = Cnf(num_vars)
        for clause in cnf:
            ref_cnf.add_clause(clause)
        for lit in assumptions:
            ref_cnf.add_clause([lit])
        solver = CdclSolver()
        solver.add_cnf(cnf)
        result = solver.solve(assumptions=assumptions)
        reference = ref_cnf.brute_force()
        if reference is None:
            assert result is SatResult.UNSAT
        else:
            assert result is SatResult.SAT
            assert ref_cnf.evaluate(solver.model())

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_hypothesis_cnf(self, data):
        num_vars = data.draw(st.integers(1, 7))
        clauses = data.draw(
            st.lists(
                st.lists(
                    st.integers(1, num_vars).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=1,
                    max_size=4,
                ),
                max_size=30,
            )
        )
        cnf = make_cnf(clauses, num_vars)
        result, model = solve_cnf(cnf)
        reference = cnf.brute_force()
        if reference is None:
            assert result is SatResult.UNSAT
        else:
            assert result is SatResult.SAT
            assert cnf.evaluate(model)
