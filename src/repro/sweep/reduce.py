"""Network reduction from sweeping results (fraig-style merging).

Sweeping's purpose is simplification: once two nodes are proven equivalent,
the deeper one can be replaced by the shallower representative and its cone
dropped.  :func:`reduce_network` applies a sweep's proven equivalences to
produce the merged network — the output an ECO/synthesis flow would
consume — handling complemented equivalences by inserting an inverter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.logic import gates
from repro.network.network import Network
from repro.sweep.engine import SweepResult


@dataclass(slots=True)
class ReductionStats:
    """Outcome of a merge pass."""

    merged: int
    inverters_added: int
    gates_before: int
    gates_after: int

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after


def reduce_network(
    network: Network,
    equivalences: Iterable[tuple[int, int, bool]],
    name: Optional[str] = None,
) -> tuple[Network, ReductionStats]:
    """Merge proven-equivalent nodes; returns (reduced copy, stats).

    Args:
        network: The swept network (left unmodified).
        equivalences: ``(representative, member, complemented)`` triples,
            e.g. ``SweepResult.equivalences``.  Members are redirected onto
            their representative (through an inverter when complemented).
    """
    work = network.clone(name or f"{network.name}_reduced")
    gates_before = work.num_gates

    # Union-find so chains of equivalences resolve to one canonical node.
    parent: dict[int, tuple[int, bool]] = {}

    def find(uid: int) -> tuple[int, bool]:
        root, phase = parent.get(uid, (uid, False))
        if root == uid:
            return root, phase
        deep_root, deep_phase = find(root)
        resolved = (deep_root, phase ^ deep_phase)
        parent[uid] = resolved
        return resolved

    merged = 0
    for rep, member, complemented in equivalences:
        root_a, phase_a = find(rep)
        root_b, phase_b = find(member)
        if root_a == root_b:
            continue
        if work.node(root_a).is_pi and work.node(root_b).is_pi:
            continue  # interface nodes cannot be merged into each other
        # Keep the shallower node as the canonical representative; a PI
        # always wins (it can never be substituted away).
        swap = (work.level(root_b), root_b) < (work.level(root_a), root_a)
        if work.node(root_b).is_pi:
            swap = True
        elif work.node(root_a).is_pi:
            swap = False
        if swap:
            root_a, root_b = root_b, root_a
            phase_a, phase_b = phase_b, phase_a
        parent[root_b] = (root_a, complemented ^ phase_a ^ phase_b)
        merged += 1

    inverters = 0
    inverter_cache: dict[int, int] = {}

    def canonical(uid: int) -> int:
        nonlocal inverters
        root, phase = find(uid)
        if not phase:
            return root
        if root not in inverter_cache:
            inverter_cache[root] = work.add_gate(gates.inv(), (root,))
            inverters += 1
        return inverter_cache[root]

    for uid in list(work.node_ids()):
        if uid not in work or work.node(uid).is_pi:
            continue
        root, _ = find(uid)
        if root == uid:
            continue
        replacement = canonical(uid)
        if replacement != uid:
            work.replace_node(uid, replacement)
    work.remove_dangling()

    stats = ReductionStats(
        merged=merged,
        inverters_added=inverters,
        gates_before=gates_before,
        gates_after=work.num_gates,
    )
    return work, stats


def sweep_and_reduce(
    network: Network, result: SweepResult
) -> tuple[Network, ReductionStats]:
    """Convenience wrapper: apply a :class:`SweepResult` to its network."""
    return reduce_network(network, result.equivalences)
