"""Function-preserving rewrites (the CEC-workload factory)."""

import random

import pytest

from repro.network import NetworkBuilder, validate
from repro.simulation import cone_function
from repro.transforms import (
    double_negate,
    rewrite,
    shannon_expand,
    sop_resynthesize,
)
from tests.conftest import networks_equal, random_network


class TestShannonExpand:
    @pytest.mark.parametrize("seed", range(4))
    def test_preserves_function_everywhere(self, seed):
        rng = random.Random(seed)
        net = random_network(seed=seed)
        gates_list = [n.uid for n in net.gates() if n.num_fanins >= 1]
        reference, _ = net.map_clone()
        for uid in rng.sample(gates_list, min(5, len(gates_list))):
            node = net.node(uid)
            shannon_expand(net, uid, rng.randrange(node.num_fanins))
            assert networks_equal(reference, net), uid
        validate(net)

    def test_inverter_expansion(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        inv = builder.not_(a)
        out = builder.and_(inv, b)
        builder.po(out)
        net = builder.build()
        ref, _ = net.map_clone()
        shannon_expand(net, inv, 0)
        assert networks_equal(ref, net)


class TestDoubleNegate:
    def test_preserves_function(self):
        net = random_network(seed=5)
        ref, _ = net.map_clone()
        rng = random.Random(0)
        for node in list(net.gates()):
            if node.num_fanins:
                double_negate(net, node.uid, rng.randrange(node.num_fanins))
        assert networks_equal(ref, net)

    def test_adds_two_inverters(self, and_or_network):
        net, ids = and_or_network
        before = net.num_gates
        double_negate(net, ids["out"], 0)
        assert net.num_gates == before + 2


class TestSopResynthesize:
    @pytest.mark.parametrize("seed", range(4))
    def test_preserves_function(self, seed):
        net = random_network(seed=seed)
        ref, _ = net.map_clone()
        rng = random.Random(seed)
        gates_list = [n.uid for n in net.gates() if not n.is_const]
        for uid in rng.sample(gates_list, min(4, len(gates_list))):
            sop_resynthesize(net, uid)
            assert networks_equal(ref, net), uid

    def test_xor_becomes_two_level(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        x = builder.xor_(a, b)
        builder.po(x, "f")
        net = builder.build()
        ref, _ = net.map_clone()
        sop_resynthesize(net, x)
        net.remove_dangling()
        assert networks_equal(ref, net)
        assert net.num_gates > 1  # expanded into AND/OR/INV structure


class TestRewrite:
    @pytest.mark.parametrize("seed", range(5))
    def test_rewrite_preserves_function(self, seed):
        net = random_network(seed=seed, num_inputs=5, num_gates=14)
        perturbed = rewrite(net, seed=seed + 1, intensity=0.5)
        validate(perturbed)
        assert networks_equal(net, perturbed)

    def test_rewrite_changes_structure(self):
        net = random_network(seed=3, num_inputs=5, num_gates=14)
        perturbed = rewrite(net, seed=4, intensity=0.5)
        assert perturbed.num_gates != net.num_gates

    def test_rewrite_deterministic(self):
        net = random_network(seed=3)
        a = rewrite(net, seed=9)
        b = rewrite(net, seed=9)
        assert a.num_gates == b.num_gates
        assert networks_equal(a, b)

    def test_pi_order_preserved(self):
        net = random_network(seed=3)
        perturbed = rewrite(net, seed=1)
        assert [perturbed.node(p).name for p in perturbed.pis] == [
            net.node(p).name for p in net.pis
        ]
