"""Fault-injection wrappers for chaos-testing the sweeping stack.

The wrappers sit at the two seams the engine already exposes —
``SweepConfig.solver_factory`` and ``SweepConfig.simulator_wrapper`` — and
misbehave on a seeded, replayable :class:`FaultSchedule`:

* :class:`FlakySolver` raises :class:`~repro.errors.TransientSolverError`
  or answers UNKNOWN instead of solving;
* :class:`FaultySimulator` drops a batch (by raising
  :class:`~repro.errors.TransientSimulationError`, so the caller must
  retry) or duplicates the work of one.

Neither wrapper ever *fabricates* a result: an injected UNKNOWN is a real
legal solver outcome and a duplicated batch recomputes the same values, so
any verdict that survives fault injection is backed by genuine solver/
simulator work.  That is what lets the chaos suite assert soundness — see
``docs/ROBUSTNESS.md`` ("How to write a chaos test").
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import TransientSimulationError, TransientSolverError
from repro.sat.solver import CdclSolver, SatResult


class FaultSchedule:
    """A seeded, shared schedule of injected fault actions.

    One schedule is typically shared by every wrapper instance of a run
    (the solver factory creates a fresh ``FlakySolver`` per rebuild, but
    they all advance the same schedule), so a single seed replays the whole
    fault history.

    ``max_consecutive_raises`` bounds raise streaks so that a bounded-retry
    caller always eventually gets through; set it to ``None`` to model a
    permanently failing dependency.
    """

    def __init__(
        self,
        seed: int = 0,
        p_raise: float = 0.0,
        p_unknown: float = 0.0,
        p_duplicate: float = 0.0,
        max_consecutive_raises: Optional[int] = 2,
    ):
        if min(p_raise, p_unknown, p_duplicate) < 0 or (
            p_raise + p_unknown + p_duplicate
        ) > 1:
            raise ValueError("fault probabilities must be >= 0 and sum <= 1")
        self._rng = random.Random(seed)
        self.p_raise = p_raise
        self.p_unknown = p_unknown
        self.p_duplicate = p_duplicate
        self.max_consecutive_raises = max_consecutive_raises
        self.calls = 0
        self.injected: dict[str, int] = {"raise": 0, "unknown": 0, "duplicate": 0}
        self._raise_streak = 0

    def next_action(self) -> str:
        """Draw the next action: ``ok`` | ``raise`` | ``unknown`` | ``duplicate``."""
        self.calls += 1
        draw = self._rng.random()
        if draw < self.p_raise:
            action = "raise"
        elif draw < self.p_raise + self.p_unknown:
            action = "unknown"
        elif draw < self.p_raise + self.p_unknown + self.p_duplicate:
            action = "duplicate"
        else:
            action = "ok"
        if action == "raise":
            if (
                self.max_consecutive_raises is not None
                and self._raise_streak >= self.max_consecutive_raises
            ):
                action = "ok"
            else:
                self._raise_streak += 1
        if action != "raise":
            self._raise_streak = 0
        if action != "ok":
            self.injected[action] += 1
        return action


class FlakySolver:
    """A :class:`CdclSolver` stand-in that fails on a seeded schedule.

    On ``raise`` the solve attempt dies with a transient error (the solver
    instance must be considered poisoned — callers recover with a *fresh*
    solver); on ``unknown`` it gives up as if a conflict budget were hit.
    Everything else is delegated to the wrapped solver.
    """

    def __init__(
        self,
        inner: Optional[CdclSolver] = None,
        schedule: Optional[FaultSchedule] = None,
    ):
        self.inner = inner if inner is not None else CdclSolver()
        self.schedule = schedule if schedule is not None else FaultSchedule()

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        budget=None,
    ) -> SatResult:
        action = self.schedule.next_action()
        if action == "raise":
            raise TransientSolverError("injected solver fault")
        if action == "unknown":
            return SatResult.UNKNOWN
        return self.inner.solve(
            assumptions, conflict_limit=conflict_limit, budget=budget
        )


class FaultySimulator:
    """A simulator wrapper that drops or duplicates batches on schedule.

    ``raise`` models a dropped batch: the values are never produced and the
    caller sees a :class:`TransientSimulationError` (the sweep engine
    retries a bounded number of times, then degrades by skipping the
    refinement — which can only leave classes coarser, never wrong).
    ``duplicate`` recomputes the batch a second time and returns the second
    result — bit-identical values, exercising idempotence of refinement.
    """

    def __init__(self, inner, schedule: Optional[FaultSchedule] = None):
        self.inner = inner
        self.schedule = schedule if schedule is not None else FaultSchedule()

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def run_batch(self, batch):
        action = self.schedule.next_action()
        if action == "raise":
            raise TransientSimulationError("injected simulation fault")
        values = self.inner.run_batch(batch)
        if action == "duplicate":
            values = self.inner.run_batch(batch)
        return values
