"""Decision policies: Equations 1-4, roulette selection, completion rules."""

import random
from collections import Counter

import pytest

from repro.core.assignment import Assignment
from repro.core.decision import (
    DecisionEngine,
    DecisionStrategy,
    roulette_select,
)
from repro.logic import Row, rows_of
from repro.logic.cubes import Cube
from repro.network import NetworkBuilder


class TestRouletteSelect:
    def test_prefers_heavier_items(self):
        rng = random.Random(0)
        rows = [
            Row(Cube.from_literals([0]), 0),
            Row(Cube.from_literals([1]), 1),
        ]
        counts = Counter()
        for _ in range(2000):
            chosen = roulette_select(rng, rows, [1.0, 9.0])
            counts[chosen.output] += 1
        assert counts[1] > counts[0] * 3

    def test_zero_weights_still_selectable(self):
        rng = random.Random(1)
        rows = [Row(Cube.from_literals([0]), 0), Row(Cube.from_literals([1]), 1)]
        chosen = roulette_select(rng, rows, [0.0, 0.0])
        assert chosen in rows

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            roulette_select(random.Random(0), [], [])


class TestDcMetric:
    def test_dc_size_equation_1(self, and_or_network):
        net, ids = and_or_network
        engine = DecisionEngine(net, DecisionStrategy.DC)
        row = Row(Cube.from_literals([0, None]), 0)
        assert engine.dc_size(row) == 1

    def test_dc_strategy_prefers_dc_rows(self, and_or_network):
        """AND output 0: rows 0- and -0 beat any fully bound row."""
        net, ids = and_or_network
        counts = Counter()
        for seed in range(300):
            engine = DecisionEngine(
                net, DecisionStrategy.DC, random.Random(seed)
            )
            assignment = Assignment(net)
            assignment.assign(ids["inner"], 0)
            result = engine.decide(assignment, ids["inner"])
            assert result.row is not None
            counts[result.row.dc_size()] += 1
        # and-gate offset ISOP rows are 0- and -0 (1 DC each).
        assert counts[1] == 300


class TestMffcMetric:
    def test_mffc_rank_equation_3(self, fig4_network):
        net, ids = fig4_network
        engine = DecisionEngine(net, DecisionStrategy.DC_MFFC)
        # z = AND(x, y): row binding only x scores depth(x); binding only y
        # scores depth(y) = 0 (y's MFFC is a singleton).
        row_x = Row(Cube.from_literals([0, None]), 0)
        row_y = Row(Cube.from_literals([None, 0]), 0)
        assert engine.mffc_rank(ids["z"], row_x) > 0
        assert engine.mffc_rank(ids["z"], row_y) == 0.0

    def test_priority_equation_4_weights_dc_over_mffc(self, fig4_network):
        net, ids = fig4_network
        engine = DecisionEngine(net, DecisionStrategy.DC_MFFC)
        sparse = Row(Cube.from_literals([0, None]), 0)  # 1 DC
        dense = Row(Cube.from_literals([0, 0]), 0)  # 0 DC, more MFFC rank
        assert engine.priority(ids["z"], sparse) > engine.priority(
            ids["z"], dense
        )

    def test_mffc_prefers_binding_deep_cones(self, fig4_network):
        """Fig. 4c: prefer the row binding x (deep MFFC) over binding y."""
        net, ids = fig4_network
        counts = Counter()
        for seed in range(400):
            engine = DecisionEngine(
                net, DecisionStrategy.DC_MFFC, random.Random(seed)
            )
            assignment = Assignment(net)
            assignment.assign(ids["z"], 0)
            result = engine.decide(assignment, ids["z"])
            lits = result.row.literals()
            if lits[0] is not None and lits[1] is None:
                counts["bind_x"] += 1
            elif lits[1] is not None and lits[0] is None:
                counts["bind_y"] += 1
        # Both rows have 1 DC; the MFFC term must tilt selection toward x.
        assert counts["bind_x"] > counts["bind_y"]


class TestDecide:
    def test_conflict_when_no_row_matches(self, and_or_network):
        net, ids = and_or_network
        engine = DecisionEngine(net)
        assignment = Assignment(net)
        assignment.assign(ids["inner"], 1)
        assignment.assign(ids["a"], 0)
        result = engine.decide(assignment, ids["inner"])
        assert result.conflict

    def test_noop_when_node_guaranteed(self, and_or_network):
        """AND with one input 0 and output 0 needs no decision at all."""
        net, ids = and_or_network
        engine = DecisionEngine(net)
        assignment = Assignment(net)
        assignment.assign(ids["inner"], 0)
        assignment.assign(ids["a"], 0)
        result = engine.decide(assignment, ids["inner"])
        assert not result.conflict
        assert result.row is None
        assert result.assigned == []
        assert assignment.value(ids["b"]) is None

    def test_decision_commits_row_values(self, and_or_network):
        net, ids = and_or_network
        engine = DecisionEngine(net, DecisionStrategy.RANDOM, random.Random(3))
        assignment = Assignment(net)
        assignment.assign(ids["out"], 1)
        result = engine.decide(assignment, ids["out"])
        assert not result.conflict
        assert result.assigned  # something got bound
        for uid, value in result.assigned:
            assert assignment.value(uid) == value

    def test_decide_on_pi_is_noop(self, and_or_network):
        net, ids = and_or_network
        engine = DecisionEngine(net)
        assignment = Assignment(net)
        result = engine.decide(assignment, ids["a"])
        assert result.row is None and not result.conflict

    def test_decision_respects_function(self, and_or_network):
        """Any committed row must keep the node's relation satisfiable."""
        net, ids = and_or_network
        for seed in range(30):
            engine = DecisionEngine(
                net, DecisionStrategy.RANDOM, random.Random(seed)
            )
            assignment = Assignment(net)
            assignment.assign(ids["inner"], 0)
            result = engine.decide(assignment, ids["inner"])
            if result.row is None:
                continue
            inputs, output = assignment.pins_of(ids["inner"])
            matching = [
                r for r in rows_of(net.node(ids["inner"]).table)
                if r.matches(inputs, output)
            ]
            assert matching, "decision created a contradiction"
