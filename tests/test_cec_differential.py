"""Differential fuzzing of the CEC flow against exhaustive ground truth.

For randomly generated circuit pairs — sometimes equal (a rewrite),
sometimes subtly broken (a single mutated gate) — the CEC verdict is
compared against brute-force exhaustive simulation.  This is the strongest
end-to-end check in the suite: it exercises mapping-free networks through
union construction, sweeping, SimGen generation, incremental SAT, and
counterexample extraction, and any unsound link would show up as a wrong
verdict.
"""

import random

import pytest

from repro.core import factory
from repro.simulation import Simulator
from repro.sweep import SweepConfig, check_equivalence
from repro.transforms import rewrite
from tests.conftest import random_network


def exhaustively_equal(net_a, net_b) -> bool:
    sim_a = Simulator(net_a)
    sim_b = Simulator(net_b)
    n = len(net_a.pis)
    for m in range(1 << n):
        values_a = {pi: (m >> i) & 1 for i, pi in enumerate(net_a.pis)}
        values_b = {pi: (m >> i) & 1 for i, pi in enumerate(net_b.pis)}
        out_a = sim_a.run_vector(values_a)
        out_b = sim_b.run_vector(values_b)
        for (_, ua), (_, ub) in zip(net_a.pos, net_b.pos):
            if out_a[ua] != out_b[ub]:
                return False
    return True


def mutate(net, rng):
    """Flip one random gate's function in a fresh copy."""
    copy, _ = net.map_clone()
    victims = [n for n in copy.gates() if not n.is_const]
    victim = rng.choice(victims)
    victim.table = ~victim.table
    return copy


@pytest.mark.parametrize("trial", range(12))
def test_cec_verdict_matches_ground_truth(trial):
    rng = random.Random(trial)
    golden = random_network(
        seed=trial * 31, num_inputs=rng.randint(4, 5), num_gates=rng.randint(8, 14)
    )
    if rng.random() < 0.5:
        revised = rewrite(golden, seed=trial + 1, intensity=0.4)
    else:
        revised = mutate(golden, rng)
    truth = exhaustively_equal(golden, revised)
    result = check_equivalence(
        golden,
        revised,
        generator_factory=factory("AI+DC+MFFC"),
        config=SweepConfig(seed=trial, iterations=4),
    )
    assert result.equivalent == truth, (
        f"trial {trial}: CEC said {result.equivalent}, truth {truth}"
    )
    if not truth:
        assert result.counterexample is not None
