"""Strategy presets and the generator factory."""

import pytest

from repro.core import (
    DecisionStrategy,
    HybridGenerator,
    ImplicationStrategy,
    RandomGenerator,
    ReverseSimGenerator,
    SIMGEN,
    STRATEGY_NAMES,
    SimGenGenerator,
    factory,
    make_generator,
)
from repro.errors import GenerationError
from tests.conftest import random_network


class TestFactory:
    def test_all_paper_strategies_constructible(self):
        net = random_network(seed=0)
        for name in STRATEGY_NAMES:
            generator = make_generator(name, net, seed=1)
            assert generator is not None

    def test_rands(self):
        net = random_network(seed=0)
        generator = make_generator("RandS", net)
        assert isinstance(generator, RandomGenerator)

    def test_revs(self):
        net = random_network(seed=0)
        generator = make_generator("revs", net)
        assert isinstance(generator, ReverseSimGenerator)
        assert generator.max_targets == 2  # classic pair targeting

    def test_simgen_alias(self):
        net = random_network(seed=0)
        generator = make_generator("SimGen", net)
        assert isinstance(generator, SimGenGenerator)
        assert generator.implication.strategy is ImplicationStrategy.ADVANCED
        assert generator.decision.strategy is DecisionStrategy.DC_MFFC

    def test_configuration_mapping(self):
        net = random_network(seed=0)
        si_rd = make_generator("SI+RD", net)
        assert si_rd.implication.strategy is ImplicationStrategy.SIMPLE
        assert si_rd.decision.strategy is DecisionStrategy.RANDOM
        ai_dc = make_generator("AI+DC", net)
        assert ai_dc.implication.strategy is ImplicationStrategy.ADVANCED
        assert ai_dc.decision.strategy is DecisionStrategy.DC

    def test_case_insensitive(self):
        net = random_network(seed=0)
        assert isinstance(make_generator("ai+dc+mffc", net), SimGenGenerator)

    def test_unknown_rejected(self):
        net = random_network(seed=0)
        with pytest.raises(GenerationError):
            make_generator("bogus", net)

    def test_factory_closure(self):
        net = random_network(seed=0)
        build = factory("AI+DC", max_targets=4)
        generator = build(net, 7)
        assert isinstance(generator, SimGenGenerator)
        assert generator.max_targets == 4

    def test_revs_clamps_to_pair_targeting(self):
        net = random_network(seed=0)
        generator = make_generator("RevS", net, max_targets=16)
        assert generator.max_targets == 2

    def test_simgen_constant_is_full_method(self):
        assert SIMGEN == "AI+DC+MFFC"
        assert SIMGEN in STRATEGY_NAMES
