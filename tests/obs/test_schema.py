"""Trace schema validator: every malformation class is caught."""

import json

from repro.obs import Tracer, validate_file, validate_records


def well_formed():
    records = []
    tracer = Tracer(records, meta={})
    with tracer.span("phase", phase="sat"):
        tracer.event("sat.call", dur=0.1)
    tracer.counters({"x": 1})
    return records


class TestValidateRecords:
    def test_clean_trace_passes(self):
        assert validate_records(well_formed()) == []

    def test_empty_trace_rejected(self):
        assert validate_records([]) == ["trace is empty"]

    def test_missing_header_rejected(self):
        records = well_formed()[1:]
        assert any("must start with a header" in e for e in validate_records(records))

    def test_duplicate_header_rejected(self):
        records = well_formed()
        duplicate = dict(records[0], i=records[-1]["i"] + 1)
        assert any(
            "duplicate header" in e for e in validate_records(records + [duplicate])
        )

    def test_unsupported_schema_version_rejected(self):
        records = well_formed()
        records[0] = dict(records[0], schema=999)
        assert any("unsupported schema" in e for e in validate_records(records))

    def test_unclosed_span_rejected(self):
        records = []
        tracer = Tracer(records, meta={})
        tracer.begin("phase", phase="sat")
        errors = validate_records(records)
        assert any("unclosed span" in e for e in errors)

    def test_end_without_begin_rejected(self):
        records = well_formed()
        records.append({"type": "end", "id": 999, "t": 1.0, "dur": 0.0, "i": 99})
        assert any("without a matching begin" in e for e in validate_records(records))

    def test_negative_duration_rejected(self):
        records = well_formed()
        for record in records:
            if record["type"] == "end":
                record["dur"] = -0.5
        assert any("negative duration" in e for e in validate_records(records))

    def test_negative_event_duration_rejected(self):
        records = well_formed()
        for record in records:
            if record["type"] == "event":
                record["dur"] = -1e-9
        assert any("negative duration" in e for e in validate_records(records))

    def test_non_increasing_sequence_rejected(self):
        records = well_formed()
        records[-1]["i"] = 0
        assert any("not increasing" in e for e in validate_records(records))

    def test_unknown_record_type_rejected(self):
        records = well_formed()
        records.append({"type": "mystery", "i": records[-1]["i"] + 1})
        assert any("unknown record type" in e for e in validate_records(records))

    def test_double_open_span_id_rejected(self):
        records = well_formed()
        seq = records[-1]["i"]
        records += [
            {"type": "begin", "name": "a", "id": 7, "t": 0.0, "i": seq + 1},
            {"type": "begin", "name": "b", "id": 7, "t": 0.0, "i": seq + 2},
        ]
        assert any("already open" in e for e in validate_records(records))


class TestValidateFile:
    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path, meta={"command": "test"}) as tracer:
            with tracer.span("phase", phase="sat"):
                pass
        assert validate_file(path) == []

    def test_malformed_json_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "header"}) + "\n{not json\n")
        errors = validate_file(path)
        assert len(errors) == 1 and "invalid JSON" in errors[0]
