"""Revertible partial assignments (Algorithm 1's nodeVals)."""

import pytest

from repro.core.assignment import Assignment, Conflict
from repro.errors import GenerationError


class TestAssign:
    def test_assign_and_value(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assert assignment.assign(ids["a"], 1) is True
        assert assignment.value(ids["a"]) == 1
        assert assignment.value(ids["b"]) is None

    def test_reassign_same_value_not_fresh(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["a"], 1)
        assert assignment.assign(ids["a"], 1) is False

    def test_conflict_raised(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["a"], 1)
        with pytest.raises(Conflict) as info:
            assignment.assign(ids["a"], 0)
        assert info.value.uid == ids["a"]
        assert (info.value.have, info.value.want) == (1, 0)

    def test_non_boolean_rejected(self, and_or_network):
        net, ids = and_or_network
        with pytest.raises(GenerationError):
            Assignment(net).assign(ids["a"], 2)

    def test_pins_of(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["a"], 1)
        assignment.assign(ids["inner"], 0)
        inputs, output = assignment.pins_of(ids["inner"])
        assert inputs == [1, None]
        assert output == 0


class TestCheckpointRevert:
    def test_revert_removes_later_assignments(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["a"], 1)
        marker = assignment.checkpoint()
        assignment.assign(ids["b"], 0)
        assignment.assign(ids["c"], 1)
        assignment.revert(marker)
        assert assignment.value(ids["a"]) == 1
        assert assignment.value(ids["b"]) is None
        assert assignment.value(ids["c"]) is None
        assert len(assignment) == 1

    def test_revert_to_zero(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["a"], 1)
        assignment.revert(0)
        assert len(assignment) == 0

    def test_invalid_marker(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        with pytest.raises(GenerationError):
            assignment.revert(5)

    def test_reassignable_after_revert(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        marker = assignment.checkpoint()
        assignment.assign(ids["a"], 1)
        assignment.revert(marker)
        assert assignment.assign(ids["a"], 0) is True


class TestQueries:
    def test_latest_updated(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["a"], 1)
        assignment.assign(ids["out"], 1)
        assignment.assign(ids["b"], 0)
        assert assignment.latest_updated([ids["a"], ids["out"]]) == ids["out"]
        assert assignment.latest_updated([ids["c"]]) is None

    def test_pis_set(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        cone = [ids["out"], ids["inner"], ids["a"], ids["b"], ids["c"]]
        assert not assignment.pis_set(cone)
        for pi in (ids["a"], ids["b"], ids["c"]):
            assignment.assign(pi, 0)
        assert assignment.pis_set(cone)

    def test_pi_values_only_pis(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["a"], 1)
        assignment.assign(ids["inner"], 1)
        assert assignment.pi_values() == {ids["a"]: 1}

    def test_trail_order(self, and_or_network):
        net, ids = and_or_network
        assignment = Assignment(net)
        assignment.assign(ids["c"], 1)
        assignment.assign(ids["a"], 0)
        assert assignment.trail() == [ids["c"], ids["a"]]
