"""Logic-function layer: truth tables, cubes/rows, ISOP, and gate library."""

from repro.logic.cubes import Cube, Row, isop, iter_minterms, matching_rows, rows_of
from repro.logic.gates import gate
from repro.logic.truthtable import MAX_VARS, TruthTable

__all__ = [
    "Cube",
    "MAX_VARS",
    "Row",
    "TruthTable",
    "gate",
    "isop",
    "iter_minterms",
    "matching_rows",
    "rows_of",
]
