"""Graceful degradation of the compiled SAT core.

A missing compiler or a corrupt cached ``.so`` must never take the run
down: the loader falls back to :class:`PyArenaCdclSolver` with a one-time
warning (and repairs a damaged cache by rebuilding it once).
"""

import warnings

import pytest

import repro.runtime.cbuild as cbuild
import repro.sat.compiled as compiled


@pytest.fixture
def clean_warn_flag(monkeypatch):
    monkeypatch.setattr(compiled._LOADER, "_warned", False)
    monkeypatch.delenv("REPRO_SATCORE", raising=False)


class TestCompilerMissing:
    def test_no_compiler_warns_once_and_falls_back(
        self, monkeypatch, clean_warn_flag
    ):
        monkeypatch.setattr(cbuild.shutil, "which", lambda name: None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert compiled._load_satcore() is None
            assert compiled._load_satcore() is None  # second call: silent
        fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(fallback) == 1
        assert "falling back" in str(fallback[0].message)

    def test_explicit_python_opt_out_is_silent(
        self, monkeypatch, clean_warn_flag
    ):
        monkeypatch.setenv("REPRO_SATCORE", "python")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert compiled._load_satcore() is None
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]


@pytest.mark.skipif(
    compiled.SAT_CORE != "c", reason="needs a working C toolchain"
)
class TestCorruptCache:
    def test_corrupt_cached_library_is_rebuilt_once(
        self, monkeypatch, tmp_path, clean_warn_flag
    ):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        lib_path = compiled._build_library()
        assert lib_path is not None and lib_path.startswith(str(tmp_path))
        with open(lib_path, "wb") as handle:
            handle.write(b"\x7fELF not really a shared object\n")
        assert compiled._try_load(lib_path) is None, "corruption must bite"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            lib = compiled._load_satcore()
        assert lib is not None, "rebuild should recover the compiled core"
        # The repaired cache loads directly again.
        assert compiled._try_load(lib_path) is not None
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]

    def test_unrecoverable_cache_warns_and_falls_back(
        self, monkeypatch, tmp_path, clean_warn_flag
    ):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        lib_path = compiled._build_library()
        assert lib_path is not None
        with open(lib_path, "wb") as handle:
            handle.write(b"junk")
        # Rebuilding "succeeds" but yields the same broken bits: the loader
        # must give up with one warning instead of looping.
        monkeypatch.setattr(compiled._LOADER, "_try_load", lambda path: None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert compiled._load_satcore() is None
        fallback = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallback) == 1
        assert "corrupt" in str(fallback[0].message)
