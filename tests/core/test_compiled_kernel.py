"""Compiled SimGen kernel vs the reference engines: exact equivalence.

The kernel of :mod:`repro.core.compiled` re-implements Assignment +
ImplicationEngine + DecisionEngine on dense slot arrays; its contract is
*bit-identical* behaviour, not merely functional equivalence.  The property
suite here drives both implementations with the same random networks, pin
states, and RNGs, and requires:

* identical implication fixpoints (conflict flag, forced values, and the
  *order* values were assigned in);
* identical candidate-row sets for decisions;
* identical decisions given equal RNGs (same draws, same commits);
* identical generated vectors, reports, and sweep trajectories end to end.

Cache bounding (implication memo, decision rows cache, kernel roulette
weights) is exercised separately: evictions must count, and must never
change a trajectory.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.compiled as compiled_mod
from repro.core import make_generator
from repro.core.assignment import Assignment
from repro.core.compiled import (
    CompiledSimGenGenerator,
    CompiledSimGenKernel,
    KernelConflict,
    adapt_backend,
)
from repro.core.decision import DecisionEngine, DecisionStrategy
from repro.core.generator import SimGenGenerator
from repro.core.implication import ImplicationEngine, ImplicationStrategy
from repro.core.assignment import Conflict
from repro.errors import GenerationError
from repro.sweep import SweepConfig, SweepEngine
from tests.conftest import random_network


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------

def seed_values(net, seed, count=3):
    """A deterministic handful of (uid, value) seed assignments."""
    rng = random.Random(seed)
    nodes = [n.uid for n in net.nodes() if not n.is_const]
    picks = rng.sample(nodes, min(count, len(nodes)))
    return [(uid, rng.randint(0, 1)) for uid in picks]


def reference_propagate(net, strategy, seeds):
    """(conflict, ordered assignment items, stats) via the reference pair."""
    assignment = Assignment(net)
    engine = ImplicationEngine(net, strategy)
    for uid, value in seeds:
        try:
            assignment.assign(uid, value)
        except Conflict:
            return True, None, engine.stats
    outcome = engine.propagate(assignment, [uid for uid, _ in seeds])
    if outcome.conflict:
        return True, None, engine.stats
    return False, list(assignment.as_dict().items()), engine.stats


def kernel_propagate(net, strategy, seeds):
    """The same run through :class:`CompiledSimGenKernel`."""
    kernel = CompiledSimGenKernel(net, implication_strategy=strategy)
    for uid, value in seeds:
        try:
            kernel.assign_uid(uid, value)
        except KernelConflict:
            return True, None, kernel.impl_stats
    conflict, _ = kernel.propagate_uids([uid for uid, _ in seeds])
    if conflict:
        return True, None, kernel.impl_stats
    return False, list(kernel.as_dict().items()), kernel.impl_stats


# ----------------------------------------------------------------------
# Implication fixpoint identity
# ----------------------------------------------------------------------

class TestImplicationIdentity:
    @settings(max_examples=60, deadline=None)
    @given(net_seed=st.integers(0, 1 << 16), pin_seed=st.integers(0, 1 << 16))
    def test_advanced_fixpoint_matches_reference(self, net_seed, pin_seed):
        net = random_network(seed=net_seed, num_inputs=4, num_gates=10)
        seeds = seed_values(net, pin_seed)
        ref = reference_propagate(net, ImplicationStrategy.ADVANCED, seeds)
        com = kernel_propagate(net, ImplicationStrategy.ADVANCED, seeds)
        # Conflict flag, every forced value, and the assignment ORDER.
        assert ref[0] == com[0]
        assert ref[1] == com[1]
        # Work accounting matches too (same examinations, same forcings).
        for key in ("propagate_calls", "examinations", "forced_assignments"):
            assert ref[2][key] == com[2][key]

    @settings(max_examples=40, deadline=None)
    @given(net_seed=st.integers(0, 1 << 16), pin_seed=st.integers(0, 1 << 16))
    def test_simple_fixpoint_matches_reference(self, net_seed, pin_seed):
        net = random_network(seed=net_seed, num_inputs=4, num_gates=10)
        seeds = seed_values(net, pin_seed)
        ref = reference_propagate(net, ImplicationStrategy.SIMPLE, seeds)
        com = kernel_propagate(net, ImplicationStrategy.SIMPLE, seeds)
        assert ref[0] == com[0]
        assert ref[1] == com[1]

    @settings(max_examples=25, deadline=None)
    @given(net_seed=st.integers(0, 1 << 16), pin_seed=st.integers(0, 1 << 16))
    def test_checkpoint_revert_restores_packed_state(self, net_seed, pin_seed):
        """Reverting must restore values AND the packed state indices."""
        net = random_network(seed=net_seed, num_inputs=4, num_gates=10)
        kernel = CompiledSimGenKernel(net)
        before = (list(kernel._values), list(kernel._state))
        marker = kernel.checkpoint()
        for uid, value in seed_values(net, pin_seed):
            try:
                kernel.assign_uid(uid, value)
            except KernelConflict:
                break
        kernel.propagate_uids([])
        kernel.revert(marker)
        assert (list(kernel._values), list(kernel._state)) == before
        assert len(kernel) == 0


# ----------------------------------------------------------------------
# Decision identity
# ----------------------------------------------------------------------

class TestDecisionIdentity:
    @settings(max_examples=40, deadline=None)
    @given(net_seed=st.integers(0, 1 << 16), pin_seed=st.integers(0, 1 << 16))
    def test_candidate_rows_match_reference(self, net_seed, pin_seed):
        net = random_network(seed=net_seed, num_inputs=4, num_gates=10)
        seeds = seed_values(net, pin_seed)

        assignment = Assignment(net)
        engine = ImplicationEngine(net)
        decision = DecisionEngine(net)
        kernel = CompiledSimGenKernel(net)
        for uid, value in seeds:
            try:
                ref_fresh = assignment.assign(uid, value)
            except Conflict:
                ref_fresh = None
            try:
                com_fresh = kernel.assign_uid(uid, value)
            except KernelConflict:
                com_fresh = None
            assert ref_fresh == com_fresh
            if ref_fresh is None:
                return
        uids = [uid for uid, _ in seeds]
        conflict_ref = engine.propagate(assignment, uids).conflict
        conflict_com, _ = kernel.propagate_uids(uids)
        assert conflict_ref == conflict_com
        if conflict_ref:
            return
        for node in net.nodes():
            if node.is_pi or node.is_const:
                continue
            ref_rows = decision.candidate_rows(assignment, node.uid)
            com_rows = kernel.candidate_rows_uid(node.uid)
            if ref_rows is None:
                assert com_rows is None
                continue
            assert com_rows == [
                (r.cube.mask, r.cube.values, r.output) for r in ref_rows
            ]

    @settings(max_examples=40, deadline=None)
    @given(
        net_seed=st.integers(0, 1 << 16),
        pin_seed=st.integers(0, 1 << 16),
        rng_seed=st.integers(0, 1 << 16),
        strategy=st.sampled_from(list(DecisionStrategy)),
    )
    def test_decide_matches_reference(
        self, net_seed, pin_seed, rng_seed, strategy
    ):
        """Equal RNGs must draw the same row and commit the same pins."""
        net = random_network(seed=net_seed, num_inputs=4, num_gates=10)
        seeds = seed_values(net, pin_seed, count=2)

        assignment = Assignment(net)
        decision = DecisionEngine(net, strategy, rng=random.Random(rng_seed))
        kernel = CompiledSimGenKernel(net, decision_strategy=strategy)
        kernel_rng = random.Random(rng_seed)
        try:
            for uid, value in seeds:
                assignment.assign(uid, value)
                kernel.assign_uid(uid, value)
        except (Conflict, KernelConflict):
            return
        for node in net.nodes():
            if node.is_pi or node.is_const:
                continue
            result = decision.decide(assignment, node.uid)
            conflict, committed = kernel.decide(
                kernel.slot(node.uid), kernel_rng
            )
            assert result.conflict == conflict
            assert [
                (kernel._uids[slot], kernel._values[slot])
                for slot in committed
            ] == result.assigned
            assert list(assignment.as_dict().items()) == list(
                kernel.as_dict().items()
            )
        assert decision.rng.getstate() == kernel_rng.getstate()


# ----------------------------------------------------------------------
# Generator / sweep identity
# ----------------------------------------------------------------------

SIMGEN_STRATEGIES = ("AI+DC+MFFC", "AI+DC", "AI+RD", "SI+RD")


def sweep_trace(net, strategy, backend, seed):
    gen = make_generator(strategy, net, seed=seed, simgen_backend=backend)
    engine = SweepEngine(net, gen, SweepConfig(seed=seed, iterations=6))
    classes, metrics = engine.run_simulation_phase()
    reports = [
        (
            r.skipped,
            r.survivors,
            r.implications,
            r.decisions,
            r.conflicts,
            None
            if r.vector is None
            else tuple(sorted(r.vector.values.items())),
        )
        for r in gen.reports
    ]
    return (
        classes.all_classes(),
        metrics.cost_history,
        reports,
        gen.rng.getstate(),
    )


class TestGeneratorIdentity:
    @pytest.mark.parametrize("strategy", SIMGEN_STRATEGIES)
    def test_sweep_trajectory_identical(self, strategy):
        net = random_network(seed=21, num_inputs=6, num_gates=24)
        assert sweep_trace(net, strategy, "compiled", seed=5) == sweep_trace(
            net, strategy, "reference", seed=5
        )

    @settings(max_examples=12, deadline=None)
    @given(net_seed=st.integers(0, 1 << 12), run_seed=st.integers(0, 1 << 12))
    def test_random_networks_trajectory_identical(self, net_seed, run_seed):
        net = random_network(seed=net_seed, num_inputs=5, num_gates=16)
        assert sweep_trace(
            net, "AI+DC+MFFC", "compiled", seed=run_seed
        ) == sweep_trace(net, "AI+DC+MFFC", "reference", seed=run_seed)

    def test_stats_shared_with_reference_engines(self):
        """The kernel folds its work into the reference stats dicts."""
        net = random_network(seed=3, num_inputs=5, num_gates=16)
        gen = make_generator("AI+DC+MFFC", net, seed=1)
        assert isinstance(gen, CompiledSimGenGenerator)
        assert gen.kernel.impl_stats is gen.implication.stats
        assert gen.kernel.dec_stats is gen.decision.stats
        SweepEngine(net, gen, SweepConfig(seed=1, iterations=3)).run()
        assert gen.implication.stats["propagate_calls"] > 0
        assert gen.decision.stats["decisions"] > 0


# ----------------------------------------------------------------------
# Backend plumbing
# ----------------------------------------------------------------------

class TestBackendSelection:
    def test_make_generator_rejects_unknown_backend(self):
        net = random_network(seed=1)
        with pytest.raises(GenerationError, match="unknown simgen backend"):
            make_generator("AI+DC+MFFC", net, simgen_backend="vectorized")

    def test_adapt_backend_rejects_unknown_backend(self):
        net = random_network(seed=1)
        gen = make_generator("AI+DC+MFFC", net, seed=1)
        with pytest.raises(GenerationError, match="unknown simgen backend"):
            adapt_backend(gen, "jit")

    def test_adapt_backend_passthrough(self):
        net = random_network(seed=1)
        assert adapt_backend(None, "compiled") is None
        rands = make_generator("RandS", net, seed=1)
        assert adapt_backend(rands, "reference") is rands
        gen = make_generator("AI+DC+MFFC", net, seed=1)
        assert gen.backend == "batch"  # the default backend
        assert adapt_backend(gen, "batch") is gen
        compiled = make_generator(
            "AI+DC+MFFC", net, seed=1, simgen_backend="compiled"
        )
        assert adapt_backend(compiled, "compiled") is compiled

    def test_adapt_backend_roundtrip_preserves_trajectory(self):
        net = random_network(seed=9, num_inputs=5, num_gates=16)

        def run(gen):
            engine = SweepEngine(net, gen, SweepConfig(seed=2, iterations=4))
            classes, metrics = engine.run_simulation_phase()
            return classes.all_classes(), metrics.cost_history

        compiled = make_generator("AI+DC+MFFC", net, seed=2)
        swapped = adapt_backend(compiled, "reference")
        assert isinstance(swapped, SimGenGenerator)
        assert not isinstance(swapped, CompiledSimGenGenerator)
        assert swapped.rng is compiled.rng
        baseline = run(make_generator("AI+DC+MFFC", net, seed=2))
        assert run(swapped) == baseline


# ----------------------------------------------------------------------
# Bounded caches: evictions count, trajectories never change
# ----------------------------------------------------------------------

class TestBoundedCaches:
    def test_implication_memo_cap_validates(self):
        net = random_network(seed=1)
        with pytest.raises(ValueError, match="memo_cap"):
            ImplicationEngine(net, memo_cap=0)

    def test_implication_memo_eviction_counts_and_preserves_results(self):
        net = random_network(seed=4, num_inputs=5, num_gates=16)
        seeds = seed_values(net, 11)
        bounded = ImplicationEngine(net, memo_cap=1)
        unbounded = ImplicationEngine(net)

        def run(engine):
            assignment = Assignment(net)
            for uid, value in seeds:
                assignment.assign(uid, value)
            outcome = engine.propagate(assignment, [u for u, _ in seeds])
            return outcome.conflict, list(assignment.as_dict().items())

        assert run(bounded) == run(unbounded)
        assert run(bounded) == run(unbounded)  # memo-hit path, post-eviction
        assert bounded.stats["memo_evictions"] > 0
        assert unbounded.stats["memo_evictions"] == 0

    def test_decision_rows_cache_cap_validates(self):
        net = random_network(seed=1)
        with pytest.raises(ValueError, match="rows_cache_cap"):
            DecisionEngine(net, rows_cache_cap=0)

    def test_decision_rows_cache_eviction_counts(self):
        net = random_network(seed=4, num_inputs=5, num_gates=16)
        bounded = DecisionEngine(net, rows_cache_cap=1)
        assignment = Assignment(net)
        for node in net.nodes():
            if not (node.is_pi or node.is_const):
                bounded.candidate_rows(assignment, node.uid)
        assert bounded.stats["cache_evictions"] > 0

    def test_transition_cache_lru_eviction_counts(self, monkeypatch):
        """The shared transition-table cache is LRU-bounded: hits reinsert
        (the hot tail survives an insert past the cap), the coldest entry
        is evicted, and the lifetime eviction counter climbs.  Eviction
        only drops the cache's reference — kernels built earlier keep
        their tables."""
        monkeypatch.setattr(compiled_mod, "TRANSITION_CACHE_CAP", 2)
        compiled_mod.clear_transition_cache()
        base = compiled_mod.transition_cache_info()["evictions"]
        rows = ((1, 1, 0),)  # one row over pin 0 — valid for any k >= 1
        a = compiled_mod.transition_table(rows, 1, False)
        b = compiled_mod.transition_table(rows, 2, False)
        # Touch `a` so `b` becomes the LRU victim of the next insert.
        assert compiled_mod.transition_table(rows, 1, False) is a
        compiled_mod.transition_table(rows, 3, False)
        assert compiled_mod.transition_table(rows, 1, False) is a
        rebuilt = compiled_mod.transition_table(rows, 2, False)
        assert rebuilt is not b
        info = compiled_mod.transition_cache_info()
        assert info["cap"] == 2
        assert info["size"] <= 2
        assert info["evictions"] - base >= 2
        # The evicted table object itself is untouched for live holders.
        assert b.rows == rows and b.k == 2

    def test_transition_cache_shared_across_kernels(self):
        """Two kernels over the same network share table objects (the
        cache key is the gate function, not the gate)."""
        compiled_mod.clear_transition_cache()
        net = random_network(seed=4, num_inputs=5, num_gates=16)
        first = CompiledSimGenKernel(net)
        second = CompiledSimGenKernel(net)
        assert first._tables and len(first._tables) == len(second._tables)
        for x, y in zip(first._tables, second._tables):
            assert x is y

    def test_kernel_weights_eviction_counts_and_preserves_trajectory(
        self, monkeypatch
    ):
        """With the weights cache capped at zero every decide evicts; the
        roulette still replays identical floats, so the sweep trace is
        unchanged."""
        net = random_network(seed=3, num_inputs=6, num_gates=20)
        baseline = sweep_trace(net, "AI+DC+MFFC", "compiled", seed=3)
        monkeypatch.setattr(compiled_mod, "WEIGHTS_CACHE_CAP", 0)
        gen = make_generator("AI+DC+MFFC", net, seed=3)
        engine = SweepEngine(net, gen, SweepConfig(seed=3, iterations=6))
        classes, metrics = engine.run_simulation_phase()
        reports = [
            (
                r.skipped,
                r.survivors,
                r.implications,
                r.decisions,
                r.conflicts,
                None
                if r.vector is None
                else tuple(sorted(r.vector.values.items())),
            )
            for r in gen.reports
        ]
        trace = (
            classes.all_classes(),
            metrics.cost_history,
            reports,
            gen.rng.getstate(),
        )
        assert trace == baseline
        assert gen.kernel.stats["weights_evictions"] > 0


class TestTransitionCacheConcurrency:
    """The process-wide table cache is hit from service worker threads."""

    def test_concurrent_sessions_conserve_counters(self):
        """hits + misses == lookups under contention, and every miss is a
        real construction (no lost updates from read-modify-write races)."""
        import threading

        compiled_mod.clear_transition_cache()
        before = compiled_mod.transition_cache_info()
        distinct = [((1, 1, 0),), ((1, 0, 0),), ((3, 3, 0),), ((2, 2, 1),)]
        threads, rounds = 8, 50
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(rounds):
                for rows in distinct:
                    compiled_mod.transition_table(rows, 4, False)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        info = compiled_mod.transition_cache_info()
        lookups = threads * rounds * len(distinct)
        hits = info["hits"] - before["hits"]
        misses = info["misses"] - before["misses"]
        assert hits + misses == lookups
        # Under the cap nothing evicts, so misses == resident entries:
        # each table was constructed exactly once across all threads.
        assert info["evictions"] == before["evictions"]
        assert misses == len(distinct)

    def test_counters_survive_clear(self):
        compiled_mod.clear_transition_cache()
        before = compiled_mod.transition_cache_info()
        compiled_mod.transition_table(((1, 1, 0),), 5, False)
        compiled_mod.clear_transition_cache()
        info = compiled_mod.transition_cache_info()
        assert info["size"] == 0
        assert info["misses"] == before["misses"] + 1
