#!/usr/bin/env python3
"""Quickstart: build a circuit, generate a SimGen vector, run a sweep.

This walks the three layers a new user touches first:

1. build a Boolean network with :class:`repro.network.NetworkBuilder`;
2. ask SimGen (Algorithm 1) for an input vector that drives chosen nodes
   to chosen values — the paper's Figure 1 circuit, where plain reverse
   simulation often conflicts;
3. run a full SAT sweep of a suite benchmark and print its metrics.

Run:  python examples/quickstart.py
"""

from repro.benchgen import sweep_instance
from repro.core import ReverseSimGenerator, SimGenGenerator, make_generator
from repro.network import NetworkBuilder
from repro.simulation import Simulator
from repro.sweep import SweepConfig, SweepEngine


def build_figure1_circuit():
    """The paper's Figure 1: z = AND(AND(A, ~B), NAND(~B, C))."""
    builder = NetworkBuilder("fig1")
    a = builder.pi("A")
    b = builder.pi("B")
    c = builder.pi("C")
    inv_b = builder.not_(b, "inv_b")
    x = builder.and_(a, inv_b, "x")
    y = builder.nand_(inv_b, c, "y")
    z = builder.and_(x, y, "z")
    builder.po(z, "D")
    return builder.build(), z


def main() -> None:
    # ------------------------------------------------------------------
    # 1+2. SimGen vs reverse simulation on the Figure 1 circuit.
    # ------------------------------------------------------------------
    network, z = build_figure1_circuit()
    print(f"Figure 1 circuit: {network}")

    simgen = SimGenGenerator(network, seed=0)
    report = simgen.generate_for_targets({z: 1})
    print(
        f"SimGen target D=1: conflicts={report.conflicts}, "
        f"implications={report.implications}, decisions={report.decisions}"
    )

    failures = 0
    for seed in range(100):
        revs = ReverseSimGenerator(network, seed=seed)
        if revs.generate_for_targets({z: 1}).conflicts:
            failures += 1
    print(f"Reverse simulation on the same target: {failures}/100 attempts conflict")

    # The implied vector (A=1, B=0, C=0) indeed produces D=1:
    pis = {network.find_by_name(n): v for n, v in [("A", 1), ("B", 0), ("C", 0)]}
    value = Simulator(network).run_vector(pis)[z]
    print(f"Simulating A=1 B=0 C=0 -> D = {value}\n")

    # ------------------------------------------------------------------
    # 3. A full sweep of a suite benchmark.
    # ------------------------------------------------------------------
    instance = sweep_instance("apex2")
    print(f"Sweeping benchmark apex2: {instance.num_gates} LUTs, "
          f"{len(instance.pis)} PIs")
    generator = make_generator("AI+DC+MFFC", instance, seed=1)
    engine = SweepEngine(
        instance, generator, SweepConfig(seed=7, iterations=20, random_width=8)
    )
    result = engine.run()
    metrics = result.metrics
    print(f"cost after random round : {metrics.cost_history[0]}")
    print(f"cost after 20 iterations: {metrics.final_cost}")
    print(f"SAT calls               : {metrics.sat_calls} "
          f"({metrics.proven} proven, {metrics.disproven} disproven)")
    print(f"simulation time         : {metrics.sim_time:.2f}s")
    print(f"SAT time                : {metrics.sat_time:.2f}s")
    print(f"equivalences proven     : {len(result.equivalences)}")


if __name__ == "__main__":
    main()
