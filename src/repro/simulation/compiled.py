"""Compiled bit-parallel simulation: the network lowered once, run many times.

:class:`~repro.simulation.simulator.Simulator` walks a uid-keyed dict and
re-derives each node's evaluation plan (an ``lru_cache`` hit on the truth
table) on every batch.  :class:`CompiledSimulator` pays those costs once at
construction instead:

* nodes are assigned **dense slot indices** in topological order — the run
  loop reads and writes a flat list, never a dict keyed by uid;
* each gate's ISOP evaluation plan is resolved **ahead of time** into cube
  operands over fanin slots (no per-batch ``TruthTable`` hashing);
* **constants are folded**: constant gates — and gates whose cubes resolve
  against constant fanins — become compile-time 0/1 slots, and their
  literals disappear from downstream cubes;
* the tape is then lowered to a **straight-line Python function** (one
  expression per gate, built with ``compile``/``exec``), which removes the
  remaining per-node interpreter dispatch.  Networks larger than
  :data:`CODEGEN_NODE_LIMIT` fall back to interpreting the tape directly.

With ``targets=`` the compiler restricts the tape to the union of the
targets' fanin cones, so a sweep refining a shrinking candidate set never
simulates logic outside the classes it still cares about.  Only the cone's
PIs are then required in ``run_words`` and only cone nodes appear in the
result.

Results are bit-identical to :class:`Simulator` on every compiled node
(checked by the cross-backend property suite in
``tests/simulation/test_cross_backend.py``).  The network must not be
mutated after compilation, the same implicit contract as ``Simulator``'s
cached topological order.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Iterable, Mapping, Optional

from repro.errors import SimulationError
from repro.network.network import Network
from repro.network.traversal import cone_topological_order
from repro.simulation.bitvec import width_mask
from repro.simulation.patterns import PatternBatch
from repro.simulation.simulator import _eval_plan

#: Above this many compiled nodes the generated source is no longer cheap to
#: ``compile()``; fall back to interpreting the instruction tape.
CODEGEN_NODE_LIMIT = 30000

#: Process-wide compiled-tape LRU bound (distinct (structure, targets)
#: pairs).  The serving daemon re-submits identical or near-identical
#: netlists many times; re-lowering the tape (ISOP plans, constant
#: folding, codegen ``exec``) dominates small-job latency, so compiled
#: artifacts are shared.  Entries hold only immutable compile products —
#: per-instance ``stats`` stay private.
TAPE_CACHE_CAP = 64

#: digest -> (uids, pis, pi_slots, const_items, tape, fn).  Insertion
#: order doubles as LRU order (hits reinsert), like the SimGen
#: transition-table cache.
_TAPE_CACHE: dict[bytes, tuple] = {}
_TAPE_LOCK = threading.Lock()
_TAPE_HITS = 0
_TAPE_MISSES = 0
_TAPE_EVICTIONS = 0


def _structure_digest(
    network: Network,
    order: Iterable[int],
    roots: Optional[tuple[int, ...]],
) -> bytes:
    """Uid-faithful structural digest of the compiled slice.

    Unlike :func:`repro.transforms.strash.node_signatures` this hash
    *includes* uids and iteration order: the compiled tape addresses
    nodes by uid-assigned slots, so it only transfers between networks
    whose uid-level structure matches exactly (e.g. two parses of the
    same netlist text).  Hashing the compile ``order`` rather than the
    whole network keeps cone compiles O(cone), and is sound because the
    tape is a pure function of that order plus each node's kind, table
    and fanins.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(repr(roots).encode("ascii"))
    # The codegen-vs-interpreter decision is part of the compile product,
    # so a (test-)adjusted CODEGEN_NODE_LIMIT must miss old entries.
    hasher.update(repr(CODEGEN_NODE_LIMIT).encode("ascii"))
    for uid in order:
        node = network.node(uid)
        if node.is_pi:
            hasher.update(f"{uid}:pi;".encode("ascii"))
            continue
        hasher.update(
            f"{uid}:{node.table.num_vars}:{node.table.bits}:"
            f"{node.fanins!r};".encode("ascii")
        )
    return hasher.digest()


def _tape_cache_get(key: bytes) -> Optional[tuple]:
    global _TAPE_HITS, _TAPE_MISSES
    with _TAPE_LOCK:
        cached = _TAPE_CACHE.pop(key, None)
        if cached is None:
            _TAPE_MISSES += 1
            return None
        _TAPE_HITS += 1
        _TAPE_CACHE[key] = cached  # reinsert = most recently used
        return cached


def _tape_cache_put(key: bytes, artifacts: tuple) -> None:
    global _TAPE_EVICTIONS
    with _TAPE_LOCK:
        if key not in _TAPE_CACHE:
            while len(_TAPE_CACHE) >= TAPE_CACHE_CAP:
                _TAPE_CACHE.pop(next(iter(_TAPE_CACHE)))
                _TAPE_EVICTIONS += 1
        _TAPE_CACHE[key] = artifacts


def tape_cache_info() -> dict:
    """Occupancy and lifetime hit/miss/eviction counters (thread-safe)."""
    with _TAPE_LOCK:
        return {
            "size": len(_TAPE_CACHE),
            "cap": TAPE_CACHE_CAP,
            "hits": _TAPE_HITS,
            "misses": _TAPE_MISSES,
            "evictions": _TAPE_EVICTIONS,
        }


def clear_tape_cache() -> None:
    """Drop every cached tape (perf-harness cold starts).

    Counters are lifetime-monotonic and survive clears.
    """
    with _TAPE_LOCK:
        _TAPE_CACHE.clear()


class CompiledSimulator:
    """Simulates a fixed network via a pre-lowered instruction tape.

    Args:
        network: The network to compile.
        targets: Optional node ids; when given, only the union of their
            fanin cones is compiled (and simulated, and returned).
    """

    def __init__(self, network: Network, targets: Optional[Iterable[int]] = None):
        self.network = network
        if targets is None:
            roots: Optional[tuple[int, ...]] = None
            order = network.topological_order()
        else:
            roots = tuple(sorted(set(targets)))
            for uid in roots:
                network.node(uid)  # existence check
            order = cone_topological_order(network, roots)
        #: Work counters for the metrics registry (published as ``sim.*``).
        self.stats = {"batches": 0, "patterns": 0, "node_evals": 0}
        digest = _structure_digest(network, order, roots)
        cached = _tape_cache_get(digest)
        if cached is not None:
            # Every cached field is immutable (or, for const_bits, never
            # mutated after compile), so instances share them freely.
            (
                self._uids,
                self._pis,
                self._pi_slots,
                self._const_bits,
                self._tape,
                self._fn,
            ) = cached
            return
        self._uids: tuple[int, ...] = tuple(order)
        slot_of = {uid: slot for slot, uid in enumerate(order)}

        pis: list[int] = []  # uids, in compiled order
        pi_slots: list[int] = []
        const_bits: dict[int, int] = {}  # slot -> folded 0/1
        # Tape op: (slot, complement, cubes); each cube is (pos, neg) slot
        # tuples — AND of the positives and negated negatives, OR over cubes.
        tape: list[tuple[int, bool, tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]]] = []

        for uid in order:
            node = network.node(uid)
            slot = slot_of[uid]
            if node.is_pi:
                pis.append(uid)
                pi_slots.append(slot)
                continue
            if node.is_const:
                const_bits[slot] = 1 if node.table.bits else 0
                continue
            complement, plan_cubes = _eval_plan(node.table)
            fanin_slots = [slot_of[f] for f in node.fanins]
            cubes: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
            universal = False
            for cube_mask, cube_values in plan_cubes:
                pos: list[int] = []
                neg: list[int] = []
                contradicted = False
                i = 0
                m = cube_mask
                while m:
                    if m & 1:
                        want = (cube_values >> i) & 1
                        fslot = fanin_slots[i]
                        folded = const_bits.get(fslot)
                        if folded is not None:
                            if folded != want:
                                contradicted = True
                                break
                            # Literal satisfied at compile time; drop it.
                        elif want:
                            pos.append(fslot)
                        else:
                            neg.append(fslot)
                    m >>= 1
                    i += 1
                if contradicted:
                    continue  # cube can never fire
                if not pos and not neg:
                    universal = True  # cube fires on every pattern
                    break
                cubes.append((tuple(pos), tuple(neg)))
            if universal:
                const_bits[slot] = 0 if complement else 1
            elif not cubes:
                const_bits[slot] = 1 if complement else 0
            else:
                tape.append((slot, complement, tuple(cubes)))

        self._pis: tuple[int, ...] = tuple(pis)
        self._pi_slots: tuple[int, ...] = tuple(pi_slots)
        self._const_bits: dict[int, int] = const_bits
        self._tape = tuple(tape)
        self._fn = (
            self._codegen() if len(order) <= CODEGEN_NODE_LIMIT else None
        )
        _tape_cache_put(
            digest,
            (
                self._uids,
                self._pis,
                self._pi_slots,
                self._const_bits,
                self._tape,
                self._fn,
            ),
        )

    # ------------------------------------------------------------------
    # Introspection (benchmarks and tests)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Compiled nodes (PIs + constants + gate ops)."""
        return len(self._uids)

    @property
    def num_gate_ops(self) -> int:
        """Gate evaluations executed per batch."""
        return len(self._tape)

    @property
    def num_folded(self) -> int:
        """Slots resolved to compile-time constants."""
        return len(self._const_bits)

    @property
    def compiled_pis(self) -> tuple[int, ...]:
        """PIs the tape reads (the cone PIs when ``targets`` was given)."""
        return self._pis

    # ------------------------------------------------------------------
    # Lowering to Python source
    # ------------------------------------------------------------------
    def _codegen(self):
        lines = ["def _compiled_sim(pi_words, mask):"]
        for k, slot in enumerate(self._pi_slots):
            lines.append(f"    v{slot} = pi_words[{k}] & mask")
        for slot, bit in self._const_bits.items():
            lines.append(f"    v{slot} = mask" if bit else f"    v{slot} = 0")
        for slot, complement, cubes in self._tape:
            terms = []
            for pos, neg in cubes:
                lits = [f"v{s}" for s in pos] + [f"~v{s}" for s in neg]
                terms.append("(mask & " + " & ".join(lits) + ")")
            expr = " | ".join(terms)
            if complement:
                expr = f"mask ^ ({expr})"
            lines.append(f"    v{slot} = {expr}")
        result = ", ".join(f"v{slot}" for slot in range(len(self._uids)))
        lines.append(f"    return ({result}{',' if len(self._uids) == 1 else ''})")
        namespace: dict[str, object] = {}
        exec(compile("\n".join(lines), "<compiled-simulator>", "exec"), namespace)
        return namespace["_compiled_sim"]

    def _run_tape(self, pi_list: list[int], mask: int) -> list[int]:
        values = [0] * len(self._uids)
        for k, slot in enumerate(self._pi_slots):
            values[slot] = pi_list[k] & mask
        for slot, bit in self._const_bits.items():
            values[slot] = mask if bit else 0
        for slot, complement, cubes in self._tape:
            result = 0
            for pos, neg in cubes:
                term = mask
                for s in pos:
                    term &= values[s]
                if term:
                    for s in neg:
                        term &= ~values[s]
                if term:
                    result |= term
                    if result == mask:
                        break
            values[slot] = (result ^ mask) if complement else result
        return values

    # ------------------------------------------------------------------
    # Simulation API (mirrors Simulator)
    # ------------------------------------------------------------------
    def run_words(
        self, pi_words: Mapping[int, int], width: int
    ) -> dict[int, int]:
        """Simulate packed PI words; returns node id -> packed output word.

        Every *compiled* PI must be present in ``pi_words`` (all network PIs
        without ``targets``; only the cone PIs with them).  Extra entries are
        ignored.  Only compiled nodes appear in the result.
        """
        if width < 0:
            raise SimulationError("width must be >= 0")
        self.stats["batches"] += 1
        self.stats["patterns"] += width
        self.stats["node_evals"] += len(self._tape) * max(
            1, (width + 63) // 64
        )
        mask = width_mask(width)
        try:
            pi_list = [pi_words[pi] for pi in self._pis]
        except KeyError as exc:
            raise SimulationError(f"missing word for PI {exc.args[0]}") from exc
        if self._fn is not None:
            values = self._fn(pi_list, mask)
        else:
            values = self._run_tape(pi_list, mask)
        return dict(zip(self._uids, values))

    def run_batch(self, batch: PatternBatch) -> dict[int, int]:
        """Simulate a :class:`PatternBatch`."""
        return self.run_words(batch.words(), batch.width)

    def run_vector(self, values: Mapping[int, int]) -> dict[int, int]:
        """Simulate a single total input vector; returns node id -> 0/1."""
        return self.run_words(values, 1)

    def output_words(self, node_values: Mapping[int, int]) -> dict[str, int]:
        """Extract PO name -> packed word from a simulation result."""
        return {name: node_values[uid] for name, uid in self.network.pos}
