"""Aggregation helpers."""

import math

import pytest

from repro.experiments.metrics import (
    geomean,
    mean,
    normalized_difference,
    safe_ratio,
)


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty(self):
        assert mean([]) == 0.0


class TestGeomean:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_empty(self):
        assert geomean([]) == 0.0


class TestSafeRatio:
    def test_plain(self):
        assert safe_ratio(3.0, 2.0) == 1.5

    def test_both_zero(self):
        assert safe_ratio(0.0, 0.0) == 1.0

    def test_zero_baseline(self):
        assert safe_ratio(4.0, 0.0) == 5.0  # (4+1)/1


class TestNormalizedDifference:
    def test_improvement_negative(self):
        assert normalized_difference(80, 100) == pytest.approx(-0.2)

    def test_equal_is_zero(self):
        assert normalized_difference(7, 7) == pytest.approx(0.0)
