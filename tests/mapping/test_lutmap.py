"""LUT mapping: function preservation, K bound, structure."""

import pytest

from repro.mapping import map_to_luts
from repro.network import NetworkBuilder, validate
from repro.simulation import cone_function
from tests.conftest import networks_equal, random_network


class TestFunctionPreservation:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_random_networks(self, seed, k):
        net = random_network(seed=seed, num_inputs=5, num_gates=14)
        mapped, stats = map_to_luts(net, k=k)
        validate(mapped)
        assert networks_equal(net, mapped)

    def test_exhaustive_small(self):
        builder = NetworkBuilder()
        a, b, c, d = builder.pis(4)
        g1 = builder.xor_(a, b)
        g2 = builder.and_(g1, c)
        g3 = builder.or_(g2, d)
        g4 = builder.nand_(g3, g1)
        builder.po(g4, "f")
        net = builder.build()
        mapped, _ = map_to_luts(net, k=3)
        ref, sup_a = cone_function(net, g4)
        got, sup_b = cone_function(mapped, mapped.pos[0][1])
        assert ref == got

    def test_adder_mapping(self):
        builder = NetworkBuilder()
        a = builder.pis(3, "a")
        b = builder.pis(3, "b")
        sums, carry = builder.ripple_adder(a, b)
        for s in sums:
            builder.po(s)
        builder.po(carry)
        net = builder.build()
        mapped, stats = map_to_luts(net, k=6)
        assert networks_equal(net, mapped, width=64)
        assert stats.luts < net.num_gates  # 6-LUTs absorb several gates


class TestStructure:
    def test_k_bound_respected(self):
        net = random_network(seed=7, num_inputs=6, num_gates=25)
        for k in (2, 4, 6):
            mapped, _ = map_to_luts(net, k=k)
            for node in mapped.gates():
                assert node.num_fanins <= k

    def test_po_names_preserved(self):
        net = random_network(seed=8)
        mapped, _ = map_to_luts(net)
        assert [n for n, _ in mapped.pos] == [n for n, _ in net.pos]

    def test_pi_names_and_order_preserved(self):
        net = random_network(seed=9)
        mapped, _ = map_to_luts(net)
        assert [mapped.node(p).name for p in mapped.pis] == [
            net.node(p).name for p in net.pis
        ]

    def test_stats(self):
        net = random_network(seed=10)
        mapped, stats = map_to_luts(net, k=4)
        assert stats.k == 4
        assert stats.luts == mapped.num_gates
        assert stats.depth == mapped.depth()

    def test_constant_output(self):
        builder = NetworkBuilder()
        a = builder.pi()
        g = builder.and_(a, builder.not_(a))  # constant 0
        builder.po(g, "zero")
        net = builder.build()
        mapped, _ = map_to_luts(net)
        table, _ = cone_function(mapped, mapped.pos[0][1], max_support=4)
        assert table.const_value() == 0

    def test_depth_no_worse_than_gates(self):
        net = random_network(seed=11, num_inputs=6, num_gates=30)
        mapped, stats = map_to_luts(net, k=6)
        assert stats.depth <= net.depth()
