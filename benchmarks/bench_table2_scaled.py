"""Bench: Table 2's lower half — &putontop-scaled instances (§6.4)."""

from __future__ import annotations

import os

from repro.experiments.table2 import run_table2

#: Scaled-down copy counts for the interactive run; REPRO_FULL uses the
#: EXPERIMENTS.md workload from repro.experiments.config.
QUICK_SCALED = (
    ("alu4", 3),
    ("arbiter", 3),
    ("b15_C2", 2),
)


def test_table2_scaled(benchmark, config, shared_runner):
    full = os.environ.get("REPRO_FULL", "") not in ("", "0")
    kwargs = {"config": config, "runner": shared_runner, "scaled": True}
    if not full:
        kwargs["scaled_benchmarks"] = QUICK_SCALED
    result = benchmark.pedantic(
        run_table2, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert all(row.copies >= 2 for row in result.rows)
