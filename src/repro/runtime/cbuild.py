"""Build-and-load machinery for optional C accelerator cores.

Both compiled cores in this codebase — the SAT clause arena
(``repro/sat/_satcore.c``) and the SimGen lane kernel
(``repro/core/_simgencore.c``) — follow the same contract: a single
portable C99 source file compiled into a shared object with whatever
system compiler exists, cached by source hash so the build runs once per
machine, loaded through ``ctypes``, and *optional* — when no compiler or
writable cache directory is available the caller falls back to a
pure-Python twin with identical trajectories.  This module is that
contract, factored out of :mod:`repro.sat.compiled` so every core shares
one implementation of the corner cases:

* **source-hash cache keys** — edits rebuild, stale builds are never
  picked up;
* **atomic installs** — ``os.replace`` of a temp file, so concurrent
  builders (a fork pool importing the module in every worker) race
  benignly: all produce identical bits and the last rename wins;
* **cache-dir ladder** — ``$XDG_CACHE_HOME`` (or ``~/.cache``) first,
  then a per-uid tmpdir, skipping unwritable locations;
* **corrupt-cache recovery** — a cached ``.so`` that no longer loads
  (truncated by a crashed builder, damaged on disk, stale symbol layout)
  is unlinked and rebuilt from source exactly once;
* **one-time fallback warnings** — an *involuntary* fallback changes
  speed, never results, and should be visible exactly once per process;
  silence is reserved for the explicit ``REPRO_<CORE>=python`` opt-out.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from typing import Callable, Optional


def build_shared_library(source_path: str, cache_name: str) -> Optional[str]:
    """Compile one C source into a cached shared object; path or None.

    The cache key is the source hash, so edits rebuild and stale builds
    are never picked up.  ``os.replace`` makes concurrent builders race
    benignly: all produce identical bits and the last rename wins
    atomically.
    """
    try:
        with open(source_path, "rb") as fh:
            source = fh.read()
    except OSError:
        return None
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return None
    tag = hashlib.sha256(source).hexdigest()[:20]
    cache_root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    candidates = [os.path.join(cache_root, "repro", cache_name)]
    try:
        uid = os.getuid()
    except AttributeError:  # pragma: no cover - non-POSIX
        uid = 0
    candidates.append(
        os.path.join(tempfile.gettempdir(), f"repro-{cache_name}-{uid}")
    )
    for lib_dir in candidates:
        lib_path = os.path.join(lib_dir, f"{cache_name}-{tag}.so")
        if os.path.exists(lib_path):
            return lib_path
        try:
            os.makedirs(lib_dir, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(suffix=".so.tmp", dir=lib_dir)
            os.close(fd)
        except OSError:
            continue  # cache dir not writable: try the next location
        try:
            proc = subprocess.run(
                [compiler, "-O2", "-std=c99", "-fPIC", "-shared",
                 "-o", tmp_path, source_path],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                timeout=300,
            )
        except (OSError, subprocess.SubprocessError):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            continue
        if proc.returncode != 0:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return None  # the source itself fails: no dir will fix that
        try:
            os.replace(tmp_path, lib_path)
        except OSError:
            continue
        return lib_path
    return None


class CoreLoader:
    """Build, load, and configure one optional C core.

    Args:
        source_path: Absolute path of the C source file.
        cache_name: Cache directory / file stem (e.g. ``"satcore"``).
        env_var: Environment variable whose value ``"python"`` opts out of
            the C core silently (e.g. ``"REPRO_SATCORE"``).
        configure: Callback that sets ``argtypes``/``restype`` on the
            loaded library; an :class:`AttributeError` from it (missing
            symbol — stale layout) counts as a load failure.
        describe: Human name used in the one-time fallback warning.
    """

    def __init__(
        self,
        source_path: str,
        cache_name: str,
        env_var: str,
        configure: Callable[[ctypes.CDLL], None],
        describe: str,
    ):
        self.source_path = source_path
        self.cache_name = cache_name
        self.env_var = env_var
        self.configure = configure
        self.describe = describe
        self._warned = False

    def _warn_fallback(self, reason: str) -> None:
        """One-time heads-up that this process runs the pure-Python twin."""
        if self._warned:
            return
        self._warned = True
        warnings.warn(
            f"{self.describe} unavailable ({reason}); falling back to the "
            "pure-Python twin (identical results, slower)",
            RuntimeWarning,
            stacklevel=4,
        )

    def _try_load(self, lib_path: str) -> Optional[ctypes.CDLL]:
        try:
            lib = ctypes.CDLL(lib_path)
            self.configure(lib)
        except (OSError, AttributeError):
            return None
        return lib

    def load(self) -> Optional[ctypes.CDLL]:
        """The configured library, or ``None`` (with a one-time warning)."""
        if os.environ.get(self.env_var, "").strip().lower() == "python":
            return None  # explicit opt-out: no warning
        lib_path = build_shared_library(self.source_path, self.cache_name)
        if lib_path is None:
            self._warn_fallback(
                "no usable C compiler or writable cache directory"
            )
            return None
        lib = self._try_load(lib_path)
        if lib is None:
            # A cached .so that no longer loads: discard it and rebuild
            # from source exactly once.
            try:
                os.unlink(lib_path)
            except OSError:
                pass
            rebuilt = build_shared_library(self.source_path, self.cache_name)
            lib = self._try_load(rebuilt) if rebuilt is not None else None
            if lib is None:
                self._warn_fallback(
                    f"cached core {lib_path!r} was corrupt and the rebuild "
                    "attempt did not produce a loadable library"
                )
        return lib
