"""Minimal stdlib HTTP client for the sweep service.

Used by ``repro.tools submit`` and the test/CI smoke flows; speaks the
JSON API of :mod:`repro.serve.daemon` with no third-party dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.errors import ReproError


class ServeError(ReproError):
    """The daemon refused or failed a request (admission, bad job, ...)."""


class ServeClient:
    """One daemon endpoint, e.g. ``ServeClient("http://127.0.0.1:8351")``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, path: str, payload: Optional[dict] = None, raw: bool = False
    ):
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                answer = json.loads(body)
            except ValueError:
                answer = {}
            raise ServeError(
                answer.get("rejected")
                or answer.get("error")
                or f"HTTP {exc.code} from {path}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach daemon at {self.base_url}: {exc.reason}"
            ) from exc
        if raw:
            return body
        return json.loads(body)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("/health")

    def stats(self) -> dict:
        return self._request("/stats")

    def submit(self, request: dict) -> str:
        """Submit a job; returns its id (raises :class:`ServeError` on
        admission rejection)."""
        answer = self._request("/jobs", payload=request)
        if "rejected" in answer:
            raise ServeError(answer["rejected"])
        return answer["id"]

    def job(self, job_id: str) -> dict:
        return self._request(f"/jobs/{job_id}")

    def trace(self, job_id: str, offset: int = 0) -> bytes:
        return self._request(f"/jobs/{job_id}/trace?offset={offset}", raw=True)

    def wait(
        self,
        job_id: str,
        poll_interval: float = 0.1,
        timeout: Optional[float] = None,
    ) -> dict:
        """Poll until the job leaves the queue; returns its final state.

        Raises :class:`ServeError` on job failure/rejection or when
        ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            state = self.job(job_id)
            status = state.get("status")
            if status == "done":
                return state
            if status in ("failed", "rejected"):
                raise ServeError(
                    state.get("error") or f"job {job_id} {status}"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(f"timed out waiting for job {job_id}")
            time.sleep(poll_interval)

    def shutdown(self) -> dict:
        return self._request("/shutdown", payload={})
