"""Time/counter accounting invariants of the sweep and CEC flows.

The accounting model (docs/OBSERVABILITY.md):

* ``sat_time`` is owned by exactly ONE clock per query — the checker's on
  the serial path, the worker-local clock on the pooled path — and always
  equals ``sum(sat_time_per_attempt)``.
* ``sat_phase_time`` is the coordinator's wall window; it is never folded
  into ``sat_time`` (the historical CEC fallback double count).
* Every stats window closes on every exit path: expired deadline, solver
  exception, worker death.
"""

import pytest

from repro.core.strategies import factory, make_generator
from repro.runtime import Budget
from repro.sat.solver import SatResult
from repro.sweep import SweepConfig, SweepEngine, check_equivalence
from repro.sweep.checker import PairChecker
from tests.conftest import random_network
from tests.runtime.conftest import parity_pair_network
from tests.sweep.test_parallel import duplicated_network


def run_engine(net, jobs, **overrides):
    config = SweepConfig(seed=11, jobs=jobs, **overrides)
    generator = make_generator("RandS", net, seed=11)
    engine = SweepEngine(net, generator, config)
    return engine, engine.run()


def assert_one_timer_owner(metrics):
    """The core invariant: every attempt window charged exactly once."""
    assert metrics.sat_time == pytest.approx(
        sum(metrics.sat_time_per_attempt), abs=1e-9
    )


class TestSweepAccounting:
    def test_serial_sat_time_owned_by_checker(self):
        _, result = run_engine(duplicated_network(), jobs=1)
        metrics = result.metrics
        assert metrics.sat_calls > 0
        assert_one_timer_owner(metrics)
        assert metrics.worker_sat_time == 0.0  # no pool involved
        # The phase wall window strictly contains every checker window.
        assert metrics.sat_phase_time >= metrics.sat_time - 1e-9

    def test_parallel_sat_time_owned_by_worker_clocks(self):
        _, result = run_engine(duplicated_network(), jobs=2)
        metrics = result.metrics
        assert metrics.sat_calls > 0
        assert_one_timer_owner(metrics)
        # Fully-pooled run: every window came from a worker clock.
        assert metrics.sat_time == pytest.approx(
            metrics.worker_sat_time, abs=1e-9
        )
        assert metrics.sat_phase_time > 0.0

    def test_escalation_rungs_sum_to_sat_time(self):
        net = parity_pair_network(n=10, pairs=2)
        for jobs in (1, 2):
            config = SweepConfig(
                seed=3,
                sat_conflict_limit=100,
                escalation_factor=4,
                max_escalations=2,
                jobs=jobs,
            )
            result = SweepEngine(net, None, config).run()
            assert result.metrics.escalations > 0
            assert len(result.metrics.sat_time_per_attempt) > 1
            assert_one_timer_owner(result.metrics)

    def test_integer_counters_identical_across_worker_counts(self):
        net = duplicated_network()
        snapshots = {}
        for jobs in (2, 4):
            engine, result = run_engine(net, jobs=jobs)
            assert_one_timer_owner(result.metrics)
            snapshots[jobs] = {
                k: v
                for k, v in engine.registry.as_dict().items()
                if not k.endswith("_s")
            }
        assert snapshots[2] == snapshots[4]

    def test_serial_and_parallel_agree_on_merge_counters(self):
        net = duplicated_network()
        _, serial = run_engine(net, jobs=1)
        _, parallel = run_engine(net, jobs=4)
        assert serial.metrics.proven == parallel.metrics.proven
        assert serial.metrics.cost_history == parallel.metrics.cost_history

    def test_killed_worker_is_retried_and_accounting_survives(self):
        net = duplicated_network()
        _, clean = run_engine(net, jobs=2)
        target = clean.equivalences[0][:2]
        engine, chaotic = run_engine(net, jobs=2, chaos_kill_pair=target)
        metrics = chaotic.metrics
        # Supervision re-dispatches the lost pair: a real verdict, no
        # degradation, one absorbed worker death.
        assert metrics.degraded_pairs == 0
        assert metrics.worker_failures == 1
        assert metrics.proven == clean.metrics.proven
        assert engine.registry.as_dict().get("pool.pairs_redispatched") == 1
        assert_one_timer_owner(metrics)

    def test_exhausted_retry_budget_degrades_and_accounting_survives(self):
        net = duplicated_network()
        _, clean = run_engine(net, jobs=2)
        target = clean.equivalences[0][:2]
        _, chaotic = run_engine(
            net, jobs=2, chaos_kill_pair=target,
            chaos_kill_limit=None, pair_retry_limit=0,
        )
        metrics = chaotic.metrics
        assert metrics.degraded_pairs >= 1
        assert metrics.worker_failures == 1
        assert_one_timer_owner(metrics)

    def test_registry_mirrors_metrics(self):
        engine, result = run_engine(duplicated_network(), jobs=1)
        metrics = result.metrics
        snapshot = engine.registry.as_dict()
        assert snapshot["sweep.sat_calls"] == metrics.sat_calls
        assert snapshot["sweep.proven"] == metrics.proven
        assert snapshot["sweep.sat_time.total_s"] == pytest.approx(
            metrics.sat_time
        )
        assert snapshot["sweep.sim_time.total_s"] == pytest.approx(
            metrics.sim_time
        )
        # Component stats surfaced through the same registry.
        assert snapshot["sim.batches"] > 0
        assert snapshot["sat.conflicts_per_call.bucket_count"] == (
            metrics.sat_calls
        )


class TestGenerationAccounting:
    """Batch-boundary accounting for the guided phase.

    Each ``generate()`` wall window is appended to ``generation_times``
    and charged to ``simgen_time`` exactly once, so
    ``simgen_time == sum(generation_times)`` holds on every backend and
    at every pool width (generation always runs coordinator-side; jobs
    only widen the SAT pool)."""

    def run_simgen(self, jobs, backend):
        net = duplicated_network()
        config = SweepConfig(seed=11, jobs=jobs)
        generator = make_generator(
            "AI+DC+MFFC", net, seed=11, simgen_backend=backend
        )
        engine = SweepEngine(net, generator, config)
        return engine, engine.run()

    @pytest.mark.parametrize("jobs", (1, 4))
    def test_batch_simgen_time_is_sum_of_generation_windows(self, jobs):
        _, result = self.run_simgen(jobs, backend="batch")
        metrics = result.metrics
        assert metrics.generation_times  # the guided phase ran
        assert metrics.simgen_time == pytest.approx(
            sum(metrics.generation_times), abs=1e-9
        )
        # One window per guided iteration, each contained in that
        # iteration's wall window (the remainder is sim_time's share).
        assert len(metrics.generation_times) == len(metrics.iteration_times)
        for gen_s, iter_s in zip(
            metrics.generation_times, metrics.iteration_times
        ):
            assert 0.0 <= gen_s <= iter_s + 1e-9

    @pytest.mark.parametrize("backend", ("batch", "compiled", "reference"))
    def test_invariant_holds_on_every_backend(self, backend):
        _, result = self.run_simgen(1, backend=backend)
        metrics = result.metrics
        assert metrics.generation_times
        assert metrics.simgen_time == pytest.approx(
            sum(metrics.generation_times), abs=1e-9
        )

    def test_batch_counters_surface_in_registry(self):
        engine, _ = self.run_simgen(1, backend="batch")
        snapshot = engine.registry.as_dict()
        assert snapshot["simgen.batch.lane_attempts"] > 0
        assert snapshot["simgen.batch.batch_flushes"] > 0
        # The lane-occupancy list drains into the histogram at publish
        # time, so repeated publishes never double-count a flush.
        assert snapshot["simgen.batch.lanes_active.bucket_count"] > 0
        assert engine.generator.batch.lane_occupancy == []


class TestCecAccounting:
    def check(self, jobs):
        golden = random_network(seed=5, num_inputs=5, num_gates=20)
        revised = random_network(seed=6, num_inputs=5, num_gates=20)
        return check_equivalence(
            golden,
            revised,
            generator_factory=factory("RandS"),
            config=SweepConfig(seed=7, jobs=jobs),
        )

    def test_serial_fallback_single_timer_owner(self):
        result = self.check(jobs=1)
        assert_one_timer_owner(result.metrics)

    def test_pooled_fallback_never_double_counts(self):
        """Satellite fix: the CEC fallback batch adds its wall window to
        ``sat_phase_time`` ONLY; worker seconds land in ``sat_time`` once,
        via ``charge_attempt`` — historically both were added to
        ``sat_time``, double-counting every pooled fallback miter."""
        result = self.check(jobs=2)
        metrics = result.metrics
        assert_one_timer_owner(metrics)
        assert metrics.sat_time == pytest.approx(
            metrics.worker_sat_time, abs=1e-9
        )

    def test_serial_and_pooled_cec_count_same_calls(self):
        serial, pooled = self.check(jobs=1), self.check(jobs=2)
        assert serial.verdict == pooled.verdict
        assert serial.metrics.sat_calls == pooled.metrics.sat_calls
        assert len(serial.metrics.sat_time_per_attempt) == len(
            pooled.metrics.sat_time_per_attempt
        )


class TestWindowClosure:
    def test_expired_budget_still_closes_stats_window(self):
        net = random_network(seed=2, num_inputs=4, num_gates=10)
        checker = PairChecker(net, budget=Budget(seconds=0))
        nodes = [n.uid for n in net.gates()]
        result, vector = checker.check(nodes[0], nodes[1])
        assert result is SatResult.UNKNOWN and vector is None
        assert checker.stats.calls == 1
        assert checker.stats.unknown == 1
        assert checker.stats.sat_time > 0.0

    def test_solver_crash_still_closes_stats_window(self):
        class BoomSolver:
            def add_cnf(self, cnf):
                pass

            def add_clause(self, clause):
                pass

            def solve(self, *args, **kwargs):
                raise RuntimeError("hard solver fault")

        net = random_network(seed=2, num_inputs=4, num_gates=10)
        checker = PairChecker(
            net, incremental=False, solver_factory=BoomSolver
        )
        nodes = [n.uid for n in net.gates()]
        with pytest.raises(RuntimeError):
            checker.check(nodes[0], nodes[1])
        # The window closed on the exception path: the aborted query is an
        # UNKNOWN call, not a leaked half-open timer.
        assert checker.stats.calls == 1
        assert checker.stats.unknown == 1
        assert checker.stats.sat_time > 0.0
