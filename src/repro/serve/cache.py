"""Signature-keyed verdict/artifact cache shared across service jobs.

The serving layer's production win: equivalence verdicts are *content
addressed*.  :mod:`repro.runtime.journal` already keys every verdict by
the structural signatures of the pair's cones
(:func:`repro.transforms.strash.node_signatures`), and journal-active
runs force query-pure SAT so a verdict — including its counterexample
model and conflict count — is a pure function of cone structure.  That
makes verdicts safely shareable **across jobs and across networks**: a
re-submitted netlist (or a lightly edited one) replays cached verdicts
for every untouched cone and solves only the delta.

Two classes:

* :class:`VerdictCache` — the daemon-wide store.  Thread-safe, bounded
  (LRU by bytes), optionally *journal-backed*: with a ``path`` every
  insert is durably appended using the same CRC-framed line format as
  :class:`~repro.runtime.journal.VerdictJournal` (plus a ``namespace``
  record binding the configuration fingerprint), and a restarted daemon
  reloads its cache warm.

* :class:`CacheSession` — a per-job adapter exposing the
  ``VerdictJournal`` interface (``bind`` / ``lookup`` / ``record`` /
  ``consume_stats``), so :class:`~repro.sweep.engine.SweepEngine` and the
  CEC flow plug into the cache with **zero engine changes**: replayed
  verdicts are byte-identical to fresh ones because they travel the same
  replay path PR 7 proved byte-identical for ``--resume``.

Cache keys
----------

``(fingerprint, sig_a, sig_b, complemented, limit)`` where
``fingerprint`` is the canonical JSON of the trajectory-determining
config slice (:func:`repro.runtime.journal.config_fingerprint`) and the
signatures come from strash.  Counterexample vectors are stored
positionally (PI-list index), which transfers across networks: a
signature match implies the cone reads the same PI *positions* in any
network that produces it (PI signatures hash their interface position).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Optional

from repro.errors import JournalError
from repro.network.network import Network
from repro.runtime.atomicio import _fsync_directory
from repro.runtime.journal import (
    ReplayRecord,
    _encode_line,
    _parse_line,
)
from repro.sat.solver import SatResult
from repro.simulation.patterns import InputVector
from repro.transforms.strash import node_signatures

#: Store format version (independent of the per-run journal version).
CACHE_VERSION = 1

#: Default in-memory bound: 64 MiB of encoded verdict lines.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


def fingerprint_key(fingerprint: dict) -> str:
    """Canonical string key of a configuration fingerprint."""
    return json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))


class VerdictCache:
    """Daemon-wide verdict store: thread-safe, byte-bounded, durable.

    Args:
        max_bytes: Eviction threshold over the summed encoded-line sizes
            of resident entries (LRU order; hits re-insert).
        path: Optional backing file.  Existing records are loaded on
            construction (a torn final line — daemon killed mid-append —
            is truncated, like the verdict journal's recovery); every
            later insert is appended.  Appends are *not* fsync'd per
            record: the cache is a performance layer, losing a tail
            costs re-solving, never correctness.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        path: Optional[str] = None,
    ):
        self._lock = threading.Lock()
        self._max_bytes = int(max_bytes)
        #: (fp_key, sig_a, sig_b, complemented, limit) -> payload dict.
        #: Insertion order doubles as LRU order (hits re-insert).
        self._entries: dict[tuple, dict] = {}
        #: Per-entry encoded size, summed into ``bytes``.
        self._sizes: dict[tuple, int] = {}
        self._bytes = 0
        #: fp_key -> namespace id already persisted (durable mode).
        self._namespaces: dict[str, int] = {}
        self._stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "inserts": 0,
            "loaded": 0,
        }
        self._folded: dict[str, int] = {}
        self._path = None if path is None else os.fspath(path)
        self._handle = None
        if self._path is not None:
            self._load()
            self._handle = open(self._path, "ab")

    # ------------------------------------------------------------------
    # Durable backing file
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self._path):
            return
        with open(self._path, "rb") as handle:
            data = handle.read()
        offset = 0
        good_end = 0
        torn = False
        ns_fp: dict[int, str] = {}
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                torn = True
                break
            payload = _parse_line(data[offset:newline])
            if payload is None:
                # Unlike a verdict journal, *any* damage just stops the
                # load: the cache is advisory, so the good prefix is kept
                # and the damaged tail dropped.
                torn = True
                break
            offset = newline + 1
            good_end = offset
            kind = payload.get("kind")
            if kind == "header":
                if payload.get("version") != CACHE_VERSION:
                    raise JournalError(
                        f"verdict cache {self._path}: version "
                        f"{payload.get('version')!r} (this build writes "
                        f"{CACHE_VERSION})"
                    )
            elif kind == "namespace":
                fp_key = fingerprint_key(payload["fingerprint"])
                ns_fp[int(payload["id"])] = fp_key
                self._namespaces[fp_key] = int(payload["id"])
            elif kind == "verdict":
                fp_key = ns_fp.get(int(payload.get("ns", -1)))
                if fp_key is None:
                    continue
                # Strip the file framing so a reloaded payload is equal
                # (and equal-sized) to a freshly inserted one.
                payload = {
                    k: v for k, v in payload.items() if k not in ("kind", "ns")
                }
                key = (
                    fp_key,
                    payload["a"],
                    payload["b"],
                    bool(payload["c"]),
                    payload["l"],
                )
                self._insert_locked(key, payload, persist=False)
                self._stats["loaded"] += 1
        if torn:
            with open(self._path, "r+b") as handle:
                handle.truncate(good_end)
        # Counters touched during load are bookkeeping, not traffic.
        self._stats["inserts"] = 0
        self._stats["evictions"] = 0

    def _persist(self, key: tuple, payload: dict) -> None:
        if self._handle is None:
            return
        fp_key = key[0]
        namespace = self._namespaces.get(fp_key)
        if namespace is None:
            namespace = len(self._namespaces)
            self._namespaces[fp_key] = namespace
            if namespace == 0 and self._handle.tell() == 0:
                self._handle.write(
                    _encode_line(
                        {"kind": "header", "version": CACHE_VERSION}
                    )
                )
            self._handle.write(
                _encode_line(
                    {
                        "kind": "namespace",
                        "id": namespace,
                        "fingerprint": json.loads(fp_key),
                    }
                )
            )
        record = dict(payload)
        record["kind"] = "verdict"
        record["ns"] = namespace
        self._handle.write(_encode_line(record))
        self._handle.flush()

    # ------------------------------------------------------------------
    # Store operations (all under the lock)
    # ------------------------------------------------------------------
    def _insert_locked(
        self, key: tuple, payload: dict, persist: bool = True
    ) -> bool:
        if key in self._entries:
            return False
        size = len(_encode_line(payload))
        while self._bytes + size > self._max_bytes and self._entries:
            victim = next(iter(self._entries))
            del self._entries[victim]
            self._bytes -= self._sizes.pop(victim)
            self._stats["evictions"] += 1
        self._entries[key] = payload
        self._sizes[key] = size
        self._bytes += size
        self._stats["inserts"] += 1
        if persist:
            self._persist(key, payload)
        return True

    def get(self, key: tuple) -> Optional[dict]:
        """The stored payload for a full cache key (LRU touch on hit)."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self._stats["misses"] += 1
                return None
            # LRU touch: re-insert so hot entries survive evictions.
            del self._entries[key]
            self._entries[key] = payload
            self._stats["hits"] += 1
            return payload

    def put(self, key: tuple, payload: dict) -> bool:
        """Insert one verdict payload (no-op if the key is resident)."""
        with self._lock:
            return self._insert_locked(key, payload)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Cumulative counters plus occupancy (``bytes`` / ``entries``)."""
        with self._lock:
            stats = dict(self._stats)
            stats["bytes"] = self._bytes
            stats["entries"] = len(self._entries)
            return stats

    def consume_stats(self) -> dict:
        """Counter deltas since the previous consume (registry folding).

        ``bytes`` and ``entries`` are gauges; their (possibly negative)
        deltas keep a registry counter tracking the current value.
        """
        with self._lock:
            current = dict(self._stats)
            current["bytes"] = self._bytes
            current["entries"] = len(self._entries)
        delta = {}
        for name, value in current.items():
            previous = self._folded.get(name, 0)
            if value != previous:
                delta[name] = value - previous
                self._folded[name] = value
        return delta

    def session(self) -> "CacheSession":
        """A fresh per-job adapter over this store."""
        return CacheSession(self)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                try:
                    os.fsync(self._handle.fileno())
                except OSError:  # pragma: no cover - teardown race
                    pass
                self._handle.close()
                self._handle = None
                _fsync_directory(os.path.dirname(self._path) or ".")

    def __enter__(self) -> "VerdictCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CacheSession:
    """Per-job view of a :class:`VerdictCache` with the journal interface.

    Passed as ``SweepConfig.journal``, which (a) forces query-pure SAT —
    the precondition for sound cross-job verdict sharing — and (b) routes
    every pair query through ``lookup`` / ``record`` on the engine's
    existing replay-partition paths (serial, pooled, escalation, CEC
    fallback).  Per-session counters separate this job's traffic from the
    store's lifetime totals.
    """

    def __init__(self, store: VerdictCache):
        self._store = store
        self._fp_key: Optional[str] = None
        self._signature: dict[int, int] = {}
        self._pis: list[int] = []
        self._pi_index: dict[int, int] = {}
        self._bound = False
        self._stats = {
            "appends": 0,
            "replayed_verdicts": 0,
            "misses": 0,
            "torn_tail_truncations": 0,
        }
        self._folded: dict[str, int] = {}

    # -- journal interface ---------------------------------------------
    def bind(self, network: Network, fingerprint: dict) -> None:
        self._fp_key = fingerprint_key(
            json.loads(json.dumps(fingerprint, sort_keys=True))
        )
        self._signature = node_signatures(network)
        self._pis = list(network.pis)
        self._pi_index = {pi: idx for idx, pi in enumerate(self._pis)}
        self._bound = True

    def _require_bound(self) -> None:
        if not self._bound:
            raise JournalError("cache session is not bound to a network yet")

    def _key(
        self, rep: int, member: int, complemented: bool, limit
    ) -> tuple:
        return (
            self._fp_key,
            self._signature[rep],
            self._signature[member],
            bool(complemented),
            limit,
        )

    def lookup(
        self, rep: int, member: int, complemented: bool, limit
    ) -> Optional[ReplayRecord]:
        self._require_bound()
        payload = self._store.get(self._key(rep, member, complemented, limit))
        if payload is None:
            self._stats["misses"] += 1
            return None
        vector = self._decode_vector(payload.get("v"))
        if vector is None and payload.get("v") is not None:
            # Positional decode failed against this network's PI list —
            # treat as a miss rather than replaying a wrong model.
            self._stats["misses"] += 1
            return None
        self._stats["replayed_verdicts"] += 1
        return ReplayRecord(
            outcome=SatResult(payload["o"]),
            vector=vector,
            conflicts=int(payload.get("cf", 0)),
            propagations=int(payload.get("pr", 0)),
            rung=int(payload.get("r", 0)),
        )

    def record(
        self,
        rep: int,
        member: int,
        complemented: bool,
        limit,
        outcome: SatResult,
        vector: Optional[InputVector],
        conflicts: int,
        propagations: int,
        rung: int = 0,
    ) -> bool:
        self._require_bound()
        key = self._key(rep, member, complemented, limit)
        payload = {
            "a": key[1],
            "b": key[2],
            "c": int(key[3]),
            "l": limit,
            "o": outcome.value,
            "v": self._encode_vector(vector),
            "cf": int(conflicts),
            "pr": int(propagations),
            "r": int(rung),
        }
        if self._store.put(key, payload):
            self._stats["appends"] += 1
            return True
        return False

    # -- vector codec (positional, as in VerdictJournal) ---------------
    def _encode_vector(self, vector: Optional[InputVector]):
        if vector is None:
            return None
        pairs = []
        for uid, bit in vector.values.items():
            index = self._pi_index.get(uid)
            if index is None:
                raise JournalError(
                    f"counterexample assigns non-PI node {uid}; "
                    "cannot cache it positionally"
                )
            pairs.append([index, int(bit)])
        pairs.sort()
        return pairs

    def _decode_vector(self, pairs) -> Optional[InputVector]:
        if pairs is None:
            return None
        values = {}
        for index, bit in pairs:
            if index >= len(self._pis):
                return None
            values[self._pis[index]] = int(bit)
        return InputVector(values)

    # -- stats + lifecycle ---------------------------------------------
    @property
    def stats(self) -> dict:
        return dict(self._stats)

    def consume_stats(self) -> dict:
        delta = {}
        for name, value in self._stats.items():
            previous = self._folded.get(name, 0)
            if value != previous:
                delta[name] = value - previous
                self._folded[name] = value
        return delta

    def close(self) -> None:
        """Sessions hold no resources; the store outlives them."""
