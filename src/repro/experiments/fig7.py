"""Figure 7: random simulation vs hybrid RandS→RevS / RandS→SimGen (§6.5).

For *apex2* and *cps* the paper traces Equation-5 cost and cumulative
runtime across simulation iterations for three runs:

1. pure random simulation,
2. random until the cost stagnates three consecutive iterations, then
   reverse simulation,
3. the same hand-over to SimGen.

Random escapes quickly but plateaus; the guided stages keep splitting at a
runtime premium — the argument for embedding SimGen in sweeping tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.benchgen.suite import FIG7_BENCHMARKS
from repro.core.hybrid import HybridGenerator
from repro.core.strategies import SIMGEN, make_generator
from repro.core.random_gen import RandomGenerator
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_iteration_trace
from repro.experiments.runner import ExperimentRunner
from repro.sweep.engine import SweepEngine


@dataclass(slots=True)
class Fig7Trace:
    """One line of the figure: per-iteration cost and cumulative time."""

    label: str
    costs: list[int] = field(default_factory=list)
    cumulative_time: list[float] = field(default_factory=list)
    switch_iteration: Optional[int] = None


@dataclass(slots=True)
class Fig7Result:
    """Traces for every (benchmark, run-kind) combination."""

    traces: dict[str, list[Fig7Trace]] = field(default_factory=dict)
    iterations: int = 0

    def render(self) -> str:
        blocks = []
        for benchmark, runs in self.traces.items():
            cost_lines = {t.label: t.costs for t in runs}
            blocks.append(
                format_iteration_trace(
                    f"Figure 7 ({benchmark}): cost per iteration",
                    cost_lines,
                )
            )
            time_lines = {}
            for t in runs:
                time_lines[t.label] = " ".join(
                    f"{v:6.2f}" for v in t.cumulative_time
                )
            blocks.append(f"  cumulative runtime (s):")
            for label, rendered in time_lines.items():
                blocks.append(f"  {label:24s} {rendered}")
            for t in runs:
                if t.switch_iteration is not None:
                    blocks.append(
                        f"  {t.label} switched to guided mode at iteration "
                        f"{t.switch_iteration}"
                    )
        return "\n".join(blocks)


def _trace(engine: SweepEngine, label: str) -> Fig7Trace:
    classes, metrics = engine.run_simulation_phase()
    cumulative = []
    total = 0.0
    for t in metrics.iteration_times:
        total += t
        cumulative.append(total)
    return Fig7Trace(
        label=label,
        costs=list(metrics.cost_history),
        cumulative_time=cumulative,
    )


def run_fig7(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ExperimentRunner] = None,
    benchmarks: tuple[str, ...] = FIG7_BENCHMARKS,
    iterations: int = 30,
    patience: int = 3,
    verbose: bool = False,
) -> Fig7Result:
    """Execute the Figure-7 iteration study."""
    config = config or ExperimentConfig()
    runner = runner or ExperimentRunner(config)
    result = Fig7Result(iterations=iterations)
    sweep_cfg = runner.sweep_config()
    sweep_cfg.iterations = iterations
    for benchmark in benchmarks:
        network = runner.instance(benchmark)
        runs = []
        # 1. Pure random simulation.
        rand = RandomGenerator(network, config.seed)
        runs.append(
            _trace(SweepEngine(network, rand, sweep_cfg), "RandS")
        )
        # 2./3. Random, then hand over to the guided generator.
        for label, guided_name in (("RandS->RevS", "RevS"), ("RandS->SimGen", SIMGEN)):
            guided = make_generator(
                guided_name,
                network,
                seed=config.seed,
                vectors_per_iteration=config.vectors_per_iteration,
                max_targets=config.max_targets,
            )
            hybrid = HybridGenerator(
                network, guided, seed=config.seed, patience=patience
            )
            trace = _trace(SweepEngine(network, hybrid, sweep_cfg), label)
            if hybrid.switched:
                # Recover the switch point from the cost plateau length.
                trace.switch_iteration = _find_switch(trace.costs, patience)
            runs.append(trace)
            if verbose:
                print(f"  {benchmark} {label}: final cost {trace.costs[-1]}")
        result.traces[benchmark] = runs
    return result


def _find_switch(costs: list[int], patience: int) -> Optional[int]:
    """First iteration index after a ``patience``-long cost plateau."""
    stagnant = 0
    for i in range(1, len(costs)):
        if costs[i] == costs[i - 1]:
            stagnant += 1
        else:
            stagnant = 0
        if stagnant >= patience:
            return i
    return None
