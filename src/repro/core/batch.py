"""Batch SimGen backend: lane-parallel guided-vector generation.

The compiled kernel (PR 5) made one guided vector cheap; this module makes
*batches* of them cheap.  Two independent ideas compose, and it is worth
being precise about why the obvious third one is off the table:

**Why decisions stay scalar.**  Algorithm 1's attempts are hard-serialized
on one ``random.Random``: attempt ``i+1``'s target sample, every roulette
draw inside it, and its free-PI completion all read RNG state that only
exists after attempt ``i`` has fully finished.  Advancing 64 *generation
fixpoints* in true lockstep would have to interleave those draws and so
cannot be bit-identical to the scalar kernel — and bit-identity is the
acceptance gate of every backend seam in this repository.  The lane
dimension therefore lives where the trajectory is already width-agnostic:

* **the inner loop drops to C** — :mod:`repro.core` ships
  ``_simgencore.c``, a resumable Algorithm-1 core that retires whole
  targets per call (propagate fixpoints, transition-table resolution,
  candidate picks, row commits, trail reverts) and *bounces* back to
  Python only at the single point that must stay there for bit-identity:
  RNG draws.  The packed per-gate state, worklist order, lazy table
  resolution, and every counter bump replicate
  :class:`~repro.core.compiled.CompiledSimGenKernel` exactly;

* **verification becomes 64-wide** — instead of simulating each candidate
  vector alone (``run_words`` with width 1), finished attempts park in
  lanes and one simulator call verifies up to 64 of them (bitwise tape
  ops make bit ``p`` of a 64-wide run equal the 1-wide run of vector
  ``p``).  Because the Algorithm-1 loop needs each vector's skip verdict
  before it knows whether to *stop*, parked lanes are **speculative**:
  the driver checkpoints the RNG/rotation/report/stats state before every
  attempt, and when a flush reveals that the scalar loop would have
  stopped earlier, it rewinds to that attempt's checkpoint — the RNG is
  restored with ``setstate``, over-speculated reports are dropped, and
  shared stats dicts are rolled back, so the observable trajectory is
  byte-identical to ``--simgen-backend compiled``.

Lanes that resolve without simulation (the skip criterion already failed
on the claimed values) mask out before the flush and are counted in
``simgen.batch.masked_lane_steps``; per-flush live-lane widths feed the
``simgen.batch.lanes_active`` histogram.

When no C toolchain is available (or ``REPRO_SIMGENCORE=python``), the
driver keeps the speculative 64-wide verification but runs each attempt
on the pure-Python compiled kernel — identical results, slower.
"""

from __future__ import annotations

import ctypes
import os
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import repro.core.compiled as _compiled_mod
from repro.core.compiled import CompiledSimGenGenerator, _TransitionTable
from repro.core.decision import DEFAULT_ALPHA, DEFAULT_BETA, DecisionStrategy
from repro.core.generator import GenerationReport
from repro.core.implication import ImplicationStrategy
from repro.core.outgold import (
    OutgoldStrategy,
    alternating_outgold,
    level_alternating_outgold,
    select_targets,
)
from repro.errors import GenerationError
from repro.network.network import Network
from repro.runtime.cbuild import CoreLoader
from repro.simulation.patterns import InputVector

#: Verification lane width — one 64-bit simulator word.
LANES = 64

#: Largest gate arity the C core compiles transition tables for (the
#: ``fref``/``dref`` arrays are ``3 * 4**k`` ints per distinct function).
#: Networks above it fall back to the pure-Python attempt path.
SG_MAX_K = 8

# Status codes of the C core (keep in sync with _simgencore.c).
_DONE = 0
_CONFLICT = 1
_ASSIGN_CONFLICT = 2
_ALREADY = 3
_NEED_RNG = 4

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_simgencore.c")


def _configure(lib: ctypes.CDLL) -> None:
    """Set argument/return types on the loaded core."""
    i32, i64 = ctypes.c_int32, ctypes.c_int64
    p_i32 = ctypes.POINTER(i32)
    p_i64 = ctypes.POINTER(i64)
    p_i8 = ctypes.POINTER(ctypes.c_int8)
    lib.sg_new.argtypes = [i32]
    lib.sg_new.restype = ctypes.c_void_p
    lib.sg_free.argtypes = [ctypes.c_void_p]
    lib.sg_free.restype = None
    lib.sg_add_table.argtypes = [
        ctypes.c_void_p, i32, i32, i32, p_i64, p_i64, p_i8,
    ]
    lib.sg_add_table.restype = i32
    lib.sg_set_node.argtypes = [ctypes.c_void_p, i32, i32, i32, p_i32, i32, p_i32, i32]
    lib.sg_set_node.restype = i32
    lib.sg_finalize.argtypes = [ctypes.c_void_p]
    lib.sg_finalize.restype = i32
    lib.sg_set_mailbox.argtypes = [ctypes.c_void_p, p_i64, p_i32]
    lib.sg_set_mailbox.restype = None
    lib.sg_reset.argtypes = [ctypes.c_void_p]
    lib.sg_reset.restype = None
    lib.sg_read_trail.argtypes = [ctypes.c_void_p, p_i32, p_i8]
    lib.sg_read_trail.restype = i32
    lib.sg_read_values.argtypes = [ctypes.c_void_p, p_i32, i32, p_i8]
    lib.sg_read_values.restype = None
    lib.sg_read_trail_pis.argtypes = [ctypes.c_void_p, p_i32, p_i8]
    lib.sg_read_trail_pis.restype = i32
    lib.sg_counters.argtypes = [ctypes.c_void_p, p_i64]
    lib.sg_counters.restype = None
    lib.sg_start_target.argtypes = [ctypes.c_void_p, i32, i32]
    lib.sg_start_target.restype = i32
    lib.sg_resume_rng.argtypes = [ctypes.c_void_p, i32]
    lib.sg_resume_rng.restype = i32


_LOADER = CoreLoader(
    source_path=_SOURCE_PATH,
    cache_name="simgencore",
    env_var="REPRO_SIMGENCORE",
    configure=_configure,
    describe="compiled SimGen lane core",
)

_LIB = _LOADER.load()

#: "c" when the compiled lane core is active, "python" otherwise.
SIMGEN_CORE = "c" if _LIB is not None else "python"


class _SgCore:
    """ctypes wrapper around one ``_simgencore`` instance.

    Built from a :class:`CompiledSimGenKernel`'s already-lowered arrays, so
    the C core is structurally identical to the scalar kernel by
    construction (same slots, same examiner order, same shared transition
    tables).
    """

    __slots__ = (
        "_lib",
        "_handle",
        "tables",
        "info",
        "indices",
        "_trail_slots",
        "_trail_vals",
        "_counter_buf",
        "_last_counters",
    )

    def __init__(self, lib: ctypes.CDLL, kernel):
        n = len(kernel._uids)
        self._lib = lib
        self._handle = lib.sg_new(n)
        if not self._handle:
            raise MemoryError("sg_new failed")
        #: Shared Python tables by C table id (keeps the dedup map's
        #: ``id()`` keys stable while the core is being built).
        self.tables: list[_TransitionTable] = []
        table_ids: dict[int, int] = {}
        max_rows = 1
        i32, i64, i8 = ctypes.c_int32, ctypes.c_int64, ctypes.c_int8
        for slot in range(n):
            table = kernel._tables[slot]
            if table is None:
                tid, k, fan_arr = -1, 0, None
            else:
                tid = table_ids.get(id(table))
                if tid is None:
                    rows = table.rows
                    n_rows = len(rows)
                    tid = lib.sg_add_table(
                        self._handle,
                        table.k,
                        n_rows,
                        int(table.advanced),
                        (i64 * n_rows)(*[r[0] for r in rows]),
                        (i64 * n_rows)(*[r[1] for r in rows]),
                        (i8 * n_rows)(*[r[2] for r in rows]),
                    )
                    if tid < 0:
                        raise GenerationError("simgen core rejected a table")
                    table_ids[id(table)] = tid
                    self.tables.append(table)
                    max_rows = max(max_rows, n_rows)
                fanins = kernel._fanins[slot]
                k = len(fanins)
                fan_arr = (i32 * k)(*fanins)
            exam = kernel._examiners[slot]
            exam_arr = (i32 * max(1, len(exam)))(*exam)
            if lib.sg_set_node(
                self._handle, slot, tid, int(kernel._is_pi[slot]),
                fan_arr, k, exam_arr, len(exam),
            ) != 0:
                raise GenerationError("simgen core rejected a node")
        if lib.sg_finalize(self._handle) != 0:
            raise GenerationError("simgen core finalize failed")
        #: Bounce mailboxes, written by C and read here without extra calls.
        self.info = (i64 * 8)()
        self.indices = (i32 * max_rows)()
        lib.sg_set_mailbox(self._handle, self.info, self.indices)
        self._trail_slots = (i32 * n)()
        self._trail_vals = (i8 * n)()
        self._counter_buf = (i64 * 8)()
        self._last_counters = [0] * 8

    def __del__(self):  # pragma: no cover - interpreter teardown order
        handle = getattr(self, "_handle", None)
        lib = getattr(self, "_lib", None)
        if handle and lib is not None:
            try:
                lib.sg_free(handle)
            except (OSError, AttributeError, TypeError):
                pass

    # -- driving ------------------------------------------------------
    def reset(self) -> None:
        self._lib.sg_reset(self._handle)

    def start_target(self, slot: int, gold: int) -> int:
        return self._lib.sg_start_target(self._handle, slot, gold)

    def resume_rng(self, chosen_row: int) -> int:
        return self._lib.sg_resume_rng(self._handle, chosen_row)

    # -- reads --------------------------------------------------------
    def read_trail(self) -> tuple[list[int], list[int]]:
        n = self._lib.sg_read_trail(
            self._handle, self._trail_slots, self._trail_vals
        )
        return self._trail_slots[:n], self._trail_vals[:n]

    def read_trail_pis(self) -> tuple[list[int], list[int]]:
        """Assigned-PI trail entries only (slots, values), trail order."""
        n = self._lib.sg_read_trail_pis(
            self._handle, self._trail_slots, self._trail_vals
        )
        return self._trail_slots[:n], self._trail_vals[:n]

    def values_of(self, slots: list[int]) -> list[int]:
        """Current values of the given slots (-1 when unassigned)."""
        n = len(slots)
        buf = self._trail_slots
        buf[:n] = slots
        self._lib.sg_read_values(self._handle, buf, n, self._trail_vals)
        return self._trail_vals[:n]

    def counter_deltas(self) -> list[int]:
        """Monotonic core counters since the previous read."""
        self._lib.sg_counters(self._handle, self._counter_buf)
        now = list(self._counter_buf)
        last = self._last_counters
        self._last_counters = now
        return [now[i] - last[i] for i in range(8)]


@dataclass(slots=True)
class _Checkpoint:
    """Everything a speculative rewind must restore."""

    rng_state: object
    rotation: int
    n_reports: int
    impl: dict
    dec: dict
    kernel: dict


@dataclass(slots=True)
class _PendingAttempt:
    """One speculative attempt parked in a verification lane."""

    report: GenerationReport
    chk: _Checkpoint
    needs_sim: bool
    outgold: Optional[Mapping[int, int]]
    full: Optional[InputVector]


class _BatchTelemetry:
    """Counters published as ``simgen.batch.*`` (engine attr loop)."""

    __slots__ = ("stats", "lane_occupancy")

    def __init__(self):
        self.stats = {
            "lane_attempts": 0,
            "masked_lane_steps": 0,
            "batch_flushes": 0,
            "speculative_rewinds": 0,
            "discarded_attempts": 0,
        }
        #: Per-flush live-lane widths (drained into the
        #: ``simgen.batch.lanes_active`` histogram at publish time).
        self.lane_occupancy: list[int] = []


class BatchSimGenGenerator(CompiledSimGenGenerator):
    """SimGen with lane-batched verification and a C Algorithm-1 core.

    A drop-in for :class:`CompiledSimGenGenerator`: same constructor, same
    RNG order, bit-identical vectors/reports/stats — the differential
    suite in ``tests/core/test_batch_kernel.py`` enforces it per lane.
    """

    backend = "batch"
    LANES = LANES

    def __init__(
        self,
        network: Network,
        seed: int = 0,
        implication_strategy: ImplicationStrategy = ImplicationStrategy.ADVANCED,
        decision_strategy: DecisionStrategy = DecisionStrategy.DC_MFFC,
        vectors_per_iteration: int = 4,
        max_targets: int = 8,
        outgold_strategy: OutgoldStrategy = alternating_outgold,
        alpha: float = DEFAULT_ALPHA,
        beta: float = DEFAULT_BETA,
    ):
        super().__init__(
            network,
            seed,
            implication_strategy,
            decision_strategy,
            vectors_per_iteration,
            max_targets,
            outgold_strategy,
            alpha,
            beta,
        )
        self.batch = _BatchTelemetry()
        #: Speculation needs every RNG consumer of the attempt loop to be
        #: rewindable through ``self.rng``; the stateless builtin outgold
        #: strategies are, arbitrary stateful callables may not be.
        self._speculate = outgold_strategy in (
            alternating_outgold,
            level_alternating_outgold,
        )
        self._core: Optional[_SgCore] = None
        if _LIB is not None and self._core_supported():
            try:
                self._core = _SgCore(_LIB, self.kernel)
            except (GenerationError, MemoryError):
                self._core = None
        #: uid -> (level, uid) sort key, built lazily (see _order_targets).
        self._order_key: Optional[dict[int, tuple[int, int]]] = None

    def _order_targets(self, outgold: Mapping[int, int]) -> list[int]:
        """Algorithm 1 line 2, with the sort keys precomputed once.

        Identical ordering to the scalar ``_order_targets`` — same
        ``(level, uid)`` tuples, same ``reverse`` sort — but the per-call
        lambda/level lookups collapse to one dict ``__getitem__``.
        """
        keys = self._order_key
        if keys is None:
            level = self.network.level
            keys = {uid: (level(uid), uid) for uid in self.kernel._uids}
            self._order_key = keys
        return sorted(outgold, key=keys.__getitem__, reverse=True)

    def _core_supported(self) -> bool:
        kernel = self.kernel
        return all(
            fanins is None or len(fanins) <= SG_MAX_K
            for fanins in kernel._fanins
        )

    # ------------------------------------------------------------------
    # Speculative generate loop (the scalar loop, lanes ahead)
    # ------------------------------------------------------------------
    def generate(self, classes: Sequence[Sequence[int]]) -> list[InputVector]:
        if not self._speculate:
            return super().generate(classes)
        splittable = [c for c in classes if len(c) >= 2]
        splittable.sort(key=len, reverse=True)
        if not splittable:
            return []
        vpi = self.vectors_per_iteration
        vectors: list[InputVector] = []
        attempts = 0
        max_attempts = max(vpi * 4, len(splittable))
        pending: list[_PendingAttempt] = []
        sim_count = 0
        #: Lanes to fill before a flush: exactly the vectors still needed,
        #: doubling (up to LANES) after a flush that made no progress so
        #: high-skip workloads amortize the simulator call.
        flush_width = max(vpi, 1)
        stats = self.batch.stats
        while len(vectors) < vpi and attempts < max_attempts:
            chk = self._checkpoint()
            cls = splittable[self._rotation % len(splittable)]
            self._rotation += 1
            attempts += 1
            targets = select_targets(cls, self.max_targets, self.rng)
            outgold = self.outgold_strategy(self.network, targets)
            rec = self._attempt(outgold, chk)
            self.reports.append(rec.report)
            pending.append(rec)
            stats["lane_attempts"] += 1
            if rec.needs_sim:
                sim_count += 1
            else:
                # Lane retired before the lockstep verify (the skip
                # criterion already failed on the claimed values).
                stats["masked_lane_steps"] += 1
            if sim_count >= flush_width:
                progress, discarded = self._flush(pending, vectors)
                attempts -= discarded
                pending = []
                sim_count = 0
                if progress:
                    flush_width = max(vpi - len(vectors), 1)
                else:
                    flush_width = min(flush_width * 2, LANES)
        if pending:
            progress, discarded = self._flush(pending, vectors)
            attempts -= discarded
        return vectors

    def _checkpoint(self) -> _Checkpoint:
        return _Checkpoint(
            rng_state=self.rng.getstate(),
            rotation=self._rotation,
            n_reports=len(self.reports),
            impl=dict(self.implication.stats),
            dec=dict(self.decision.stats),
            kernel=dict(self.kernel.stats),
        )

    def _rewind(self, chk: _Checkpoint) -> None:
        """Undo over-speculated attempts: the scalar loop stopped earlier."""
        self.rng.setstate(chk.rng_state)
        self._rotation = chk.rotation
        del self.reports[chk.n_reports:]
        # The stats dicts are shared with the reference engines and the
        # kernel: restore them in place.
        self.implication.stats.update(chk.impl)
        self.decision.stats.update(chk.dec)
        self.kernel.stats.update(chk.kernel)

    # ------------------------------------------------------------------
    # One attempt = Algorithm 1 over all targets + inline skip pre-check
    # ------------------------------------------------------------------
    def _attempt(
        self, outgold: Mapping[int, int], chk: _Checkpoint
    ) -> _PendingAttempt:
        report = GenerationReport(vector=None)
        core = self._core
        if core is not None:
            core.reset()
            for target in self._order_targets(outgold):
                self._run_target_core(target, outgold[target], report)
            self._fold_core_counters()
            slot_of = self.kernel._slot_of
            target_vals = core.values_of([slot_of[uid] for uid in outgold])
            # Unassigned reads back as -1, which never equals a gold bit —
            # exactly `assigned.get(uid) == gold` on the scalar path.
            claimed = [
                uid
                for uid, value in zip(outgold, target_vals)
                if value == outgold[uid]
            ]
            uids = self.kernel._uids
            pi_slots, pi_trail_vals = core.read_trail_pis()
            pi_vals = {
                uids[slot]: value
                for slot, value in zip(pi_slots, pi_trail_vals)
            }
        else:
            kernel = self.kernel
            kernel.reset()
            for target in self._order_targets(outgold):
                self._process_target_compiled(target, outgold[target], report)
            claimed = [
                uid for uid, gold in outgold.items()
                if kernel.value(uid) == gold
            ]
            pi_vals = kernel.pi_values()
        if {outgold[uid] for uid in claimed} != {0, 1}:
            report.vector = None
            report.skipped = True
            report.survivors = claimed
            return _PendingAttempt(report, chk, False, None, None)
        candidate = InputVector(pi_vals)
        full = candidate.completed(self.network.pis, self.rng)
        return _PendingAttempt(report, chk, True, outgold, full)

    def _run_target_core(
        self, target: int, gold: int, report: GenerationReport
    ) -> None:
        core = self._core
        kernel = self.kernel
        # Direct library calls: the wrapper frames cost more than the
        # calls themselves at ~3k bounces per generate().
        handle = core._handle
        status = core._lib.sg_start_target(
            handle, kernel._slot_of[target], gold
        )
        rng = self.rng
        info = core.info
        indices_buf = core.indices
        resume = core._lib.sg_resume_rng
        randrange = rng.randrange
        random_draw = rng.random
        all_weights = kernel._weights
        random_rows = self.decision.strategy is DecisionStrategy.RANDOM
        while status == _NEED_RNG:
            slot, index, count = info[0], info[1], info[2]
            if random_rows:
                chosen = rng.choice(indices_buf[:count])
            else:
                # Exact twin of CompiledSimGenKernel.decide's scored
                # path: same cached weights, same float-op order, same
                # roulette — the draws must be bit-equal.
                cache = all_weights[slot]
                weights = cache.get(index)
                if weights is None:
                    table_priorities = kernel._priorities[slot]
                    priorities = [
                        table_priorities[i] for i in indices_buf[:count]
                    ]
                    low = min(priorities)
                    span = max(priorities) - low
                    floor = 0.1 + 0.05 * span
                    weights = [p - low + floor for p in priorities]
                    kernel._weights_entries += 1
                    # Module attribute read, not an import-time bind:
                    # the cap is patchable exactly like the scalar path.
                    if (
                        kernel._weights_entries
                        > _compiled_mod.WEIGHTS_CACHE_CAP
                    ):
                        kernel._evict_weights()
                    cache[index] = weights
                # roulette_select inlined: every cached weight carries the
                # `0.1 + 0.05 * span` floor, so its 1e-9 epsilon clamp is
                # the identity and the draw sequence is unchanged.
                top = max(weights)
                while True:
                    j = randrange(count)
                    if random_draw() * top <= weights[j]:
                        chosen = indices_buf[j]
                        break
            status = resume(handle, chosen)
        if status < 0:
            raise GenerationError("simgen lane core protocol error")
        report.implications += info[3]
        report.decisions += info[4]
        if status in (_CONFLICT, _ASSIGN_CONFLICT):
            report.conflicts += 1

    def _fold_core_counters(self) -> None:
        """Fold the C core's counter deltas into the shared stats dicts.

        Keeps ``simgen.implication.* / simgen.decision.* /
        simgen.kernel.*`` backend-invariant: the registry sees one stream
        whether the attempt ran in C or in Python.
        """
        d = self._core.counter_deltas()
        impl = self.implication.stats
        impl["propagate_calls"] += d[0]
        impl["examinations"] += d[1]
        impl["forced_assignments"] += d[2]
        impl["conflicts"] += d[3]
        dec = self.decision.stats
        dec["decisions"] += d[4]
        dec["conflicts"] += d[5]
        dec["rows_committed"] += d[6]
        self.kernel.stats["reverted_assignments"] += d[7]

    # ------------------------------------------------------------------
    # Flush: one wide simulator word resolves every parked lane
    # ------------------------------------------------------------------
    def _flush(
        self, pending: list[_PendingAttempt], vectors: list[InputVector]
    ) -> tuple[bool, int]:
        """Verify parked lanes, commit in order, rewind over-speculation.

        Returns ``(progress, discarded)``: whether any vector was
        committed, and how many speculative attempts were rolled back
        because the scalar loop would already have stopped.
        """
        vpi = self.vectors_per_iteration
        stats = self.batch.stats
        sims = [rec for rec in pending if rec.needs_sim]
        if sims:
            width = len(sims)
            words = {pi: 0 for pi in self.network.pis}
            for pos, rec in enumerate(sims):
                for pi, value in rec.full.values.items():
                    if value:
                        words[pi] |= 1 << pos
            values = self._verifier.run_words(words, width)
            stats["batch_flushes"] += 1
            self.batch.lane_occupancy.append(width)
            for pos, rec in enumerate(sims):
                report = rec.report
                report.survivors = [
                    uid
                    for uid, gold in rec.outgold.items()
                    if ((values[uid] >> pos) & 1) == gold
                ]
                gold_values = {rec.outgold[uid] for uid in report.survivors}
                if gold_values == {0, 1}:
                    report.vector = InputVector(dict(rec.full.values))
                    report.skipped = False
                else:
                    report.vector = None
                    report.skipped = True
                rec.needs_sim = False
        progress = False
        for i, rec in enumerate(pending):
            if len(vectors) >= vpi:
                # The scalar loop exits before this attempt: everything
                # from here on never happened.
                discarded = len(pending) - i
                self._rewind(rec.chk)
                stats["speculative_rewinds"] += 1
                stats["discarded_attempts"] += discarded
                return progress, discarded
            if rec.report.vector is not None and not rec.report.skipped:
                vectors.append(rec.report.vector)
                progress = True
        return progress, 0
