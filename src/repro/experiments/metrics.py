"""Aggregation helpers for the evaluation tables."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def safe_ratio(value: float, baseline: float) -> float:
    """``value / baseline`` guarded for a zero baseline.

    When both are zero the ratio is 1.0 (equal); a zero baseline with a
    nonzero value falls back to ``(value + 1) / (baseline + 1)`` so the
    comparison degrades smoothly instead of exploding.
    """
    if baseline == 0:
        if value == 0:
            return 1.0
        return (value + 1.0) / 1.0
    return value / baseline


def normalized_difference(value: float, baseline: float) -> float:
    """``(value - baseline) / baseline`` with the same zero guards.

    This is what Figures 5 and 6 plot: negative bars mean the strategy
    improved on the baseline.
    """
    return safe_ratio(value, baseline) - 1.0
