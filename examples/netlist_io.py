#!/usr/bin/env python3
"""Netlist I/O and mapping: BLIF in, K-LUT mapping, .bench out.

Shows the interchange path a user with their own circuits takes: parse a
BLIF netlist, LUT-map it with K=6 (the paper's ``if -K 6`` step), sweep it,
and write the mapped network back out in .bench LUT form.

Run:  python examples/netlist_io.py
"""

import io

from repro.core import make_generator
from repro.io import bench_text, parse_blif, write_blif
from repro.mapping import map_to_luts
from repro.sweep import SweepConfig, SweepEngine

BLIF_SOURCE = """\
.model ecc_slice
.inputs d0 d1 d2 d3 d4 d5 d6 d7
.outputs p0 p1 p2 all any
.names d0 d1 x01
10 1
01 1
.names d2 d3 x23
10 1
01 1
.names d4 d5 x45
10 1
01 1
.names d6 d7 x67
10 1
01 1
.names x01 x23 p0
10 1
01 1
.names x45 x67 p1
10 1
01 1
.names p0 p1 p2
10 1
01 1
.names d0 d1 d2 d3 a03
1111 1
.names d4 d5 d6 d7 a47
1111 1
.names a03 a47 all
11 1
.names d0 d1 d2 d3 o03
0000 0
.names d4 d5 d6 d7 o47
0000 0
.names o03 o47 any
0- 1
-0 1
.end
"""


def main() -> None:
    network = parse_blif(BLIF_SOURCE)
    print(f"parsed    : {network}")
    print(f"depth     : {network.depth()}")

    mapped, stats = map_to_luts(network, k=6)
    print(f"mapped    : {stats.luts} LUTs (K={stats.k}), depth {stats.depth}")

    generator = make_generator("AI+DC+MFFC", mapped, seed=1)
    engine = SweepEngine(
        mapped, generator, SweepConfig(seed=2, iterations=10, random_width=8)
    )
    result = engine.run()
    print(
        f"sweep     : cost {result.metrics.cost_history[0]} -> "
        f"{result.metrics.final_cost}, {result.metrics.sat_calls} SAT calls, "
        f"{len(result.equivalences)} equivalences proven"
    )

    buffer = io.StringIO()
    write_blif(mapped, buffer)
    blif_out = buffer.getvalue()
    bench_out = bench_text(mapped)
    print(f"\nBLIF output ({len(blif_out.splitlines())} lines), first lines:")
    print("\n".join(blif_out.splitlines()[:6]))
    print(f"\n.bench output ({len(bench_out.splitlines())} lines), first lines:")
    print("\n".join(bench_out.splitlines()[:6]))


if __name__ == "__main__":
    main()
