"""Evaluation harness: one module per table/figure of the paper (§6)."""

from repro.experiments.config import (
    ExperimentConfig,
    QUICK_BENCHMARKS,
    SCALED_BENCHMARKS,
)
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.runner import BenchmarkRun, ExperimentRunner
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2

__all__ = [
    "BenchmarkRun",
    "ExperimentConfig",
    "ExperimentRunner",
    "Fig5Result",
    "Fig7Result",
    "QUICK_BENCHMARKS",
    "SCALED_BENCHMARKS",
    "Table1Result",
    "Table2Result",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_table1",
    "run_table2",
]
