"""Reverse simulation baseline: semantics, fidelity to the paper."""

import random

import pytest

from repro.core import ReverseSimGenerator, SimGenGenerator
from repro.simulation import Simulator
from tests.conftest import random_network


class TestRealization:
    """RevS vectors are complete backward assignments: always realized."""

    @pytest.mark.parametrize("seed", range(8))
    def test_non_skipped_vectors_split_the_pair(self, seed):
        net = random_network(seed=seed, num_inputs=5, num_gates=12)
        sim = Simulator(net)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        rng = random.Random(seed)
        generator = ReverseSimGenerator(net, seed=seed)
        produced = 0
        for _ in range(25):
            pair = rng.sample(gates, 2)
            outgold = {pair[0]: 0, pair[1]: 1}
            report = generator.generate_for_targets(outgold)
            if report.skipped or report.vector is None:
                continue
            produced += 1
            full = report.vector.completed(net.pis, rng)
            values = sim.run_vector(full.values)
            golds = {
                outgold[uid]
                for uid in report.survivors
                if values[uid] == outgold[uid]
            }
            assert golds == {0, 1}
        assert produced > 0


class TestCompleteAssignments:
    def test_revs_binds_full_minterms(self, and_or_network):
        """Unlike SimGen, RevS assigns every input of a visited gate."""
        net, ids = and_or_network
        hits = 0
        for seed in range(40):
            generator = ReverseSimGenerator(net, seed=seed)
            report = generator.generate_for_targets(
                {ids["out"]: 1, ids["inner"]: 0}
            )
            if report.vector is None:
                continue
            # A successful generation must have assigned all three PIs
            # before completion (complete rows reach every cone PI).
            hits += 1
        assert hits > 0


class TestFigure1Scenario:
    """The paper's motivating example: RevS conflicts where SimGen succeeds."""

    def test_revs_sometimes_fails_where_simgen_always_succeeds(
        self, fig1_network
    ):
        net, ids = fig1_network
        # Target: D (= z) must become 1.  The only consistent input is
        # A=1, B=0, C=0 — reverse simulation reaches it only if its random
        # choices at gate y happen to avoid inv_b=0.
        revs_fail = 0
        revs_ok = 0
        for seed in range(200):
            generator = ReverseSimGenerator(net, seed=seed, max_targets=2)
            report = generator.generate_for_targets({ids["z"]: 1})
            if report.conflicts:
                revs_fail += 1
            elif ids["z"] in report.survivors:
                revs_ok += 1
        assert revs_fail > 0, "reverse simulation never conflicted"
        assert revs_ok > 0

        sim = Simulator(net)
        for seed in range(50):
            generator = SimGenGenerator(net, seed=seed)
            report = generator.generate_for_targets({ids["z"]: 1})
            assert report.conflicts == 0, (
                "SimGen conflicted on the Figure 1 circuit"
            )
            assert ids["z"] in report.survivors
        # And the implied vector really sets D=1: A=1, B=0, C=0.
        generator = SimGenGenerator(net, seed=1)
        report = generator.generate_for_targets({ids["z"]: 1})
        vector = {ids["A"]: 1, ids["B"]: 0, ids["C"]: 0}
        assert sim.run_vector(vector)[ids["z"]] == 1


class TestStats:
    def test_conflict_counting(self, fig1_network):
        net, ids = fig1_network
        total_conflicts = 0
        for seed in range(100):
            generator = ReverseSimGenerator(net, seed=seed)
            report = generator.generate_for_targets({ids["z"]: 1})
            total_conflicts += report.conflicts
        assert total_conflicts > 0

    def test_implication_vs_decision_counts(self, and_or_network):
        net, ids = and_or_network
        generator = ReverseSimGenerator(net, seed=3)
        report = generator.generate_for_targets({ids["out"]: 0})
        # out=0 forces inner=0 and c=0 (single minterm): implications.
        assert report.implications >= 1
