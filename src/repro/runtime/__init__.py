"""Runtime governance: budgets, fault harnesses, and durable sessions.

This package is the robustness layer under every long-running flow: a
:class:`Budget`/:class:`Deadline` pair that sweeping, CEC, and the
experiment harnesses poll to stop on time, fault wrappers
(:class:`FlakySolver`, :class:`FaultySimulator`) that chaos tests use to
prove the engines degrade to UNKNOWN instead of to wrong answers, a
supervised :class:`CheckerPool` that re-dispatches pairs lost to dead
workers, and the :class:`VerdictJournal` write-ahead log that makes sweep
sessions crash-safe and resumable.
"""

from repro.errors import BudgetExpired, JournalError
from repro.runtime.atomicio import atomic_write_json, atomic_write_text
from repro.runtime.budget import Budget, Deadline
from repro.runtime.faults import FaultSchedule, FaultySimulator, FlakySolver
from repro.runtime.journal import (
    ReplayRecord,
    VerdictJournal,
    config_fingerprint,
    sweep_signature,
)
from repro.runtime.pool import CheckerPool, PairVerdict
from repro.runtime.supervise import RetryPolicy, WorkerSupervisor

__all__ = [
    "Budget",
    "BudgetExpired",
    "CheckerPool",
    "Deadline",
    "FaultSchedule",
    "FaultySimulator",
    "FlakySolver",
    "JournalError",
    "PairVerdict",
    "ReplayRecord",
    "RetryPolicy",
    "VerdictJournal",
    "WorkerSupervisor",
    "atomic_write_json",
    "atomic_write_text",
    "config_fingerprint",
    "sweep_signature",
]
