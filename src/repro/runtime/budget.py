"""Resource budgets for long-running flows (sweeping, CEC, experiments).

A :class:`Deadline` is a monotonic-clock wall-time limit; a :class:`Budget`
combines a deadline with total-conflict and total-SAT-call caps and can be
nested (a child charges its parent, and expires when the parent does), so
one run-level budget can govern every engine a flow touches.

Budgets are *advisory by polling*: hot loops call the cheap
:meth:`Budget.time_expired` every N propagations and the full
:meth:`Budget.expired` between queries, then unwind gracefully — partial
results stay sound because abandoned work is reported UNKNOWN, never
guessed (see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import BudgetExpired


class Deadline:
    """A wall-clock limit on the monotonic clock.

    ``seconds=None`` means no limit.  The clock is injectable for tests.
    """

    __slots__ = ("_clock", "_expires_at", "seconds")

    def __init__(
        self,
        seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if seconds is not None and seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds

    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left, ``None`` if unlimited (never negative)."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())


class Budget:
    """Composable resource budget: wall clock + conflicts + SAT calls.

    Engines *charge* consumed resources (:meth:`charge_conflicts`,
    :meth:`charge_sat_call`) and *poll* :meth:`expired`.  Charges propagate
    to the parent budget, and a child is expired whenever any of its own
    caps or any ancestor's caps are hit.
    """

    __slots__ = (
        "deadline",
        "max_conflicts",
        "max_sat_calls",
        "conflicts_used",
        "sat_calls_used",
        "parent",
    )

    def __init__(
        self,
        seconds: Optional[float] = None,
        conflicts: Optional[int] = None,
        sat_calls: Optional[int] = None,
        parent: Optional["Budget"] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.deadline = Deadline(seconds, clock)
        self.max_conflicts = conflicts
        self.max_sat_calls = sat_calls
        self.conflicts_used = 0
        self.sat_calls_used = 0
        self.parent = parent

    # ------------------------------------------------------------------
    def subbudget(
        self,
        seconds: Optional[float] = None,
        conflicts: Optional[int] = None,
        sat_calls: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Budget":
        """A child budget; charges flow up, expiry flows down."""
        return Budget(
            seconds=seconds,
            conflicts=conflicts,
            sat_calls=sat_calls,
            parent=self,
            clock=clock,
        )

    # ------------------------------------------------------------------
    def charge_conflicts(self, count: int) -> None:
        if count:
            self.conflicts_used += count
            if self.parent is not None:
                self.parent.charge_conflicts(count)

    def charge_sat_call(self, count: int = 1) -> None:
        if count:
            self.sat_calls_used += count
            if self.parent is not None:
                self.parent.charge_sat_call(count)

    # ------------------------------------------------------------------
    def time_expired(self) -> bool:
        """Deadline-only check — cheap enough for a solver's inner loop."""
        budget: Optional[Budget] = self
        while budget is not None:
            if budget.deadline.expired():
                return True
            budget = budget.parent
        return False

    def exhausted_reason(self) -> Optional[str]:
        """Which cap ran out (``None`` while headroom remains)."""
        budget: Optional[Budget] = self
        while budget is not None:
            if budget.deadline.expired():
                return "deadline"
            if (
                budget.max_conflicts is not None
                and budget.conflicts_used >= budget.max_conflicts
            ):
                return "conflicts"
            if (
                budget.max_sat_calls is not None
                and budget.sat_calls_used >= budget.max_sat_calls
            ):
                return "sat_calls"
            budget = budget.parent
        return None

    def expired(self) -> bool:
        return self.exhausted_reason() is not None

    def check(self) -> None:
        """Raise :class:`BudgetExpired` if any cap ran out."""
        reason = self.exhausted_reason()
        if reason is not None:
            raise BudgetExpired(f"budget exhausted ({reason})")

    # ------------------------------------------------------------------
    def remaining_conflicts(self) -> Optional[int]:
        """Tightest conflict headroom across the chain (None = unlimited)."""
        remaining: Optional[int] = None
        budget: Optional[Budget] = self
        while budget is not None:
            if budget.max_conflicts is not None:
                left = max(0, budget.max_conflicts - budget.conflicts_used)
                remaining = left if remaining is None else min(remaining, left)
            budget = budget.parent
        return remaining

    def remaining_seconds(self) -> Optional[float]:
        """Tightest wall-clock headroom across the chain (None = unlimited)."""
        remaining: Optional[float] = None
        budget: Optional[Budget] = self
        while budget is not None:
            left = budget.deadline.remaining()
            if left is not None:
                remaining = left if remaining is None else min(remaining, left)
            budget = budget.parent
        return remaining
