"""Chaos suite: seeded fault injection must never produce an unsound verdict.

Every parametrized case is one replayable fault schedule shared by the
solver factory (so fresh-solver rebuilds continue the same fault history)
and the simulator wrapper.  The invariant under test: whatever the faults
do, a reported equivalence is real (truth-table identity AND a clean
unbounded UNSAT re-proof) and a CEC verdict only ever *degrades* toward
"inconclusive" — it never flips against ground truth.
"""

import pytest

from repro.runtime import FaultSchedule, FaultySimulator, FlakySolver
from repro.sat.solver import SatResult
from repro.sweep import SweepConfig, SweepEngine
from repro.sweep.cec import check_equivalence
from repro.sweep.checker import PairChecker
from tests.conftest import random_network
from tests.runtime.conftest import assert_equivalences_sound, parity_pair_network
from tests.sweep.test_engine import redundant_network

CHAOS_SEEDS = range(30)


def chaos_config(schedule: FaultSchedule, seed: int = 0) -> SweepConfig:
    return SweepConfig(
        seed=seed,
        solver_factory=lambda: FlakySolver(schedule=schedule),
        simulator_wrapper=lambda sim: FaultySimulator(sim, schedule),
    )


class TestChaosSweep:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_no_unsound_verdict_under_faults(self, seed):
        schedule = FaultSchedule(
            seed, p_raise=0.12, p_unknown=0.10, p_duplicate=0.10
        )
        net, _ = redundant_network()
        engine = SweepEngine(net, None, chaos_config(schedule, seed))
        result = engine.run()
        assert schedule.calls > 0
        assert_equivalences_sound(net, result.equivalences)
        # Every survivor re-proves UNSAT with a clean unbounded checker.
        clean = PairChecker(net, conflict_limit=None)
        for rep, member, complemented in result.equivalences:
            outcome, _ = clean.check(rep, member, complemented)
            assert outcome is SatResult.UNSAT

    def test_faults_are_actually_injected_and_absorbed(self):
        schedule = FaultSchedule(7, p_raise=0.35, p_unknown=0.15)
        net, _ = redundant_network()
        result = SweepEngine(net, None, chaos_config(schedule, 7)).run()
        assert schedule.injected["raise"] > 0
        assert (
            result.metrics.solver_retries + result.metrics.sim_retries > 0
        )
        assert_equivalences_sound(net, result.equivalences)

    def test_duplicate_only_faults_are_trajectory_identical(self):
        # A duplicated batch recomputes bit-identical values, so a
        # duplicate-only schedule must not perturb the run at all.
        net, _ = redundant_network()
        clean = SweepEngine(net, None, SweepConfig(seed=5)).run()
        schedule = FaultSchedule(5, p_duplicate=1.0)
        noisy_config = SweepConfig(
            seed=5, simulator_wrapper=lambda sim: FaultySimulator(sim, schedule)
        )
        noisy = SweepEngine(net, None, noisy_config).run()
        assert schedule.injected["duplicate"] > 0
        assert noisy.metrics.cost_history == clean.metrics.cost_history
        assert noisy.metrics.sat_calls == clean.metrics.sat_calls
        assert noisy.equivalences == clean.equivalences


class TestChaosCec:
    @pytest.mark.parametrize("seed", range(10))
    def test_equal_circuits_never_reported_different(self, seed):
        schedule = FaultSchedule(
            seed, p_raise=0.12, p_unknown=0.10, p_duplicate=0.10
        )
        net = parity_pair_network(n=6)
        result = check_equivalence(net, net, config=chaos_config(schedule, seed))
        assert result.verdict in ("equivalent", "inconclusive")
        assert "different" not in result.outputs.values()

    @pytest.mark.parametrize("seed", range(10))
    def test_different_circuits_never_reported_equivalent(self, seed):
        net_a = random_network(seed=seed, num_inputs=4, num_gates=8)
        net_b = random_network(seed=seed + 1000, num_inputs=4, num_gates=8)
        ground = check_equivalence(net_a, net_b, config=SweepConfig(seed=1))
        assert ground.conclusive
        schedule = FaultSchedule(
            seed, p_raise=0.12, p_unknown=0.10, p_duplicate=0.10
        )
        chaotic = check_equivalence(
            net_a, net_b, config=chaos_config(schedule, 1)
        )
        assert chaotic.verdict in (ground.verdict, "inconclusive")


class TestPermanentFailures:
    def test_always_failing_solver_degrades_to_unknown(self):
        schedule = FaultSchedule(0, p_raise=1.0, max_consecutive_raises=None)
        net, _ = redundant_network()
        config = SweepConfig(
            seed=1, solver_factory=lambda: FlakySolver(schedule=schedule)
        )
        result = SweepEngine(net, None, config).run()
        assert result.metrics.proven == 0
        assert result.metrics.unknown > 0
        assert result.equivalences == []
        assert result.metrics.solver_retries > 0

    def test_always_failing_simulator_still_terminates_soundly(self):
        schedule = FaultSchedule(0, p_raise=1.0, max_consecutive_raises=None)
        net, _ = redundant_network()
        config = SweepConfig(
            seed=1, simulator_wrapper=lambda sim: FaultySimulator(sim, schedule)
        )
        result = SweepEngine(net, None, config).run()
        # Every batch was dropped: the classes stayed maximally coarse and
        # the SAT phase did all the work — slower, but still sound.
        assert result.metrics.sim_retries > 0
        assert_equivalences_sound(net, result.equivalences)

    def test_fault_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule(0, p_raise=0.8, p_unknown=0.4)
        with pytest.raises(ValueError):
            FaultSchedule(0, p_raise=-0.1)
