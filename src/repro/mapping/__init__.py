"""LUT mapping: cut enumeration and depth-oriented covering."""

from repro.mapping.cuts import Cut, cut_function, enumerate_cuts
from repro.mapping.lutmap import MappingStats, map_to_luts

__all__ = ["Cut", "MappingStats", "cut_function", "enumerate_cuts", "map_to_luts"]
