"""Hybrid random->guided generator (paper §6.5)."""

from repro.core import HybridGenerator, SimGenGenerator, classes_cost
from tests.conftest import random_network


def make_hybrid(net, patience=3):
    guided = SimGenGenerator(net, seed=1)
    return HybridGenerator(net, guided, seed=2, patience=patience)


class TestClassesCost:
    def test_equation_5(self):
        assert classes_cost([[1, 2, 3], [4, 5], [6]]) == 3
        assert classes_cost([]) == 0


class TestSwitching:
    def test_stays_random_while_cost_improves(self):
        net = random_network(seed=0)
        hybrid = make_hybrid(net)
        # strictly decreasing costs: never switches
        for size in (10, 9, 8, 7, 6, 5):
            hybrid.generate([list(range(size + 1))])
            assert not hybrid.switched

    def test_switches_after_patience_stagnant_iterations(self):
        net = random_network(seed=0)
        hybrid = make_hybrid(net, patience=3)
        cls = [list(range(6))]
        hybrid.generate(cls)  # establishes baseline
        assert not hybrid.switched
        hybrid.generate(cls)  # stagnant 1
        hybrid.generate(cls)  # stagnant 2
        assert not hybrid.switched
        hybrid.generate(cls)  # stagnant 3 -> switch
        assert hybrid.switched

    def test_plateau_reset_on_improvement(self):
        net = random_network(seed=0)
        hybrid = make_hybrid(net, patience=2)
        hybrid.generate([list(range(8))])
        hybrid.generate([list(range(8))])  # stagnant 1
        hybrid.generate([list(range(7))])  # improvement resets
        hybrid.generate([list(range(7))])  # stagnant 1
        assert not hybrid.switched

    def test_random_stage_emits_unconstrained_vectors(self):
        net = random_network(seed=0)
        hybrid = make_hybrid(net)
        vectors = hybrid.generate([[1, 2]])
        assert vectors
        assert all(len(v.values) == 0 for v in vectors)

    def test_guided_stage_used_after_switch(self):
        net = random_network(seed=3)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        hybrid = make_hybrid(net, patience=1)
        cls = [gates[:6]]
        hybrid.generate(cls)
        hybrid.generate(cls)  # switch
        assert hybrid.switched
        vectors = hybrid.generate(cls)
        # guided vectors bind actual PI values
        assert any(len(v.values) > 0 for v in vectors)

    def test_name_reflects_stages(self):
        net = random_network(seed=0)
        hybrid = make_hybrid(net)
        assert hybrid.name.startswith("hybrid[rand->")
