"""Combinational equivalence checking built on the sweeping engine.

CEC of two circuits (paper §2.2): place both over shared PIs in one
*union* network, sweep it so internal equivalences are proven cheaply and
internal differences are disproven by simulation, then resolve each output
pair — by the sweep's verdict when available, by a SAT call through a
:class:`PairChecker` otherwise (so every fallback call shares the sweep's
metric accounting and budget).

Verdicts are tri-state: a run cut short by a :class:`Budget` deadline or
an interrupt reports the unresolved outputs ``"unknown"`` and sets
``conclusive=False`` — it is **never** folded into ``"different"``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.generator import BaseVectorGenerator
from repro.errors import SweepError
from repro.network.network import Network
from repro.obs import NULL_TRACER
from repro.runtime.pool import CheckerPool
from repro.runtime.supervise import RetryPolicy
from repro.sat.solver import SatResult
from repro.simulation.patterns import InputVector, PatternBatch
from repro.sweep.checker import PairChecker
from repro.sweep.engine import SweepConfig, SweepEngine, SweepMetrics


@dataclass(slots=True)
class CecResult:
    """Verdict of a CEC run."""

    #: True if every output pair was proven equivalent.
    equivalent: bool
    #: Per-output verdicts: name -> "equal" | "different" | "unknown".
    outputs: dict[str, str] = field(default_factory=dict)
    #: A distinguishing input vector if any output pair differs.
    counterexample: Optional[InputVector] = None
    #: Metrics of the underlying sweep (plus the fallback miter calls).
    metrics: Optional[SweepMetrics] = None
    #: False when any output is "unknown" (budget expiry, conflict limit,
    #: or interrupt): the circuits were neither proven equal nor different.
    conclusive: bool = True

    @property
    def verdict(self) -> str:
        """``"equivalent"`` | ``"different"`` | ``"inconclusive"``."""
        if any(state == "different" for state in self.outputs.values()):
            return "different"
        if not self.conclusive:
            return "inconclusive"
        return "equivalent"


def union_network(network_a: Network, network_b: Network) -> tuple[
    Network, list[tuple[str, int, int]]
]:
    """Both circuits over shared PIs; returns (union, PO pair list).

    PIs are matched by position, POs by position; the returned pair list
    holds ``(po_name, node_in_a_copy, node_in_b_copy)``.
    """
    if len(network_a.pis) != len(network_b.pis):
        raise SweepError("PI count mismatch")
    if len(network_a.pos) != len(network_b.pos):
        raise SweepError("PO count mismatch")
    union = Network(f"union({network_a.name},{network_b.name})")
    shared = [union.add_pi(network_a.node(pi).name) for pi in network_a.pis]

    def copy(source: Network) -> dict[int, int]:
        mapping = dict(zip(source.pis, shared))
        for uid in source.topological_order():
            node = source.node(uid)
            if node.is_pi:
                continue
            mapping[uid] = union.add_gate(
                node.table, tuple(mapping[f] for f in node.fanins)
            )
        return mapping

    map_a = copy(network_a)
    map_b = copy(network_b)
    pairs = []
    for (name, uid_a), (_, uid_b) in zip(network_a.pos, network_b.pos):
        node_a = map_a[uid_a]
        node_b = map_b[uid_b]
        union.add_po(node_a, f"a_{name}")
        union.add_po(node_b, f"b_{name}")
        pairs.append((name, node_a, node_b))
    return union, pairs


def check_equivalence(
    network_a: Network,
    network_b: Network,
    generator_factory=None,
    config: Optional[SweepConfig] = None,
) -> CecResult:
    """Sweep-accelerated CEC of two circuits.

    Args:
        network_a, network_b: Circuits with matching PI/PO interfaces.
        generator_factory: ``(network, seed) -> BaseVectorGenerator`` used
            for guided simulation inside the sweep (None = random only).
        config: Sweep configuration; its ``budget`` (if any) governs the
            sweep *and* the per-output fallback SAT calls.
    """
    config = config or SweepConfig()
    tracer = config.tracer if config.tracer is not None else NULL_TRACER
    with tracer.span("run", kind="cec"):
        return _check_equivalence_traced(
            network_a, network_b, generator_factory, config, tracer
        )


def _check_equivalence_traced(
    network_a: Network,
    network_b: Network,
    generator_factory,
    config: SweepConfig,
    tracer,
) -> CecResult:
    budget = config.budget
    with tracer.span("phase", phase="cec.build"):
        union, pairs = union_network(network_a, network_b)
        generator: Optional[BaseVectorGenerator] = None
        if generator_factory is not None:
            generator = generator_factory(union, config.seed)
        engine = SweepEngine(union, generator, config)
    sweep = engine.run()

    proven = {(a, b) for a, b, comp in sweep.equivalences if not comp}
    proven |= {(b, a) for a, b in proven}
    # A PO pair proven *complement*-equivalent differs on every input, so
    # it resolves to "different" for free — one cheap simulation recovers
    # a counterexample instead of a fresh SAT call.
    comp_proven = {(a, b) for a, b, comp in sweep.equivalences if comp}
    comp_proven |= {(b, a) for a, b in comp_proven}

    # Fallback miter calls go through a PairChecker so sat_calls AND
    # sat_time are tracked uniformly with the sweep's own SAT phase (and
    # the incremental solver is reused across output pairs).  With
    # ``jobs > 1`` the unresolved pairs go to a CheckerPool batch instead.
    checker = None
    if config.jobs == 1:
        checker = PairChecker(
            union,
            conflict_limit=config.sat_conflict_limit,
            incremental=engine._incremental,
            budget=budget,
            solver_factory=config.solver_factory,
            max_retries=config.solver_retries,
            sat_backend=config.sat_backend,
        )

    result = CecResult(equivalent=True, metrics=sweep.metrics)
    #: One lazily simulated total vector, shared by every complement-proven
    #: pair (any input distinguishes complements).
    witness: Optional[tuple[InputVector, dict[int, int]]] = None

    def complement_witness() -> Optional[tuple[InputVector, dict[int, int]]]:
        nonlocal witness
        if witness is None:
            batch = PatternBatch(union.pis, random.Random(config.seed))
            batch.add_random(1)
            values = engine._sim_batch(engine.simulator, batch, sweep.metrics)
            if values is None:
                return None
            witness = (batch.vector_at(0), values)
        return witness

    def resolve_from_sweep(name: str, node_a: int, node_b: int) -> bool:
        """Resolve a PO pair from the sweep's verdicts alone, if possible."""
        if node_a == node_b or (node_a, node_b) in proven:
            result.outputs[name] = "equal"
            return True
        if (node_a, node_b) in comp_proven:
            result.outputs[name] = "different"
            result.equivalent = False
            if result.counterexample is None:
                data = complement_witness()
                if data is not None and (
                    (data[1][node_a] ^ data[1][node_b]) & 1
                ):
                    result.counterexample = data[0]
            return True
        return False

    pending: list[tuple[str, int, int]] = []
    fallback_calls = 0
    try:
        with tracer.span("phase", phase="cec.resolve"):
            for name, node_a, node_b in pairs:
                if resolve_from_sweep(name, node_a, node_b):
                    continue
                if sweep.metrics.interrupted or (
                    budget is not None and budget.expired()
                ):
                    result.outputs[name] = "unknown"
                    result.equivalent = False
                    continue
                if config.jobs > 1:
                    # Defer to one concurrent batch of fallback miters;
                    # the verdicts merge below in PO order, so the
                    # counterexample (the first differing PO) is
                    # worker-count-invariant.
                    pending.append((name, node_a, node_b))
                    continue
                # The checker clock owns the window; charge_attempt keeps
                # ``sat_time == sum(sat_time_per_attempt)`` through the
                # fallback path too (the sweep's own accounting
                # invariant).  Fallback miters ride the verdict journal
                # like any sweep pair (keys are structural, so the PO
                # cones replay on resume).
                outcome, vector = engine._journaled_attempt(
                    checker, sweep.metrics, node_a, node_b, False, rung=0
                )
                sweep.metrics.sat_calls += 1
                fallback_calls += 1
                if outcome is SatResult.UNSAT:
                    result.outputs[name] = "equal"
                elif outcome is SatResult.SAT:
                    result.outputs[name] = "different"
                    result.equivalent = False
                    if result.counterexample is None:
                        result.counterexample = vector
                else:
                    result.outputs[name] = "unknown"
                    result.equivalent = False
        if pending:
            # One coordinator wall window for the whole fallback batch
            # (``sat_phase_time``); each verdict's worker-clock seconds are
            # charged exactly once via ``charge_attempt`` — never both, so
            # the old double count (wall window + per-attempt seconds) is
            # structurally impossible.
            fallback_start = time.perf_counter()
            with tracer.span("phase", phase="cec.sat"):
                pending_pairs = [(a, b, False) for _, a, b in pending]
                replayed, dispatch, _ = engine._journal_partition(
                    pending_pairs
                )
                pooled = []
                if dispatch:
                    with CheckerPool(
                        union,
                        config.jobs,
                        shards=config.sat_shards,
                        conflict_limit=config.sat_conflict_limit,
                        incremental=engine._incremental,
                        sat_backend=config.sat_backend,
                        chaos_kill_pair=config.chaos_kill_pair,
                        chaos_kill_limit=config.chaos_kill_limit,
                        retry_policy=RetryPolicy(
                            max_retries=config.pair_retry_limit,
                            seed=config.seed,
                        ),
                        tracer=tracer,
                    ) as pool:
                        pooled = pool.check_pairs(dispatch, budget=budget)
                        sweep.metrics.worker_failures += pool.worker_failures
                        engine._fold_session_stats(pool=pool)
                pooled_iter = iter(pooled)
                verdicts = [
                    replayed[offset]
                    if offset in replayed
                    else next(pooled_iter)
                    for offset in range(len(pending))
                ]
                for offset, ((name, node_a, node_b), verdict) in enumerate(
                    zip(pending, verdicts)
                ):
                    if offset not in replayed:
                        engine._journal_pooled(
                            node_a,
                            node_b,
                            False,
                            verdict,
                            rung=0,
                            nominal=config.sat_conflict_limit,
                        )
                    engine._merge_verdict_time(sweep.metrics, verdict, rung=0)
                    sweep.metrics.sat_calls += 1
                    fallback_calls += 1
                    if budget is not None and not verdict.degraded:
                        budget.charge_sat_call()
                        budget.charge_conflicts(verdict.conflicts)
                    if tracer.enabled:
                        tracer.event(
                            "sat.call",
                            rep=node_a,
                            member=node_b,
                            complement=False,
                            verdict=verdict.outcome.value,
                            conflicts=verdict.conflicts,
                            rung=0,
                            po=name,
                            degraded=verdict.degraded,
                            dur=verdict.sat_time,
                        )
                    if verdict.outcome is SatResult.UNSAT:
                        result.outputs[name] = "equal"
                    elif verdict.outcome is SatResult.SAT:
                        result.outputs[name] = "different"
                        result.equivalent = False
                        if result.counterexample is None:
                            result.counterexample = verdict.vector
                    else:
                        result.outputs[name] = "unknown"
                        result.equivalent = False
                sweep.metrics.sat_phase_time += (
                    time.perf_counter() - fallback_start
                )
    except KeyboardInterrupt:
        sweep.metrics.interrupted = True
        for name, _, _ in pairs:
            if name not in result.outputs:
                result.outputs[name] = "unknown"
                result.equivalent = False

    if checker is not None:
        # calls/sat_time were charged per attempt above (one timer owner);
        # only the retry counter and solver stats are folded in here.
        sweep.metrics.solver_retries += checker.stats.retries
        engine.registry.inc_many("sat.solver", checker.solver_stats)
    result.conclusive = "unknown" not in result.outputs.values()
    # Fallback-path journal activity (replays/appends since the sweep's own
    # fold) lands in the registry before the counters dump.
    engine._fold_session_stats()
    engine.registry.inc_many(
        "cec",
        {
            "fallback_calls": fallback_calls,
            "outputs_equal": sum(
                1 for s in result.outputs.values() if s == "equal"
            ),
            "outputs_different": sum(
                1 for s in result.outputs.values() if s == "different"
            ),
            "outputs_unknown": sum(
                1 for s in result.outputs.values() if s == "unknown"
            ),
        },
    )
    if tracer.enabled:
        tracer.counters(engine.registry.as_dict())
    return result
