"""SAT-counterexample vector generation (related-work baseline)."""

import random

from repro.core import SatCexGenerator
from repro.network import NetworkBuilder
from repro.simulation import Simulator
from repro.sweep import SweepConfig, SweepEngine
from tests.conftest import random_network


class TestSatCexGenerator:
    def test_vectors_actually_split_pairs(self):
        net = random_network(seed=3, num_inputs=5, num_gates=14)
        gates = [uid for uid in net.node_ids() if net.node(uid).is_gate]
        generator = SatCexGenerator(net, seed=1, vectors_per_iteration=4)
        sim = Simulator(net)
        vectors = generator.generate([gates])
        assert generator.sat_calls > 0
        rng = random.Random(0)
        for vector in vectors:
            full = vector.completed(net.pis, rng)
            values = sim.run_vector(full.values)
            # Some pair of the class must be distinguished.
            observed = {values[uid] for uid in gates}
            assert observed == {0, 1}

    def test_proven_pairs_not_requeried(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.not_(builder.nand_(a, b))
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        generator = SatCexGenerator(net, seed=1)
        generator.generate([[g1, g2]])
        calls_after_first = generator.sat_calls
        assert generator.proven == {frozenset((g1, g2))}
        generator.generate([[g1, g2]])
        # The only pair is proven: no further solver queries.
        assert generator.sat_calls == calls_after_first

    def test_plugs_into_sweep_engine(self):
        net = random_network(seed=7, num_inputs=5, num_gates=16)
        generator = SatCexGenerator(net, seed=1)
        engine = SweepEngine(
            net, generator, SweepConfig(seed=2, iterations=5)
        )
        result = engine.run()
        assert result.classes.splittable() == []
        # The generator's own solver calls are the hidden cost the paper
        # criticizes; they are tracked separately from the SAT phase.
        assert generator.sat_calls >= 0

    def test_empty_classes_no_vectors(self):
        net = random_network(seed=0)
        generator = SatCexGenerator(net, seed=1)
        assert generator.generate([]) == []
        assert generator.generate([[5]]) == []
