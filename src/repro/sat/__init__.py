"""SAT substrate: CNF, CDCL solver, Tseitin encoding, miters."""

from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver, SatResult, solve_cnf
from repro.sat.tseitin import TseitinEncoder, pair_miter, po_miter

__all__ = [
    "CdclSolver",
    "Cnf",
    "SatResult",
    "TseitinEncoder",
    "pair_miter",
    "po_miter",
    "solve_cnf",
]
