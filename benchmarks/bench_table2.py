"""Bench: regenerate Table 2 (SAT calls & SAT time, RevS vs SimGen, §6.3)."""

from __future__ import annotations

from repro.experiments.table2 import run_table2


def test_table2(benchmark, config, shared_runner):
    result = benchmark.pedantic(
        run_table2,
        kwargs={"config": config, "runner": shared_runner},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    total_revs = sum(r.revs.sat_calls for r in result.rows)
    total_sgen = sum(r.sgen.sat_calls for r in result.rows)
    # Reproduction shape: SimGen issues no more SAT calls overall.
    assert total_sgen <= total_revs
