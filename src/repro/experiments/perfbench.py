"""Performance regression harness (``BENCH_perf.json``).

Every PR that touches the simulation or sweeping hot path should leave a
fresh ``BENCH_perf.json`` at the repo root so the perf trajectory is
tracked alongside the code.  The harness measures, on the fig5/fig6
benchgen workloads:

* **node-evals/sec** of the dict-walking :class:`Simulator` vs the
  tape-compiled :class:`CompiledSimulator`;
* **end-to-end sweep wall-clock** under three engine variants:

  - ``seed``       — the original engine *and* the original O(2**n)-loop
    truth-table cofactor/var ops, restored via a monkeypatch shim, so the
    recorded baseline stays reproducible on today's hardware;
  - ``reference``  — the original engine structure (dict simulator,
    full-network resimulation per SAT disproof, sort-based class
    selection) on the current library;
  - ``compiled``   — the tape-compiled engine with batched counterexample
    resimulation and cone-restricted recompilation.

SimGen rows additionally carry a ``batch`` variant — the lane-batched
generator of :mod:`repro.core.batch` (C inner loop + 64-wide speculative
verification) — whose ``batch_simgen_speedup`` column compares
guided-generation seconds against the scalar compiled kernel on the same
trajectory, and a ``simgen_vectors_per_sec`` microbench section measures
raw vector throughput of the two backends under a frozen-work identity
gate.

All three variants must produce **bit-identical** cost histories,
SAT-call counts, equivalences, and final classes; the harness asserts
this per workload and refuses to report a speedup for a run that
diverged.  Plan caches (ISOP covers, eval plans, cofactors) are cleared
before every measured run so each variant pays its own compile/plan
costs, as a fresh process would.

The report also carries a ``worker_scaling`` section: the SAT-heavy
stacked workloads re-run at several ``jobs`` counts through the
process-parallel :class:`~repro.runtime.pool.CheckerPool` path, with the
deterministic-merge contract asserted at every count, and a ``--baseline``
gate that fails when any workload's machine-independent
``speedup_vs_seed`` ratio regresses beyond ``--max-regression``.
"""

from __future__ import annotations

import json
import math
import os
import random
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

from repro.benchgen.suite import sweep_instance
from repro.core.assignment import Assignment, Conflict as _Conflict
from repro.core.batch import SIMGEN_CORE
from repro.core.compiled import CompiledSimGenKernel, clear_transition_cache
from repro.core.decision import DecisionEngine
from repro.core.generator import SimGenGenerator
from repro.core.implication import (
    ImplicationEngine,
    ImplicationOutcome,
    ImplicationStrategy,
)
from repro.core.strategies import make_generator
from repro.errors import LogicError, ReproError
from repro.logic import cubes as _cubes
from repro.logic import truthtable as _tt
from repro.network.network import Network
from repro.network.traversal import cone_topological_order
from repro.sat import tseitin as _tseitin
from repro.sat.compiled import SAT_CORE, solver_class
from repro.simulation.compiled import CompiledSimulator, clear_tape_cache
from repro.simulation.patterns import PatternBatch
from repro.simulation import simulator as _sim_mod
from repro.simulation.simulator import Simulator
from repro.sweep.engine import SweepConfig, SweepEngine

#: (benchmark, strategy, putontop copies).  The singles mirror Figure 5's
#: per-benchmark comparison; the stacked instances are Figure 6's scaled
#: flavor.  Strategies cover the cheap-generator (RandS) and the full
#: SimGen (AI+DC+MFFC) regimes, whose sweep-time compositions differ.
QUICK_WORKLOADS: tuple[tuple[str, str, int], ...] = (
    ("cps", "RandS", 1),
    ("cps", "AI+DC+MFFC", 1),
    ("b14_C", "RandS", 1),
    ("b14_C", "AI+DC+MFFC", 1),
)

FULL_WORKLOADS: tuple[tuple[str, str, int], ...] = QUICK_WORKLOADS + (
    ("alu4", "RandS", 1),
    ("alu4", "AI+DC+MFFC", 1),
    ("apex2", "RevS", 1),
    ("apex2", "AI+DC+MFFC", 1),
    ("priority", "RevS", 1),
    ("priority", "AI+DC+MFFC", 1),
    ("cps", "AI+DC+MFFC", 2),
    ("b14_C", "RandS", 2),
)

#: SAT-heavy stacked instances used for the worker-scaling matrix: stacked
#: copies maximize provable equivalences, i.e. the SAT-phase share that
#: ``jobs > 1`` parallelizes.
SCALING_WORKLOADS: tuple[tuple[str, str, int], ...] = (
    ("cps", "AI+DC+MFFC", 2),
    ("b14_C", "RandS", 2),
)

#: Strategies routed through the SimGen backend seam — only these rows
#: get a lane-batched variant (RandS/RevS ignore ``simgen_backend``).
SIMGEN_STRATEGIES: tuple[str, ...] = (
    "SI+RD", "AI+RD", "AI+DC", "AI+DC+MFFC",
)


def clear_plan_caches() -> None:
    """Drop every memoized plan so the next run pays cold-start costs."""
    _sim_mod._eval_plan.cache_clear()
    _cubes.isop_cover.cache_clear()
    _cubes.rows_of.cache_clear()
    _cubes.packed_rows.cache_clear()
    _tt._cofactor_cached.cache_clear()
    _tt._var_mask.cache_clear()
    _tseitin.gate_clause_templates.cache_clear()
    clear_transition_cache()
    clear_tape_cache()


@contextmanager
def seed_baseline():
    """Temporarily restore the seed's hot-path implementations.

    The compiled-engine PR replaced the per-minterm-loop TruthTable ops
    (``cofactor``/``depends_on``/``var``) with mask-and-shift
    implementations, and lowered the implication/decision engines' node
    metadata ahead of time; the SAT-core PR additionally rewrote the
    Tseitin encoder onto cached clause templates with pruned cone walks
    and dropped the Cube-object churn from the ISOP recursion.  This shim
    reinstates the original code (verbatim) so the seed baseline can be
    re-measured at any time instead of trusting a number recorded once.
    Trajectories are unchanged either way — the harness asserts it.  (The
    CDCL solver itself is *not* shimmed: the seed variant runs today's
    reference solver via ``sat_backend="reference"``, whose semantics the
    compiled arena core mirrors bit-for-bit.)
    """

    def legacy_cofactor(self, index, value):
        if not 0 <= index < self.num_vars:
            raise LogicError(f"variable index {index} out of range")
        if value not in (0, 1):
            raise LogicError(f"cofactor value must be 0/1, got {value!r}")
        bits = 0
        for m in range(self.size):
            src = (m | (1 << index)) if value else (m & ~(1 << index))
            if (self.bits >> src) & 1:
                bits |= 1 << m
        return _tt.TruthTable(self.num_vars, bits)

    def legacy_depends_on(self, index):
        return self.cofactor(index, 0).bits != self.cofactor(index, 1).bits

    def legacy_var(cls, num_vars, index):
        _tt._check_num_vars(num_vars)
        if not 0 <= index < num_vars:
            raise LogicError(
                f"variable index {index} out of range ({num_vars} vars)"
            )
        bits = 0
        for m in range(1 << num_vars):
            if (m >> index) & 1:
                bits |= 1 << m
        return cls(num_vars, bits)

    def legacy_examine(self, assignment, uid):
        node = self.network.node(uid)
        if node.is_pi or node.is_const:
            return []
        values = assignment._values
        fanins = node.fanins
        known_mask = 0
        known_values = 0
        for i, f in enumerate(fanins):
            v = values.get(f)
            if v is not None:
                known_mask |= 1 << i
                if v:
                    known_values |= 1 << i
        output = values.get(uid)
        if output is None and not known_mask:
            return []
        matching = [
            row
            for row in _cubes.packed_rows(node.table)
            if (output is None or row[2] == output)
            and not (row[1] ^ known_values) & (row[0] & known_mask)
        ]
        if not matching:
            return None
        result = []
        if len(matching) == 1:
            mask, vals, out = matching[0]
            forced_mask = mask & ~known_mask
            i = 0
            while forced_mask:
                if forced_mask & 1:
                    result.append((fanins[i], (vals >> i) & 1))
                forced_mask >>= 1
                i += 1
            if output is None:
                result.append((uid, out))
            return result
        if self.strategy is not ImplicationStrategy.ADVANCED:
            return []
        base_mask, base_vals, base_out = matching[0]
        forced_mask = base_mask & ~known_mask
        out_agree = output is None
        for mask, vals, out in matching[1:]:
            forced_mask &= mask & ~(vals ^ base_vals)
            if out != base_out:
                out_agree = False
            if not forced_mask and not out_agree:
                return []
        i = 0
        fm = forced_mask
        while fm:
            if fm & 1:
                result.append((fanins[i], (base_vals >> i) & 1))
            fm >>= 1
            i += 1
        if out_agree:
            result.append((uid, base_out))
        return result

    def legacy_propagate(self, assignment, seeds):
        outcome = ImplicationOutcome()
        queue = []
        queued = set()

        def enqueue_examiners(changed_uid):
            for cand in (changed_uid, *self.network.fanouts(changed_uid)):
                if cand not in queued:
                    queued.add(cand)
                    queue.append(cand)

        for seed_uid in seeds:
            enqueue_examiners(seed_uid)
        while queue:
            uid = queue.pop(0)
            queued.discard(uid)
            forced = self.examine(assignment, uid)
            if forced is None:
                outcome.conflict = True
                outcome.conflict_node = uid
                return outcome
            for target, value in forced:
                try:
                    fresh = assignment.assign(target, value)
                except _Conflict:
                    outcome.conflict = True
                    outcome.conflict_node = target
                    return outcome
                if fresh:
                    outcome.assigned += 1
                    outcome.changed_nodes.append(target)
                    enqueue_examiners(target)
        return outcome

    def legacy_pick_candidate(self, assignment, cone, exhausted):
        for uid in reversed(assignment.trail()):
            if uid not in cone or uid in exhausted:
                continue
            node = self.network.node(uid)
            if node.is_pi or node.is_const:
                continue
            inputs, _ = assignment.pins_of(uid)
            if any(v is None for v in inputs):
                return uid
        return None

    def legacy_candidate_rows(self, assignment, uid):
        node = self.network.node(uid)
        if node.is_pi or node.is_const:
            return []
        values = assignment._values
        known_mask = 0
        known_values = 0
        for i, f in enumerate(node.fanins):
            v = values.get(f)
            if v is not None:
                known_mask |= 1 << i
                if v:
                    known_values |= 1 << i
        output = values.get(uid)
        matching = [
            row
            for row in _cubes.rows_of(node.table)
            if (output is None or row.output == output)
            and not (row.cube.values ^ known_values)
            & (row.cube.mask & known_mask)
        ]
        if not matching:
            return None
        useful = []
        for row in matching:
            binds_new = bool(row.cube.mask & ~known_mask)
            if not binds_new and output is not None:
                return []
            if binds_new or output is None:
                useful.append(row)
        return useful

    def legacy_mffc_rank(self, uid, row):
        node = self.network.node(uid)
        rank = 0.0
        for i, lit in enumerate(row.literals()):
            if lit is not None:
                rank += self._mffc.depth(node.fanins[i])
        return rank

    def legacy_isop_bits(num_vars, lower, upper, full, vmasks):
        if lower == 0:
            return [], 0
        if upper == full:
            return [_cubes.Cube.full_dc(num_vars)], full
        var = -1
        for i in reversed(range(num_vars)):
            blk = 1 << i
            half = full & ~vmasks[i]
            if ((lower ^ (lower >> blk)) & half) or (
                (upper ^ (upper >> blk)) & half
            ):
                var = i
                break
        if var < 0:  # pragma: no cover - bounds constant yet not caught above
            raise LogicError("ISOP invariant violated: no support variable")
        blk = 1 << var
        vm = vmasks[var]
        lo = full & ~vm
        l0 = lower & lo
        l0 |= l0 << blk
        l1 = lower & vm
        l1 |= l1 >> blk
        u0 = upper & lo
        u0 |= u0 << blk
        u1 = upper & vm
        u1 |= u1 >> blk
        cubes0, f0 = legacy_isop_bits(num_vars, l0 & ~u1, u0, full, vmasks)
        cubes1, f1 = legacy_isop_bits(num_vars, l1 & ~u0, u1, full, vmasks)
        cubes2, f2 = legacy_isop_bits(
            num_vars, (l0 & ~f0) | (l1 & ~f1), u0 & u1, full, vmasks
        )
        cubes = (
            [c.with_literal(var, 0) for c in cubes0]
            + [c.with_literal(var, 1) for c in cubes1]
            + cubes2
        )
        func_bits = (lo & f0) | (vm & f1) | f2
        return cubes, func_bits

    def legacy_isop(table):
        num_vars = table.num_vars
        full, vmasks = _cubes._ISOP_MASKS[num_vars]
        cubes, func_bits = legacy_isop_bits(
            num_vars, table.bits, table.bits, full, vmasks
        )
        if func_bits != table.bits:  # pragma: no cover - safety net
            raise LogicError("ISOP result does not equal the input function")
        return cubes

    def legacy_encode_cone(self, root):
        for uid in cone_topological_order(self.network, [root]):
            if uid in self._node_var:
                continue
            node = self.network.node(uid)
            var = self.cnf.new_var()
            self._node_var[uid] = var
            if node.is_pi:
                continue
            if node.is_const:
                self.cnf.add_clause([var if node.table.bits else -var])
                continue
            fanin_vars = [self._node_var[f] for f in node.fanins]
            self._encode_gate(var, node.table, fanin_vars)
        return self._node_var[root]

    def legacy_cube_antecedent(cube, fanin_vars):
        clause = []
        for i, var in enumerate(fanin_vars):
            lit = cube.literal(i)
            if lit is None:
                continue
            clause.append(-var if lit else var)
        return clause

    def legacy_encode_gate(self, out_var, table, fanin_vars):
        for cube in _cubes.isop_cover(table):
            clause = legacy_cube_antecedent(cube, fanin_vars)
            clause.append(out_var)
            self.cnf.add_clause(clause)
        for cube in _cubes.isop_cover(~table):
            clause = legacy_cube_antecedent(cube, fanin_vars)
            clause.append(-out_var)
            self.cnf.add_clause(clause)

    saved = (
        _tt.TruthTable.cofactor,
        _tt.TruthTable.depends_on,
        _tt.TruthTable.var,
        ImplicationEngine.examine,
        ImplicationEngine.propagate,
        SimGenGenerator._pick_candidate,
        DecisionEngine.candidate_rows,
        DecisionEngine.mffc_rank,
        _cubes.isop,
        _tseitin.TseitinEncoder.encode_cone,
        _tseitin.TseitinEncoder._encode_gate,
    )
    _tt.TruthTable.cofactor = legacy_cofactor
    _tt.TruthTable.depends_on = legacy_depends_on
    _tt.TruthTable.var = classmethod(legacy_var)
    ImplicationEngine.examine = legacy_examine
    ImplicationEngine.propagate = legacy_propagate
    SimGenGenerator._pick_candidate = legacy_pick_candidate
    DecisionEngine.candidate_rows = legacy_candidate_rows
    DecisionEngine.mffc_rank = legacy_mffc_rank
    _cubes.isop = legacy_isop
    _tseitin.TseitinEncoder.encode_cone = legacy_encode_cone
    _tseitin.TseitinEncoder._encode_gate = legacy_encode_gate
    try:
        yield
    finally:
        (
            _tt.TruthTable.cofactor,
            _tt.TruthTable.depends_on,
            _tt.TruthTable.var,
            ImplicationEngine.examine,
            ImplicationEngine.propagate,
            SimGenGenerator._pick_candidate,
            DecisionEngine.candidate_rows,
            DecisionEngine.mffc_rank,
            _cubes.isop,
            _tseitin.TseitinEncoder.encode_cone,
            _tseitin.TseitinEncoder._encode_gate,
        ) = saved


@dataclass(slots=True)
class SweepTrace:
    """Everything that must match across engine variants."""

    cost_history: list[int]
    sat_calls: int
    proven: int
    disproven: int
    unknown: int
    vectors_simulated: int
    equivalences: list[tuple[int, int, bool]]
    classes: list[list[int]]
    seconds: float = 0.0
    sat_phase_s: float = 0.0
    waves: int = 0
    #: Where the seconds went (sim vs solver vs SAT-phase wall), from the
    #: sweep's own accounting — lets BENCH_perf.json answer "what got
    #: slower" without rerunning under a profiler.
    attribution: dict = field(default_factory=dict)

    def same_results(self, other: "SweepTrace") -> bool:
        return (
            self.cost_history == other.cost_history
            and self.sat_calls == other.sat_calls
            and self.proven == other.proven
            and self.disproven == other.disproven
            and self.unknown == other.unknown
            and self.vectors_simulated == other.vectors_simulated
            and self.equivalences == other.equivalences
            and self.classes == other.classes
        )

    def same_merges(self, other: "SweepTrace") -> bool:
        """The schedule-independent projection of a sweep's outcome.

        The serial path and the wave-parallel path visit pairs in
        different orders, so path-dependent counters (sat_calls,
        disproven, vectors_simulated) may differ — but truly-equivalent
        class members can never be split by any simulation vector, so the
        final merges, classes, and proven count must agree exactly.
        """
        return (
            sorted(self.equivalences) == sorted(other.equivalences)
            and sorted(map(tuple, self.classes))
            == sorted(map(tuple, other.classes))
            and self.proven == other.proven
            and self.cost_history == other.cost_history
        )


def _run_sweep(
    network: Network,
    strategy: str,
    engine: str,
    seed: int,
    jobs: int = 1,
    simgen_backend: str = "compiled",
    sat_backend: str = "compiled",
    repeats: int = 1,
) -> SweepTrace:
    """Run the sweep ``repeats`` times cold and keep the fastest run.

    Each repeat rebuilds the generator and engine from scratch with all
    memo caches cleared, so every measurement is a cold run; the fixed
    seed makes all repeats land on the same trajectory, and min-of-N
    suppresses scheduler noise (this matters on small single-core
    measurement hosts, where a single draw can be off by 50%).
    """
    best = None
    for _ in range(max(1, repeats)):
        clear_plan_caches()
        generator = (
            None
            if strategy.lower() == "none"
            else make_generator(
                strategy, network, seed=seed, simgen_backend=simgen_backend
            )
        )
        config = SweepConfig(
            seed=seed, engine=engine, jobs=jobs, sat_backend=sat_backend
        )
        sweep = SweepEngine(network, generator, config)
        start = time.perf_counter()
        result = sweep.run()
        seconds = time.perf_counter() - start
        solver_s = sweep.registry.as_dict().get(
            "sat.solver.solve_seconds.total_s", 0.0
        )
        if best is None or seconds < best[0]:
            best = (seconds, result, solver_s)
    seconds, result, solver_s = best
    metrics = result.metrics
    return SweepTrace(
        cost_history=list(metrics.cost_history),
        sat_calls=metrics.sat_calls,
        proven=metrics.proven,
        disproven=metrics.disproven,
        unknown=metrics.unknown,
        vectors_simulated=metrics.vectors_simulated,
        equivalences=list(result.equivalences),
        classes=result.classes.all_classes(),
        seconds=seconds,
        sat_phase_s=metrics.sat_phase_time,
        waves=metrics.waves,
        attribution={
            "sim_s": round(metrics.sim_time, 4),
            "simgen_s": round(metrics.simgen_time, 4),
            # Seconds inside CdclSolver.solve / the arena core — the
            # window the SAT-backend seam actually owns.
            "sat_solver_s": round(solver_s, 4),
            # The full checker window: cone encoding + clause shipping +
            # solving (what ``metrics.sat_time`` has always measured).
            "sat_check_s": round(metrics.sat_time, 4),
            "sat_phase_s": round(metrics.sat_phase_time, 4),
            "worker_sat_s": round(metrics.worker_sat_time, 4),
            "degraded_pairs": metrics.degraded_pairs,
        },
    )


def _measure_node_evals(
    networks: list[Network], width: int = 64, repeats: int = 20
) -> dict:
    """Raw simulation throughput of both backends, in node-evals/sec."""
    totals = {"reference": 0.0, "compiled": 0.0}
    evals = 0
    for network in networks:
        batch = PatternBatch.random_for(network, width, random.Random(0))
        words = batch.words()
        evals += network.num_gates * repeats
        clear_plan_caches()
        reference = Simulator(network)
        reference.run_words(words, width)  # plans built outside the timer
        start = time.perf_counter()
        for _ in range(repeats):
            reference.run_words(words, width)
        totals["reference"] += time.perf_counter() - start
        compiled = CompiledSimulator(network)
        start = time.perf_counter()
        for _ in range(repeats):
            compiled.run_words(words, width)
        totals["compiled"] += time.perf_counter() - start
    reference_rate = evals / totals["reference"] if totals["reference"] else 0.0
    compiled_rate = evals / totals["compiled"] if totals["compiled"] else 0.0
    return {
        "batch_width": width,
        "node_evals": evals,
        "reference_evals_per_sec": round(reference_rate),
        "compiled_evals_per_sec": round(compiled_rate),
        "speedup": round(compiled_rate / reference_rate, 2)
        if reference_rate
        else None,
    }


def _measure_simgen_kernel(
    networks: list[Network], targets_per_network: int = 24, repeats: int = 3
) -> dict:
    """Implication-fixpoint throughput: reference engine vs compiled kernel.

    For the deepest gates of each workload network, both backends assign
    each target 0 and 1 from a clean slate and run the fixpoint.  Work is
    counted in *examinations* (worklist pops — the unit both backends
    perform identically, asserted below), so the rates are directly
    comparable; the kernel must also force bit-identical assignment counts
    or the measurement is refused.
    """
    totals = {"reference": 0.0, "compiled": 0.0}
    examinations = 0
    forced = 0
    for network in networks:
        gates = [
            node.uid
            for node in network.nodes()
            if not node.is_pi and not node.is_const
        ]
        targets = sorted(gates, key=lambda uid: (network.level(uid), uid))[
            -targets_per_network:
        ]
        clear_plan_caches()
        engine = ImplicationEngine(network)
        start = time.perf_counter()
        for _ in range(repeats):
            for uid in targets:
                for gold in (0, 1):
                    assignment = Assignment(network)
                    assignment.assign(uid, gold)
                    engine.propagate(assignment, [uid])
        totals["reference"] += time.perf_counter() - start
        kernel = CompiledSimGenKernel(network)
        start = time.perf_counter()
        for _ in range(repeats):
            for uid in targets:
                for gold in (0, 1):
                    kernel.reset()
                    kernel.assign_uid(uid, gold)
                    kernel.propagate_uids([uid])
        totals["compiled"] += time.perf_counter() - start
        for key in ("examinations", "forced_assignments", "conflicts"):
            if kernel.impl_stats[key] != engine.stats[key]:
                raise ReproError(
                    f"compiled kernel diverged from the reference "
                    f"implication engine ({key}: {kernel.impl_stats[key]} "
                    f"vs {engine.stats[key]})"
                )
        examinations += engine.stats["examinations"]
        forced += engine.stats["forced_assignments"]
    reference_rate = (
        examinations / totals["reference"] if totals["reference"] else 0.0
    )
    compiled_rate = (
        examinations / totals["compiled"] if totals["compiled"] else 0.0
    )
    return {
        "targets_per_network": targets_per_network,
        "repeats": repeats,
        "examinations": examinations,
        "forced_assignments": forced,
        "reference_implications_per_sec": round(reference_rate),
        "compiled_implications_per_sec": round(compiled_rate),
        "speedup": round(compiled_rate / reference_rate, 2)
        if reference_rate
        else None,
    }


def _measure_simgen_vectors(
    networks: list[Network], seed: int = 0, rounds: int = 6, repeats: int = 3
) -> dict:
    """Guided-vector throughput: scalar compiled loop vs the batch driver.

    Both backends run the full SimGen configuration over the same initial
    class (every gate) for ``rounds`` generate() calls per network.  Work
    is counted in *emitted vectors*; before any rate is reported the two
    backends' frozen work — every vector of every round, the attempt
    report count, and the final RNG state — must be identical, or the
    measurement is refused: a faster generator that emits different
    vectors would be measuring the wrong thing.
    """
    totals = {"compiled": 0.0, "batch": 0.0}
    work: dict[str, list] = {}
    for backend in ("compiled", "batch"):
        best = None
        for _ in range(max(1, repeats)):
            clear_plan_caches()
            frozen = []
            elapsed = 0.0
            for network in networks:
                generator = make_generator(
                    "AI+DC+MFFC", network, seed=seed, simgen_backend=backend
                )
                classes = [
                    [node.uid for node in network.gates()]
                ]
                start = time.perf_counter()
                emitted = [generator.generate(classes) for _ in range(rounds)]
                elapsed += time.perf_counter() - start
                frozen.append(
                    (
                        [
                            [tuple(sorted(v.values.items())) for v in vectors]
                            for vectors in emitted
                        ],
                        len(generator.reports),
                        generator.rng.getstate(),
                    )
                )
            if best is None or elapsed < best[0]:
                best = (elapsed, frozen)
        totals[backend], work[backend] = best
    if work["compiled"] != work["batch"]:
        raise ReproError(
            "batch SimGen backend diverged from the compiled scalar loop "
            "on the vector-throughput microbench"
        )
    vectors = sum(
        len(vs) for per_net in work["compiled"] for vs in per_net[0]
    )
    attempts = sum(per_net[1] for per_net in work["compiled"])
    compiled_rate = vectors / totals["compiled"] if totals["compiled"] else 0.0
    batch_rate = vectors / totals["batch"] if totals["batch"] else 0.0
    return {
        "strategy": "AI+DC+MFFC",
        "rounds": rounds,
        "repeats": repeats,
        "vectors": vectors,
        "attempts": attempts,
        "batch_core": SIMGEN_CORE,
        "compiled_vectors_per_sec": round(compiled_rate),
        "batch_vectors_per_sec": round(batch_rate),
        "speedup": round(batch_rate / compiled_rate, 2)
        if compiled_rate
        else None,
    }


def _sat_microbench_instances(seed: int) -> list[list[list[int]]]:
    """Deterministic CNF instances for the solver-core microbench.

    Random 3-SAT near the phase transition (clause/var ratio ~4.26) plus a
    pigeonhole instance: the former dominates in propagations per conflict
    (the watch-list walking the arena layout optimizes), the latter is a
    deep-UNSAT learnt-clause workload that exercises reduce/GC.
    """
    rng = random.Random(seed)
    instances: list[list[list[int]]] = []
    for num_vars in (120, 140, 160):
        clauses = []
        for _ in range(int(num_vars * 4.26)):
            variables = rng.sample(range(1, num_vars + 1), 3)
            clauses.append(
                [v if rng.random() < 0.5 else -v for v in variables]
            )
        instances.append(clauses)
    # php(7, 6): pigeon p in hole h is var p * holes + h + 1.
    pigeons, holes = 7, 6
    php = [
        [p * holes + h + 1 for h in range(holes)] for p in range(pigeons)
    ]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                php.append([-(p1 * holes + h + 1), -(p2 * holes + h + 1)])
    instances.append(php)
    return instances


def _measure_sat_propagations(seed: int, repeats: int = 3) -> dict:
    """CDCL throughput of both solver backends, in propagations/sec.

    Work is counted in *unit propagations* — the unit both backends
    perform identically (the arena core replays the reference solver's
    trajectory bit-for-bit).  The identity is asserted per instance over
    the full counter set before any rate is reported; a faster solver
    that does different work would be measuring the wrong thing.
    """
    instances = _sat_microbench_instances(seed)
    totals = {"reference": 0.0, "compiled": 0.0}
    work: dict[str, list[tuple]] = {"reference": [], "compiled": []}
    propagations = 0
    conflicts = 0
    for backend in ("reference", "compiled"):
        factory = solver_class(backend)
        best = None
        for _ in range(max(1, repeats)):
            counters = []
            start = time.perf_counter()
            for clauses in instances:
                solver = factory()
                for clause in clauses:
                    solver.add_clause(clause)
                solver.solve()
                stats = solver.stats
                counters.append(
                    tuple(
                        stats.get(key, 0)
                        for key in (
                            "propagations",
                            "conflicts",
                            "decisions",
                            "restarts",
                            "learnts_deleted",
                        )
                    )
                )
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, counters)
        totals[backend] = best[0]
        work[backend] = best[1]
    if work["reference"] != work["compiled"]:
        raise ReproError(
            "compiled SAT backend diverged from the reference solver on "
            f"the microbench ({work['compiled']} vs {work['reference']})"
        )
    propagations = sum(row[0] for row in work["reference"])
    conflicts = sum(row[1] for row in work["reference"])
    reference_rate = (
        propagations / totals["reference"] if totals["reference"] else 0.0
    )
    compiled_rate = (
        propagations / totals["compiled"] if totals["compiled"] else 0.0
    )
    return {
        "instances": len(instances),
        "repeats": repeats,
        "propagations": propagations,
        "conflicts": conflicts,
        "compiled_core": SAT_CORE,
        "reference_propagations_per_sec": round(reference_rate),
        "compiled_propagations_per_sec": round(compiled_rate),
        "speedup": round(compiled_rate / reference_rate, 2)
        if reference_rate
        else None,
    }


def _measure_worker_scaling(
    networks: dict[tuple[str, int], Network],
    seed: int,
    quick: bool,
    verbose: bool,
) -> dict:
    """SAT-phase scaling of the process-parallel sweep path.

    Runs each scaling workload at every worker count and enforces the
    deterministic-merge contract before reporting any timing: the jobs=1
    merges must equal every parallel run's merges, and all parallel runs
    must be bit-identical to each other (verdicts, counterexamples, SAT
    calls, waves).  ``host_cpus`` is recorded because wall-clock speedup
    is physically bounded by the core count of the measuring host.
    """
    jobs_list = (1, 2) if quick else (1, 2, 4)
    workloads = SCALING_WORKLOADS[:1] if quick else SCALING_WORKLOADS
    rows = []
    for benchmark, strategy, copies in workloads:
        key = (benchmark, copies)
        if key not in networks:
            networks[key] = sweep_instance(benchmark, copies=copies)
        network = networks[key]
        traces: dict[int, SweepTrace] = {}
        for jobs in jobs_list:
            traces[jobs] = _run_sweep(
                network, strategy, "compiled", seed, jobs=jobs
            )
        serial = traces[1]
        parallel = [traces[jobs] for jobs in jobs_list if jobs > 1]
        identical = all(serial.same_merges(t) for t in parallel) and all(
            parallel[0].same_results(t) for t in parallel[1:]
        )
        if not identical:
            raise ReproError(
                f"parallel sweep diverged from the deterministic-merge "
                f"contract on {benchmark}/{strategy} (x{copies})"
            )
        runs = {}
        for jobs in jobs_list:
            trace = traces[jobs]
            runs[str(jobs)] = {
                "total_s": round(trace.seconds, 4),
                "sat_phase_s": round(trace.sat_phase_s, 4),
                "worker_sat_s": trace.attribution["worker_sat_s"],
                "sat_calls": trace.sat_calls,
                "waves": trace.waves,
                "sat_speedup": round(
                    serial.sat_phase_s / trace.sat_phase_s, 2
                )
                if trace.sat_phase_s
                else None,
            }
        rows.append(
            {
                "benchmark": benchmark,
                "strategy": strategy,
                "copies": copies,
                "identical": identical,
                "runs": runs,
            }
        )
        if verbose:
            scaling = "  ".join(
                f"j{jobs} {runs[str(jobs)]['sat_phase_s']:.3f}s"
                for jobs in jobs_list
            )
            print(
                f"{benchmark:>10s} {strategy:>10s} x{copies}  "
                f"sat-phase {scaling}  identical={identical}"
            )
    speedups = [
        run["sat_speedup"]
        for row in rows
        for run in row["runs"].values()
        if run["sat_speedup"]
    ]
    return {
        "host_cpus": os.cpu_count(),
        "jobs": list(jobs_list),
        "workloads": rows,
        "max_sat_speedup": max(speedups) if speedups else None,
        "note": (
            "wall-clock speedup is bounded by host_cpus; determinism "
            "(identical) holds for any worker count regardless"
        ),
    }


def check_against_baseline(
    report: dict, baseline_path: str, max_regression: float
) -> list[str]:
    """Per-workload regression gate against a committed report.

    Compares the machine-independent ``speedup_vs_seed`` ratios (seed and
    compiled are measured in the same process on the same host, so the
    ratio transfers across machines, unlike raw seconds).  Returns the
    list of failures; empty means the gate passes.
    """
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    baseline_rows = {
        (row["benchmark"], row["strategy"], row["copies"]): row.get(
            "speedup_vs_seed"
        )
        for row in baseline.get("workloads", ())
    }
    failures = []
    for row in report["workloads"]:
        key = (row["benchmark"], row["strategy"], row["copies"])
        expected = baseline_rows.get(key)
        achieved = row.get("speedup_vs_seed")
        if not expected or not achieved:
            continue
        floor = expected * (1.0 - max_regression)
        if achieved < floor:
            failures.append(
                f"{key[0]}/{key[1]} x{key[2]}: speedup_vs_seed "
                f"{achieved}x < {floor:.2f}x "
                f"(baseline {expected}x - {max_regression:.0%})"
            )
    return failures


def _geomean(values: list[float]) -> Optional[float]:
    positives = [v for v in values if v > 0]
    if not positives:
        return None
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def run_perf_bench(
    quick: bool = False,
    output: Optional[str] = "BENCH_perf.json",
    seed: int = 0,
    verbose: bool = True,
    repeats: int = 3,
) -> dict:
    """Measure the workload matrix; optionally write ``output``.

    Each variant row is the fastest of ``repeats`` cold runs (see
    :func:`_run_sweep`).  Returns the report dict.  Raises
    :class:`ReproError` if any engine variant diverges from the seed
    trajectory — a perf number for a sweep that computes something else
    is worse than no number.
    """
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    rows = []
    networks: dict[tuple[str, int], Network] = {}
    for benchmark, strategy, copies in workloads:
        key = (benchmark, copies)
        if key not in networks:
            networks[key] = sweep_instance(benchmark, copies=copies)
        network = networks[key]
        # The seed and reference variants run the dict-walking SimGen
        # engines; the compiled variant runs the array-lowered kernel.
        # All three must land on the same trajectory — that is the
        # cross-backend identity gate of repro.core.compiled.
        with seed_baseline():
            seed_trace = _run_sweep(
                network, strategy, "reference", seed,
                simgen_backend="reference", sat_backend="reference",
                repeats=repeats,
            )
        reference = _run_sweep(
            network, strategy, "reference", seed,
            simgen_backend="reference", sat_backend="reference",
            repeats=repeats,
        )
        compiled = _run_sweep(
            network, strategy, "compiled", seed,
            simgen_backend="compiled", sat_backend="compiled",
            repeats=repeats,
        )
        # The lane-batched generator is the default backend; measure it
        # against the scalar compiled kernel on the SimGen rows (the only
        # rows where the seam is live) under the same identity gate.
        batch = (
            _run_sweep(
                network, strategy, "compiled", seed,
                simgen_backend="batch", sat_backend="compiled",
                repeats=repeats,
            )
            if strategy in SIMGEN_STRATEGIES
            else None
        )
        variants = [("reference", reference), ("compiled", compiled)]
        if batch is not None:
            variants.append(("batch", batch))
        for label, trace in variants:
            if not seed_trace.same_results(trace):
                raise ReproError(
                    f"{label} engine diverged from the seed trajectory on "
                    f"{benchmark}/{strategy} (x{copies})"
                )
        row = {
            "benchmark": benchmark,
            "strategy": strategy,
            "copies": copies,
            "luts": network.num_gates,
            "sat_calls": seed_trace.sat_calls,
            "cost_final": seed_trace.cost_history[-1],
            "seed_s": round(seed_trace.seconds, 4),
            "reference_s": round(reference.seconds, 4),
            "compiled_s": round(compiled.seconds, 4),
            "speedup_vs_seed": round(
                seed_trace.seconds / compiled.seconds, 2
            )
            if compiled.seconds
            else None,
            "speedup_vs_reference": round(
                reference.seconds / compiled.seconds, 2
            )
            if compiled.seconds
            else None,
            "identical": True,
            "batch_s": round(batch.seconds, 4) if batch else None,
            # The lane-batching gate: guided-generation seconds of the
            # scalar compiled kernel vs the batch driver, same trajectory.
            "batch_simgen_speedup": round(
                compiled.attribution["simgen_s"]
                / batch.attribution["simgen_s"],
                2,
            )
            if batch and batch.attribution["simgen_s"]
            else None,
            "batch_attribution": batch.attribution if batch else None,
            "attribution": compiled.attribution,
            "reference_attribution": reference.attribution,
            # Solver-phase ratio of the backend seam specifically (total
            # seconds inside CdclSolver.solve vs the arena core).
            "sat_solver_speedup": round(
                reference.attribution["sat_solver_s"]
                / compiled.attribution["sat_solver_s"],
                2,
            )
            if compiled.attribution["sat_solver_s"]
            else None,
        }
        rows.append(row)
        if verbose:
            batch_note = (
                f"  batch simgen {row['batch_simgen_speedup']:.2f}x"
                if row["batch_simgen_speedup"]
                else ""
            )
            print(
                f"{benchmark:>10s} {strategy:>10s} x{copies}  "
                f"seed {row['seed_s']:8.3f}s  ref {row['reference_s']:8.3f}s  "
                f"compiled {row['compiled_s']:8.3f}s  "
                f"{row['speedup_vs_seed']:.2f}x vs seed{batch_note}"
            )

    node_evals = _measure_node_evals(list(networks.values()))
    simgen_kernel = _measure_simgen_kernel(list(networks.values()))
    simgen_vectors = _measure_simgen_vectors(list(networks.values()), seed)
    sat_core = _measure_sat_propagations(seed)
    worker_scaling = _measure_worker_scaling(networks, seed, quick, verbose)
    total_seed = sum(r["seed_s"] for r in rows)
    total_reference = sum(r["reference_s"] for r in rows)
    total_compiled = sum(r["compiled_s"] for r in rows)
    summary = {
        "total_seed_s": round(total_seed, 3),
        "total_reference_s": round(total_reference, 3),
        "total_compiled_s": round(total_compiled, 3),
        "end_to_end_speedup_vs_seed": round(total_seed / total_compiled, 2)
        if total_compiled
        else None,
        "end_to_end_speedup_vs_reference": round(
            total_reference / total_compiled, 2
        )
        if total_compiled
        else None,
        "geomean_speedup_vs_seed": round(
            _geomean([r["speedup_vs_seed"] or 0.0 for r in rows]) or 0.0, 2
        ),
        "geomean_speedup_vs_reference": round(
            _geomean([r["speedup_vs_reference"] or 0.0 for r in rows]) or 0.0,
            2,
        ),
        "geomean_batch_simgen_speedup": round(
            _geomean(
                [
                    r["batch_simgen_speedup"]
                    for r in rows
                    if r["batch_simgen_speedup"]
                ]
            )
            or 0.0,
            2,
        ),
    }
    report = {
        "schema": 1,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "quick": quick,
        "repeats": repeats,
        "node_evals_per_sec": node_evals,
        "simgen_implications_per_sec": simgen_kernel,
        "simgen_vectors_per_sec": simgen_vectors,
        "sat_propagations_per_sec": sat_core,
        "workloads": rows,
        "worker_scaling": worker_scaling,
        "summary": summary,
    }
    if verbose:
        print(
            f"node-evals/sec: reference "
            f"{node_evals['reference_evals_per_sec']:,} -> compiled "
            f"{node_evals['compiled_evals_per_sec']:,} "
            f"({node_evals['speedup']}x); simgen implications/sec: "
            f"reference {simgen_kernel['reference_implications_per_sec']:,} "
            f"-> compiled "
            f"{simgen_kernel['compiled_implications_per_sec']:,} "
            f"({simgen_kernel['speedup']}x); simgen vectors/sec: "
            f"compiled {simgen_vectors['compiled_vectors_per_sec']:,} "
            f"-> batch {simgen_vectors['batch_vectors_per_sec']:,} "
            f"({simgen_vectors['speedup']}x, "
            f"core={simgen_vectors['batch_core']}); sat propagations/sec: "
            f"reference {sat_core['reference_propagations_per_sec']:,} "
            f"-> compiled "
            f"{sat_core['compiled_propagations_per_sec']:,} "
            f"({sat_core['speedup']}x, core={sat_core['compiled_core']}); "
            f"end-to-end sweep "
            f"{summary['end_to_end_speedup_vs_seed']}x vs seed, "
            f"{summary['end_to_end_speedup_vs_reference']}x vs reference"
        )
    if output:
        from repro.runtime.atomicio import atomic_write_json

        atomic_write_json(output, report)
        if verbose:
            print(f"wrote {output}")
    return report


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point (also exposed as ``repro.tools bench``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench_perf", description="sweep performance regression harness"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small workload matrix (CI smoke)"
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_perf.json",
        help="report path ('' to skip writing)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="cold runs per variant row; the fastest is reported "
        "(default 3 — min-of-N suppresses scheduler noise)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless end-to-end speedup vs seed reaches this factor",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="committed BENCH_perf.json to gate per-workload "
        "speedup_vs_seed ratios against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional drop of a workload's speedup_vs_seed "
        "relative to --baseline (default 0.25)",
    )
    args = parser.parse_args(argv)
    try:
        report = run_perf_bench(
            quick=args.quick,
            output=args.output or None,
            seed=args.seed,
            repeats=args.repeats,
        )
    except KeyboardInterrupt:
        # No partial report: a perf trajectory measured under an interrupt
        # would not be comparable (see docs/ROBUSTNESS.md on why budgets
        # are deliberately NOT used here — trajectory identity).
        print("interrupted: no report written", file=sys.stderr)
        return 130
    if args.min_speedup is not None:
        achieved = report["summary"]["end_to_end_speedup_vs_seed"] or 0.0
        if achieved < args.min_speedup:
            print(
                f"FAIL: end-to-end speedup {achieved}x < "
                f"required {args.min_speedup}x"
            )
            return 1
    if args.baseline is not None:
        failures = check_against_baseline(
            report, args.baseline, args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(f"perf gate passed vs {args.baseline}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
