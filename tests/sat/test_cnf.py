"""CNF container and DIMACS I/O."""

import pytest

from repro.errors import SatError
from repro.sat.cnf import Cnf


class TestBasics:
    def test_new_var_sequence(self):
        cnf = Cnf()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2
        assert cnf.num_vars == 2

    def test_add_clause_grows_vars(self):
        cnf = Cnf()
        cnf.add_clause([3, -5])
        assert cnf.num_vars == 5
        assert len(cnf) == 1

    def test_zero_literal_rejected(self):
        with pytest.raises(SatError):
            Cnf().add_clause([0])

    def test_negative_num_vars_rejected(self):
        with pytest.raises(SatError):
            Cnf(-1)

    def test_extend(self):
        cnf = Cnf()
        cnf.extend([[1], [2, -1]])
        assert len(cnf) == 2


class TestEvaluate:
    def test_satisfied(self):
        cnf = Cnf()
        cnf.add_clause([1, -2])
        assert cnf.evaluate({1: True, 2: True})

    def test_unsatisfied(self):
        cnf = Cnf()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert not cnf.evaluate({1: True})

    def test_missing_vars_default_false(self):
        cnf = Cnf()
        cnf.add_clause([-1])
        assert cnf.evaluate({})


class TestBruteForce:
    def test_finds_model(self):
        cnf = Cnf()
        cnf.add_clause([1, 2])
        cnf.add_clause([-1])
        model = cnf.brute_force()
        assert model is not None
        assert model[2] and not model[1]

    def test_reports_unsat(self):
        cnf = Cnf()
        cnf.add_clause([1])
        cnf.add_clause([-1])
        assert cnf.brute_force() is None

    def test_cap(self):
        cnf = Cnf(21)
        with pytest.raises(SatError):
            cnf.brute_force()


class TestDimacs:
    def test_roundtrip(self):
        cnf = Cnf()
        cnf.add_clause([1, -2, 3])
        cnf.add_clause([-3])
        text = cnf.to_dimacs()
        parsed = Cnf.from_dimacs(text)
        assert parsed.num_vars == cnf.num_vars
        assert parsed.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        cnf = Cnf.from_dimacs(text)
        assert cnf.clauses == [(1, -2)]

    def test_parse_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        cnf = Cnf.from_dimacs(text)
        assert cnf.clauses == [(1, 2, 3)]

    def test_missing_header(self):
        with pytest.raises(SatError):
            Cnf.from_dimacs("1 2 0\n")

    def test_bad_header(self):
        with pytest.raises(SatError):
            Cnf.from_dimacs("p sat 2 1\n")
