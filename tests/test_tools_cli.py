"""The repro.tools command-line interface."""

import pytest

from repro.io import blif_text, read_bench, read_blif
from repro.tools.cli import load_network, main, save_network
from tests.conftest import networks_equal, random_network


@pytest.fixture
def blif_file(tmp_path):
    net = random_network(seed=3, num_inputs=5, num_gates=14)
    path = tmp_path / "design.blif"
    path.write_text(blif_text(net), encoding="utf-8")
    return net, path


class TestLoadSave:
    def test_roundtrip_blif(self, tmp_path):
        net = random_network(seed=1)
        path = tmp_path / "x.blif"
        save_network(net, str(path))
        assert networks_equal(net, load_network(str(path)))

    def test_roundtrip_bench(self, tmp_path):
        net = random_network(seed=1)
        path = tmp_path / "x.bench"
        save_network(net, str(path))
        assert networks_equal(net, load_network(str(path)))

    def test_unknown_extension(self, tmp_path):
        net = random_network(seed=1)
        with pytest.raises(Exception):
            save_network(net, str(tmp_path / "x.v"))


class TestCommands:
    def test_stats(self, blif_file, capsys):
        net, path = blif_file
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        # Parsing reconstructs only the PO cones, so compare against the
        # re-loaded network rather than the in-memory original.
        loaded = load_network(str(path))
        assert f"gates  : {loaded.num_gates}" in out
        assert f"PIs    : {len(net.pis)}" in out

    def test_map_writes_functionally_equal_netlist(self, blif_file, tmp_path):
        net, path = blif_file
        out_path = tmp_path / "mapped.bench"
        assert main(["map", str(path), "-o", str(out_path), "-k", "4"]) == 0
        mapped = read_bench(out_path)
        assert networks_equal(net, mapped)
        assert all(n.num_fanins <= 4 for n in mapped.gates())

    def test_strash(self, blif_file, tmp_path):
        net, path = blif_file
        out_path = tmp_path / "hashed.blif"
        assert main(["strash", str(path), "-o", str(out_path)]) == 0
        assert networks_equal(net, read_blif(out_path))

    def test_sweep_with_reduction(self, blif_file, tmp_path, capsys):
        net, path = blif_file
        out_path = tmp_path / "reduced.blif"
        code = main(
            ["sweep", str(path), "-o", str(out_path), "--iterations", "3"]
        )
        assert code == 0
        assert "SAT calls" in capsys.readouterr().out
        assert networks_equal(net, read_blif(out_path))

    def test_sweep_parallel_jobs(self, blif_file, tmp_path, capsys):
        net, path = blif_file
        out_path = tmp_path / "reduced.blif"
        code = main(
            [
                "sweep", str(path), "-o", str(out_path),
                "--iterations", "3", "--jobs", "2",
            ]
        )
        assert code == 0
        assert "SAT calls" in capsys.readouterr().out
        assert networks_equal(net, read_blif(out_path))

    def test_cec_parallel_jobs(self, blif_file, tmp_path, capsys):
        net, path = blif_file
        other = tmp_path / "copy.blif"
        other.write_text(blif_text(net), encoding="utf-8")
        code = main(
            ["cec", str(path), str(other), "--iterations", "3", "--jobs", "2"]
        )
        assert code == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_cec_equivalent(self, blif_file, tmp_path, capsys):
        net, path = blif_file
        other = tmp_path / "copy.blif"
        other.write_text(blif_text(net), encoding="utf-8")
        code = main(["cec", str(path), str(other), "--iterations", "3"])
        assert code == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_cec_different_returns_nonzero(self, blif_file, tmp_path, capsys):
        net, path = blif_file
        mutated, _ = net.map_clone()
        victim = next(n for n in mutated.gates() if n.num_fanins == 2)
        victim.table = ~victim.table
        if networks_equal(net, mutated):
            pytest.skip("mutation unobservable")
        other = tmp_path / "bad.blif"
        other.write_text(blif_text(mutated), encoding="utf-8")
        code = main(["cec", str(path), str(other), "--iterations", "3"])
        assert code == 1
        assert "DIFFERENT" in capsys.readouterr().out

    def test_putontop(self, blif_file, tmp_path):
        net, path = blif_file
        out_path = tmp_path / "tower.blif"
        assert main(["putontop", str(path), "-o", str(out_path), "-n", "2"]) == 0
        tower = read_blif(out_path)
        loaded = load_network(str(path))
        assert tower.num_gates >= 2 * loaded.num_gates
        assert len(tower.pos) == len(net.pos)

    def test_gen_benchmark(self, tmp_path):
        out_path = tmp_path / "alu4.bench"
        assert main(["gen", "alu4", "-o", str(out_path)]) == 0
        assert read_bench(out_path).num_gates > 0

    def test_error_path(self, tmp_path, capsys):
        missing = tmp_path / "missing.v"
        missing.write_text("", encoding="utf-8")
        assert main(["stats", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err


class TestAagSupport:
    def test_roundtrip_aag(self, tmp_path):
        net = random_network(seed=2)
        path = tmp_path / "x.aag"
        save_network(net, str(path))
        assert networks_equal(net, load_network(str(path)))

    def test_map_from_aag(self, tmp_path):
        net = random_network(seed=2)
        src = tmp_path / "in.aag"
        dst = tmp_path / "out.blif"
        save_network(net, str(src))
        assert main(["map", str(src), "-o", str(dst), "-k", "6"]) == 0
        assert networks_equal(net, load_network(str(dst)))


class TestConvertAndSim:
    def test_convert_blif_to_aag(self, blif_file, tmp_path, capsys):
        net, path = blif_file
        out_path = tmp_path / "out.aag"
        assert main(["convert", str(path), "-o", str(out_path)]) == 0
        assert networks_equal(net, load_network(str(out_path)))

    def test_convert_bench_to_blif(self, tmp_path):
        net = random_network(seed=6)
        src = tmp_path / "in.bench"
        save_network(net, str(src))
        dst = tmp_path / "out.blif"
        assert main(["convert", str(src), "-o", str(dst)]) == 0
        assert networks_equal(net, load_network(str(dst)))

    def test_sim_reports_quality(self, blif_file, capsys):
        net, path = blif_file
        assert main(["sim", str(path), "--patterns", "64"]) == 0
        out = capsys.readouterr().out
        assert "toggle rate" in out
        assert "patterns          : 64" in out


class TestTraceCommand:
    def test_sweep_trace_validates_and_summarizes(
        self, blif_file, tmp_path, capsys
    ):
        _, path = blif_file
        trace_path = tmp_path / "sweep.jsonl"
        assert main(["sweep", str(path), "--trace", str(trace_path)]) == 0
        assert trace_path.exists()
        assert main(["trace", str(trace_path), "--validate"]) == 0
        assert "trace OK" in capsys.readouterr().out
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "per-phase attribution" in out
        assert "command=sweep" in out

    def test_cec_trace_validates(self, blif_file, tmp_path, capsys):
        _, path = blif_file
        trace_path = tmp_path / "cec.jsonl"
        assert main(
            ["cec", str(path), str(path), "--trace", str(trace_path)]
        ) == 0
        assert main(["trace", str(trace_path), "--validate"]) == 0

    def test_trace_validate_rejects_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type":"event","name":"x","t":0.0,"i":0}\n')
        assert main(["trace", str(bad), "--validate"]) == 1
        assert "invalid:" in capsys.readouterr().err

    def test_trace_missing_file_errors(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestResumeGuards:
    """``--resume`` misuse fails fast with a one-line error, exit 2."""

    def test_sweep_resume_without_journal(self, blif_file, capsys):
        _, path = blif_file
        assert main(["sweep", str(path), "--resume"]) == 2
        err = capsys.readouterr().err
        assert err.strip() == "error: --resume requires --journal FILE"

    def test_cec_resume_without_journal(self, blif_file, capsys):
        _, path = blif_file
        assert main(["cec", str(path), str(path), "--resume"]) == 2
        err = capsys.readouterr().err
        assert err.strip() == "error: --resume requires --journal FILE"

    def test_resume_with_mismatched_fingerprint(
        self, blif_file, tmp_path, capsys
    ):
        _, path = blif_file
        journal = tmp_path / "j.jsonl"
        assert main(
            ["sweep", str(path), "--journal", str(journal),
             "--iterations", "2"]
        ) == 0
        capsys.readouterr()
        # Different seed => different config fingerprint: refuse cleanly.
        code = main(
            ["sweep", str(path), "--journal", str(journal), "--resume",
             "--iterations", "2", "--seed", "5"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        assert "different sweep configuration" in err

    def test_existing_journal_without_resume_refused(
        self, blif_file, tmp_path, capsys
    ):
        _, path = blif_file
        journal = tmp_path / "j.jsonl"
        assert main(
            ["sweep", str(path), "--journal", str(journal),
             "--iterations", "2"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["sweep", str(path), "--journal", str(journal),
             "--iterations", "2"]
        ) == 2
        err = capsys.readouterr().err
        assert "already exists" in err
        assert "--resume" in err
