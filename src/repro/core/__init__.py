"""SimGen core: Algorithm 1, implication (§4), decision heuristics (§5).

The public entry points are :func:`~repro.core.strategies.make_generator`
(build any of the paper's strategies by name) and the generator classes
themselves for fine-grained control.
"""

from repro.core.assignment import Assignment, Conflict
from repro.core.batch import BatchSimGenGenerator
from repro.core.compiled import (
    GENERATOR_BACKENDS,
    CompiledSimGenGenerator,
    CompiledSimGenKernel,
    KernelConflict,
    adapt_backend,
    clear_transition_cache,
    transition_cache_info,
)
from repro.core.decision import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    DecisionEngine,
    DecisionResult,
    DecisionStrategy,
    roulette_select,
)
from repro.core.generator import (
    BaseVectorGenerator,
    GenerationReport,
    SimGenGenerator,
    TargetedVectorGenerator,
)
from repro.core.hybrid import HybridGenerator, classes_cost
from repro.core.implication import (
    ImplicationEngine,
    ImplicationOutcome,
    ImplicationStrategy,
)
from repro.core.outgold import (
    alternating_outgold,
    level_alternating_outgold,
    random_outgold,
    select_targets,
)
from repro.core.random_gen import OneDistanceGenerator, RandomGenerator
from repro.core.reverse import ReverseSimGenerator
from repro.core.satgen import SatCexGenerator
from repro.core.strategies import SIMGEN, STRATEGY_NAMES, factory, make_generator

__all__ = [
    "Assignment",
    "BaseVectorGenerator",
    "BatchSimGenGenerator",
    "CompiledSimGenGenerator",
    "CompiledSimGenKernel",
    "Conflict",
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "DecisionEngine",
    "DecisionResult",
    "DecisionStrategy",
    "GENERATOR_BACKENDS",
    "GenerationReport",
    "HybridGenerator",
    "ImplicationEngine",
    "ImplicationOutcome",
    "ImplicationStrategy",
    "KernelConflict",
    "OneDistanceGenerator",
    "RandomGenerator",
    "SatCexGenerator",
    "ReverseSimGenerator",
    "SIMGEN",
    "STRATEGY_NAMES",
    "SimGenGenerator",
    "TargetedVectorGenerator",
    "adapt_backend",
    "alternating_outgold",
    "classes_cost",
    "clear_transition_cache",
    "factory",
    "level_alternating_outgold",
    "make_generator",
    "random_outgold",
    "roulette_select",
    "select_targets",
    "transition_cache_info",
]
