"""Table 2: SAT calls and SAT time, RevS vs SimGen (§6.3 and §6.4).

The upper table runs the full flow (random round, 20 guided iterations,
then SAT sweeping to completion) per benchmark for RevS and SimGen
(AI+DC+MFFC), reporting the SAT-phase query count and wall-clock time.
The lower table repeats this on ``&putontop``-stacked instances (§6.4);
the copy counts live in :data:`repro.experiments.config.SCALED_BENCHMARKS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.strategies import SIMGEN
from repro.experiments.config import (
    ExperimentConfig,
    SCALED_BENCHMARKS,
)
from repro.experiments.metrics import mean, safe_ratio
from repro.experiments.report import format_table
from repro.experiments.runner import BenchmarkRun, ExperimentRunner


@dataclass(slots=True)
class Table2Row:
    """One benchmark's RevS-vs-SimGen SAT comparison."""

    benchmark: str
    copies: int
    revs: BenchmarkRun
    sgen: BenchmarkRun

    @property
    def call_ratio(self) -> float:
        return safe_ratio(self.sgen.sat_calls, self.revs.sat_calls)

    @property
    def time_ratio(self) -> float:
        return safe_ratio(self.sgen.sat_time, self.revs.sat_time)


@dataclass(slots=True)
class Table2Result:
    """All rows of one Table-2 variant (plain or scaled)."""

    rows: list[Table2Row] = field(default_factory=list)
    scaled: bool = False

    def render(self) -> str:
        headers = [
            "Bmk",
            "SAT calls RevS",
            "SAT calls SGen",
            "SAT time RevS (s)",
            "SAT time SGen (s)",
        ]
        table_rows = []
        for row in self.rows:
            label = row.benchmark
            if row.copies > 1:
                label = f"{label} ({row.copies})"
            table_rows.append(
                [
                    label,
                    row.revs.sat_calls,
                    row.sgen.sat_calls,
                    f"{row.revs.sat_time:.3f}",
                    f"{row.sgen.sat_time:.3f}",
                ]
            )
        title = "Table 2"
        title += " (scaled &putontop instances)" if self.scaled else ""
        text = format_table(headers, table_rows, title=title)
        # Aggregate (sum-based) ratios: per-benchmark time ratios are
        # meaningless when the baseline finishes in microseconds.
        total_calls = safe_ratio(
            sum(r.sgen.sat_calls for r in self.rows),
            sum(r.revs.sat_calls for r in self.rows),
        )
        total_time = safe_ratio(
            sum(r.sgen.sat_time for r in self.rows),
            sum(r.revs.sat_time for r in self.rows),
        )
        wins = sum(1 for r in self.rows if r.sgen.sat_calls < r.revs.sat_calls)
        ties = sum(1 for r in self.rows if r.sgen.sat_calls == r.revs.sat_calls)
        text += (
            f"\nAggregate SGen/RevS: SAT calls {total_calls:.3f}, "
            f"SAT time {total_time:.3f}"
            f"  (SGen fewer calls on {wins}/{len(self.rows)}, ties {ties})"
        )
        return text


def run_table2(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ExperimentRunner] = None,
    scaled: bool = False,
    scaled_benchmarks: Optional[Sequence[tuple[str, int]]] = None,
    verbose: bool = False,
) -> Table2Result:
    """Execute Table 2 (upper) or the §6.4 scaled variant (lower)."""
    config = config or ExperimentConfig()
    runner = runner or ExperimentRunner(config)
    if scaled:
        workload = list(scaled_benchmarks or SCALED_BENCHMARKS)
    else:
        workload = [(name, 1) for name in config.benchmarks]
    result = Table2Result(scaled=scaled)
    for benchmark, copies in workload:
        revs = runner.run(benchmark, "RevS", with_sat=True, copies=copies)
        sgen = runner.run(benchmark, SIMGEN, with_sat=True, copies=copies)
        result.rows.append(
            Table2Row(benchmark=benchmark, copies=copies, revs=revs, sgen=sgen)
        )
        if verbose:
            print(
                f"  {benchmark:10s} x{copies} "
                f"calls {revs.sat_calls:4d}->{sgen.sat_calls:4d} "
                f"time {revs.sat_time:6.2f}->{sgen.sat_time:6.2f}s"
            )
    return result
