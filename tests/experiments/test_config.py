"""Experiment configuration integrity."""

from repro.benchgen import benchmark_names
from repro.experiments.config import (
    ExperimentConfig,
    QUICK_BENCHMARKS,
    SCALED_BENCHMARKS,
)


class TestDefaults:
    def test_default_covers_all_42(self):
        config = ExperimentConfig()
        assert list(config.benchmarks) == benchmark_names()

    def test_paper_parameters(self):
        config = ExperimentConfig()
        assert config.k == 6  # "if -K 6"
        assert config.random_rounds == 1  # one round of random simulation
        assert config.iterations == 20  # SimGen runs for 20 iterations

    def test_quick_subset_valid(self):
        names = set(benchmark_names())
        assert set(QUICK_BENCHMARKS) <= names
        assert len(QUICK_BENCHMARKS) >= 8

    def test_scaled_workload_valid(self):
        names = set(benchmark_names())
        for benchmark, copies in SCALED_BENCHMARKS:
            assert benchmark in names
            assert copies >= 2

    def test_scaled_matches_paper_benchmark_set(self):
        # The paper's Table 2 lower half uses these nine circuits.
        paper_set = {
            "alu4", "square", "arbiter", "b15_C2", "b17_C",
            "b17_C2", "b20_C2", "b21_C2", "b22_C",
        }
        assert {name for name, _ in SCALED_BENCHMARKS} == paper_set

    def test_quick_constructor(self):
        config = ExperimentConfig.quick()
        assert config.benchmarks == QUICK_BENCHMARKS
