"""VerdictCache / CacheSession: keying, bounds, durability, transfer."""

import pytest

from repro.errors import JournalError
from repro.io import bench_text, parse_bench
from repro.runtime.journal import config_fingerprint
from repro.sat.solver import SatResult
from repro.serve import VerdictCache, fingerprint_key
from repro.simulation.patterns import InputVector
from repro.sweep import SweepConfig
from tests.conftest import random_network


def sample_payload(a="sa", b="sb", outcome="unsat"):
    return {
        "a": a, "b": b, "c": 0, "l": 1000,
        "o": outcome, "v": None, "cf": 3, "pr": 17, "r": 0,
    }


def sample_key(fp=None, a="sa", b="sb"):
    # Store keys carry the canonical-JSON fingerprint (what sessions build).
    return (fp or fingerprint_key({"cfg": 1}), a, b, False, 1000)


class TestFingerprintKey:
    def test_order_insensitive(self):
        assert fingerprint_key({"a": 1, "b": 2}) == fingerprint_key(
            {"b": 2, "a": 1}
        )

    def test_distinguishes_values(self):
        assert fingerprint_key({"a": 1}) != fingerprint_key({"a": 2})


class TestStoreBounds:
    def test_hit_miss_counters(self):
        cache = VerdictCache()
        key = sample_key()
        assert cache.get(key) is None
        assert cache.put(key, sample_payload())
        assert cache.get(key) == sample_payload()
        stats = cache.stats
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["inserts"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

    def test_duplicate_put_is_noop(self):
        cache = VerdictCache()
        key = sample_key()
        assert cache.put(key, sample_payload())
        assert not cache.put(key, sample_payload())
        assert cache.stats["inserts"] == 1

    def test_eviction_respects_lru_touch(self):
        one = len(
            __import__(
                "repro.runtime.journal", fromlist=["_encode_line"]
            )._encode_line(sample_payload())
        )
        cache = VerdictCache(max_bytes=3 * one)
        for name in ("k0", "k1", "k2"):
            cache.put(sample_key(a=name), sample_payload(a=name))
        cache.get(sample_key(a="k0"))  # touch: k0 becomes most recent
        cache.put(sample_key(a="k3"), sample_payload(a="k3"))  # evicts k1
        assert cache.get(sample_key(a="k0")) is not None
        assert cache.get(sample_key(a="k1")) is None
        assert cache.stats["evictions"] == 1
        assert cache.stats["bytes"] <= 3 * one

    def test_consume_stats_returns_deltas(self):
        cache = VerdictCache()
        cache.put(sample_key(), sample_payload())
        first = cache.consume_stats()
        assert first["inserts"] == 1
        assert first["entries"] == 1
        assert cache.consume_stats() == {}
        cache.get(sample_key())
        assert cache.consume_stats() == {"hits": 1}


class TestDurability:
    def test_reload_round_trip(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with VerdictCache(path=str(path)) as cache:
            cache.put(sample_key(a="x"), sample_payload(a="x"))
            cache.put(sample_key(a="y"), sample_payload(a="y"))
        with VerdictCache(path=str(path)) as reloaded:
            assert reloaded.stats["loaded"] == 2
            assert reloaded.get(sample_key(a="x")) == sample_payload(a="x")
            assert reloaded.get(sample_key(a="y")) == sample_payload(a="y")

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with VerdictCache(path=str(path)) as cache:
            cache.put(sample_key(a="x"), sample_payload(a="x"))
        intact = path.read_bytes()
        path.write_bytes(intact + b"deadbeef\tgarbage")
        with VerdictCache(path=str(path)) as reloaded:
            assert reloaded.stats["loaded"] == 1
        assert path.read_bytes() == intact

    def test_appends_survive_alongside_loaded_prefix(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        with VerdictCache(path=str(path)) as cache:
            cache.put(sample_key(a="x"), sample_payload(a="x"))
        with VerdictCache(path=str(path)) as cache:
            cache.put(sample_key(a="y"), sample_payload(a="y"))
        with VerdictCache(path=str(path)) as reloaded:
            assert reloaded.stats["loaded"] == 2

    def test_version_mismatch_refused(self, tmp_path):
        from repro.runtime.journal import _encode_line

        path = tmp_path / "cache.jsonl"
        path.write_bytes(_encode_line({"kind": "header", "version": 99}))
        with pytest.raises(JournalError, match="version"):
            VerdictCache(path=str(path))


class TestSessionTransfer:
    """Verdicts recorded against one network replay against another."""

    def fingerprint(self):
        return config_fingerprint(SweepConfig(seed=5), generator=None)

    def test_cross_network_replay_with_vector(self):
        from repro.transforms.strash import node_signatures

        net_a = random_network(seed=4, num_inputs=5, num_gates=18)
        net_b = parse_bench(bench_text(net_a))  # same structure, new uids
        gates_a = [n.uid for n in net_a.gates()][:2]
        # The re-parse renumbers uids and may reorder gates; find net_b's
        # counterparts by structural signature (how the cache keys them).
        sig_a = node_signatures(net_a)
        by_sig = {
            sig: uid for uid, sig in node_signatures(net_b).items()
        }
        gates_b = [by_sig[sig_a[uid]] for uid in gates_a]
        cache = VerdictCache()
        writer = cache.session()
        writer.bind(net_a, self.fingerprint())
        vector = InputVector({pi: i % 2 for i, pi in enumerate(net_a.pis)})
        assert writer.record(
            gates_a[0], gates_a[1], False, 1000,
            SatResult.SAT, vector, 7, 40,
        )
        assert writer.stats["appends"] == 1

        reader = cache.session()
        reader.bind(net_b, self.fingerprint())
        # Matching cone signatures mean the verdict replays...
        replay = reader.lookup(gates_b[0], gates_b[1], False, 1000)
        assert replay is not None
        assert replay.outcome is SatResult.SAT
        assert replay.conflicts == 7
        # ...and the positional vector decodes onto net_b's own PI uids.
        assert replay.vector.values == {
            pi: i % 2 for i, pi in enumerate(net_b.pis)
        }
        assert reader.stats["replayed_verdicts"] == 1

    def test_fingerprint_partitions_verdicts(self):
        net = random_network(seed=4, num_inputs=5, num_gates=18)
        gates = [n.uid for n in net.gates()]
        cache = VerdictCache()
        writer = cache.session()
        writer.bind(net, self.fingerprint())
        writer.record(
            gates[0], gates[1], False, 1000, SatResult.UNSAT, None, 0, 5
        )
        other = cache.session()
        other.bind(
            net, config_fingerprint(SweepConfig(seed=6), generator=None)
        )
        assert other.lookup(gates[0], gates[1], False, 1000) is None
        assert other.stats["misses"] == 1

    def test_unbound_session_refuses(self):
        session = VerdictCache().session()
        with pytest.raises(JournalError, match="not bound"):
            session.lookup(0, 1, False, None)

    def test_consume_stats_deltas(self):
        net = random_network(seed=4, num_inputs=5, num_gates=18)
        gates = [n.uid for n in net.gates()]
        session = VerdictCache().session()
        session.bind(net, self.fingerprint())
        session.lookup(gates[0], gates[1], False, None)
        assert session.consume_stats() == {"misses": 1}
        assert session.consume_stats() == {}
