"""Stacking copies of a network (ABC's ``&putontop``, paper §6.4).

To scale benchmark complexity, several copies of a network are stacked:
the POs of copy *i* drive the PIs of copy *i+1*.  When a copy has more
outputs than the next needs inputs, the spare outputs become POs of the
stack; when it has fewer, fresh PIs are created — exactly the paper's
description.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NetworkError
from repro.network.network import Network


def put_on_top(
    network: Network, copies: int, name: Optional[str] = None
) -> Network:
    """Stack ``copies`` instances of ``network``; returns the tower.

    ``copies=1`` returns a plain renumbered copy.
    """
    if copies < 1:
        raise NetworkError(f"copies must be >= 1, got {copies}")
    stacked = Network(name or f"{network.name}_x{copies}")

    def instantiate(drivers: list[int], tag: int) -> list[int]:
        """Copy the network once; returns its PO driver nodes in order."""
        mapping: dict[int, int] = {}
        for position, pi in enumerate(network.pis):
            if position < len(drivers):
                mapping[pi] = drivers[position]
            else:
                mapping[pi] = stacked.add_pi(f"c{tag}_{network.node(pi).label()}")
        for uid in network.topological_order():
            node = network.node(uid)
            if node.is_pi:
                continue
            mapping[uid] = stacked.add_gate(
                node.table, tuple(mapping[f] for f in node.fanins)
            )
        return [mapping[uid] for _, uid in network.pos]

    outputs = instantiate([], 0)
    for tag in range(1, copies):
        consumed = min(len(outputs), len(network.pis))
        spare = outputs[consumed:]
        for j, uid in enumerate(spare):
            stacked.add_po(uid, f"spare{tag}_{j}")
        outputs = instantiate(outputs[:consumed], tag)
    for (po_name, _), uid in zip(network.pos, outputs):
        stacked.add_po(uid, f"top_{po_name}")
    for j, uid in enumerate(outputs[len(network.pos):]):  # pragma: no cover
        stacked.add_po(uid, f"top_extra{j}")
    return stacked
