"""Sweep-as-a-service: persistent daemon, admission control, verdict cache.

See :doc:`docs/SERVING.md` for the API, the cache keying, and the
determinism contract.  The fast path: :class:`SweepService` runs jobs on
the existing engines with a :class:`CacheSession` plugged in as the
verdict journal, so re-submitted or lightly-edited netlists replay every
verdict whose cone signatures match and solve only the delta.
"""

from repro.serve.admission import AdmissionQueue, ClientBudget
from repro.serve.cache import CacheSession, VerdictCache, fingerprint_key
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import (
    CONFIG_DEFAULTS,
    SweepService,
    build_server,
    run_server,
)

__all__ = [
    "AdmissionQueue",
    "CacheSession",
    "ClientBudget",
    "CONFIG_DEFAULTS",
    "ServeClient",
    "ServeError",
    "SweepService",
    "VerdictCache",
    "build_server",
    "fingerprint_key",
    "run_server",
]
