"""Worker-pool supervision policy: heartbeats, bounded retry, backoff.

PR 3's :class:`~repro.runtime.pool.CheckerPool` already detects a dead
worker (liveness poll + fence-respawn protocol) but degraded every pair
lost inside it straight to UNKNOWN.  This module holds the *policy* side
of doing better:

* :class:`RetryPolicy` — how many times a lost pair is re-dispatched and
  how long to wait before each attempt.  Backoff is exponential and
  jittered **via the seeded RNG, not wall clock**: the delay duration is a
  pure function of ``(seed, pair key, attempt)``, so a chaos test replays
  the same schedule every run.
* :class:`WorkerSupervisor` — per-worker bookkeeping (spawns, heartbeats,
  per-task attempt counts) and the ``pool.*`` counters surfaced through
  the metrics registry (``heartbeats_missed`` / ``retries`` / ``respawns``
  / ``pairs_redispatched``).

The pool remains the *mechanism* owner (queues, fences, processes); the
supervisor never touches a process handle, which keeps the policy unit-
testable with a fake clock.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(slots=True)
class RetryPolicy:
    """Bounded, deterministically-jittered exponential backoff.

    ``max_retries=0`` restores the PR 3 behaviour (first loss degrades to
    UNKNOWN); the default gives a lost pair two more chances.
    """

    #: Re-dispatches allowed per pair after the first loss.
    max_retries: int = 2
    #: Delay before the first re-dispatch (seconds).
    backoff_base: float = 0.05
    #: Growth factor per further attempt.
    backoff_factor: float = 2.0
    #: Fractional jitter span: the delay is scaled by a factor drawn
    #: uniformly from ``[1, 1 + jitter]``.
    jitter: float = 0.5
    #: Seed the jitter derives from (a pure function, never wall clock).
    seed: int = 0

    def delay(self, key: tuple, attempt: int) -> float:
        """Backoff before re-dispatch ``attempt`` (1-based) of ``key``.

        Deterministic: the same ``(seed, key, attempt)`` always yields the
        same delay, so retry schedules are reproducible run-to-run.
        """
        base = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        mix = (self.seed + 0x9E3779B9) & 0xFFFFFFFFFFFFFFFF
        for part in (*key, attempt):
            mix = (mix * 1000003 + int(part)) & 0xFFFFFFFFFFFFFFFF
        return base * (1.0 + self.jitter * random.Random(mix).random())


class WorkerSupervisor:
    """Heartbeat and retry bookkeeping for one pool of workers.

    Heartbeats are *observational*: a worker deep inside a hard SAT query
    legitimately goes quiet, so a missed heartbeat only increments a
    counter (useful for monitoring stuck shards) — process liveness, which
    is authoritative, is the pool's reap path.  Task loss is what triggers
    retries, and only :meth:`should_retry` decides when to give up.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        heartbeat_interval: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy if policy is not None else RetryPolicy()
        self.heartbeat_interval = heartbeat_interval
        self._clock = clock
        #: worker index -> last heartbeat (or spawn) time.
        self._last_beat: dict[int, float] = {}
        self._spawns: dict[int, int] = {}
        self.stats = {
            "heartbeats_missed": 0,
            "retries": 0,
            "respawns": 0,
            "pairs_redispatched": 0,
        }

    # ------------------------------------------------------------------
    def on_spawn(self, index: int) -> None:
        """A worker process (re)started; respawns count from the second."""
        self._spawns[index] = self._spawns.get(index, 0) + 1
        if self._spawns[index] > 1:
            self.stats["respawns"] += 1
        self._last_beat[index] = self._clock()

    def heartbeat(self, index: int) -> None:
        self._last_beat[index] = self._clock()

    def check_heartbeats(self, busy_workers) -> None:
        """Count workers that went quiet past the heartbeat interval.

        Only *busy* workers (ones owning an in-flight task) are checked —
        an idle worker has nothing to say.  The beat clock resets on each
        miss so one long query counts once per interval, not per poll.
        """
        now = self._clock()
        for index in busy_workers:
            last = self._last_beat.get(index)
            if last is None:
                continue
            if now - last > self.heartbeat_interval:
                self.stats["heartbeats_missed"] += 1
                self._last_beat[index] = now

    # ------------------------------------------------------------------
    def should_retry(self, key: tuple, attempt: int) -> Optional[float]:
        """Decide the fate of a pair lost inside a dead worker.

        Args:
            key: Stable pair key (feeds the deterministic jitter).
            attempt: How many times the pair has been lost so far
                (1 on the first loss).

        Returns:
            The backoff delay in seconds before re-dispatch, or ``None``
            when the retry budget is exhausted (the pair then degrades to
            UNKNOWN — never to a fabricated verdict).
        """
        if attempt > self.policy.max_retries:
            return None
        self.stats["retries"] += 1
        self.stats["pairs_redispatched"] += 1
        return self.policy.delay(key, attempt)
