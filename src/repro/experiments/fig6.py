"""Figure 6: the Figure-5 metrics on ``&putontop``-scaled benchmarks (§6.4).

Identical analysis to Figure 5, run on the stacked instances of the scaled
study, demonstrating that SimGen's advantages persist as SAT times grow.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.config import ExperimentConfig, SCALED_BENCHMARKS
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.runner import ExperimentRunner


def run_fig6(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ExperimentRunner] = None,
    verbose: bool = False,
) -> Fig5Result:
    """Execute Figure 6 over the scaled workload."""
    return run_fig5(
        config=config,
        runner=runner,
        workload=list(SCALED_BENCHMARKS),
        title="Figure 6",
        verbose=verbose,
    )
