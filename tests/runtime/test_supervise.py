"""WorkerSupervisor and RetryPolicy: deterministic backoff, counters."""

from repro.runtime.supervise import RetryPolicy, WorkerSupervisor


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay((3, 9), 1) == policy.delay((3, 9), 1)
        # Pure function of (seed, key, attempt): a fresh instance agrees.
        assert policy.delay((3, 9), 2) == RetryPolicy(seed=7).delay((3, 9), 2)

    def test_delay_varies_with_seed_key_and_attempt(self):
        policy = RetryPolicy(seed=7)
        baseline = policy.delay((3, 9), 1)
        assert RetryPolicy(seed=8).delay((3, 9), 1) != baseline
        assert policy.delay((3, 10), 1) != baseline
        assert policy.delay((3, 9), 2) != baseline

    def test_backoff_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, jitter=0.5, seed=1
        )
        for attempt, base in ((1, 0.1), (2, 0.2), (3, 0.4)):
            delay = policy.delay((1, 2), attempt)
            assert base <= delay <= base * 1.5

    def test_zero_jitter_gives_exact_schedule(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=3.0, jitter=0.0)
        assert policy.delay((0, 0), 1) == 0.05
        assert policy.delay((0, 0), 2) == 0.05 * 3
        assert policy.delay((0, 0), 3) == 0.05 * 9


class TestWorkerSupervisor:
    def test_respawns_counted_from_second_spawn(self):
        sup = WorkerSupervisor()
        sup.on_spawn(0)
        sup.on_spawn(1)
        assert sup.stats["respawns"] == 0
        sup.on_spawn(0)  # replacement for a dead worker
        assert sup.stats["respawns"] == 1

    def test_should_retry_respects_budget_and_counts(self):
        sup = WorkerSupervisor(policy=RetryPolicy(max_retries=2, seed=3))
        assert sup.should_retry((1, 2), 1) is not None
        assert sup.should_retry((1, 2), 2) is not None
        assert sup.should_retry((1, 2), 3) is None
        assert sup.stats["retries"] == 2
        assert sup.stats["pairs_redispatched"] == 2

    def test_missed_heartbeats_counted_for_busy_workers_only(self):
        clock = [0.0]
        sup = WorkerSupervisor(
            heartbeat_interval=1.0, clock=lambda: clock[0]
        )
        sup.on_spawn(0)
        sup.on_spawn(1)
        sup.heartbeat(0)
        sup.heartbeat(1)
        clock[0] = 2.5
        sup.check_heartbeats({0})  # only worker 0 is busy
        assert sup.stats["heartbeats_missed"] == 1
        # The beat clock resets on a miss: no double count immediately.
        sup.check_heartbeats({0})
        assert sup.stats["heartbeats_missed"] == 1

    def test_heartbeat_resets_the_silence_window(self):
        clock = [0.0]
        sup = WorkerSupervisor(
            heartbeat_interval=1.0, clock=lambda: clock[0]
        )
        sup.on_spawn(0)
        sup.heartbeat(0)
        clock[0] = 0.9
        sup.heartbeat(0)
        clock[0] = 1.8  # 0.9s since the last beat: within the interval
        sup.check_heartbeats({0})
        assert sup.stats["heartbeats_missed"] == 0
