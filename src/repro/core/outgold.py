"""OUTgold value generation (paper §3, step 1).

OUTgold values are the *desired* output values for the target nodes of an
equivalence class.  A vector that realizes opposite OUTgold values at two
members of one class splits that class.  The paper's default — implemented
in :func:`alternating_outgold` — assigns alternating 0/1 by node id so each
class gets an equal number of zeros and ones; the module also provides the
level-aware variant the paper mentions as an easily-pluggable alternative.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Sequence

from repro.network.network import Network

#: An OUTgold strategy maps (network, class member ids) to {uid: 0/1}.
OutgoldStrategy = Callable[[Network, Sequence[int]], dict[int, int]]


def alternating_outgold(
    network: Network, members: Sequence[int]
) -> dict[int, int]:
    """Alternate 0/1 over the class members ordered by node id.

    This is the paper's default: "we assign alternating values of zeros and
    ones as OUTgold values according to the node IDs to split them into
    different classes".
    """
    return {uid: i % 2 for i, uid in enumerate(sorted(members))}


def level_alternating_outgold(
    network: Network, members: Sequence[int]
) -> dict[int, int]:
    """Topology-aware variant: alternate along increasing level.

    Nodes at similar depth tend to share structure; interleaving values
    along the level order asks structurally close nodes to disagree, which
    is a plausible "circuit topology-aware method" per the paper's §3.
    """
    ordered = sorted(members, key=lambda uid: (network.level(uid), uid))
    return {uid: i % 2 for i, uid in enumerate(ordered)}


def random_outgold(
    seed: int = 0,
) -> OutgoldStrategy:
    """A randomized strategy factory (balanced but shuffled)."""
    rng = random.Random(seed)

    def strategy(network: Network, members: Sequence[int]) -> dict[int, int]:
        ordered = sorted(members)
        values = [i % 2 for i in range(len(ordered))]
        rng.shuffle(values)
        return dict(zip(ordered, values))

    return strategy


def select_targets(
    members: Iterable[int],
    max_targets: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> list[int]:
    """Choose which class members become targets for one vector.

    Keeps at most ``max_targets`` members (random subset when truncating,
    so repeated iterations cover different pairs of a large class).
    """
    pool = sorted(members)
    if max_targets is None or len(pool) <= max_targets:
        return pool
    if max_targets < 2:
        max_targets = 2
    chooser = rng or random.Random(0)
    return sorted(chooser.sample(pool, max_targets))
