"""Traversal helpers: DFS fanin lists, cone orders, cone PIs."""

from repro.network import (
    NetworkBuilder,
    cone_pis,
    cone_topological_order,
    dfs_fanin,
    reachable_fanout,
)


class TestDfsFanin:
    def test_root_first_every_node_once(self, and_or_network):
        net, ids = and_or_network
        order = dfs_fanin(net, ids["out"])
        assert order[0] == ids["out"]
        assert sorted(order) == sorted(
            {ids["a"], ids["b"], ids["c"], ids["inner"], ids["out"]}
        )
        assert len(order) == len(set(order))

    def test_first_fanin_explored_first(self, and_or_network):
        net, ids = and_or_network
        order = dfs_fanin(net, ids["out"])
        # out's fanins are (inner, c): inner's subtree should come first.
        assert order.index(ids["inner"]) < order.index(ids["c"])

    def test_pi_root(self, and_or_network):
        net, ids = and_or_network
        assert dfs_fanin(net, ids["a"]) == [ids["a"]]

    def test_reconvergent_cone_visited_once(self):
        builder = NetworkBuilder()
        a = builder.pi()
        inv = builder.not_(a)
        out = builder.and_(inv, a)
        builder.po(out)
        net = builder.build()
        order = dfs_fanin(net, out)
        assert order.count(a) == 1


class TestConeTopo:
    def test_restricted_order(self, and_or_network):
        net, ids = and_or_network
        order = cone_topological_order(net, [ids["inner"]])
        assert set(order) == {ids["a"], ids["b"], ids["inner"]}
        assert order.index(ids["a"]) < order.index(ids["inner"])

    def test_multiple_roots(self, and_or_network):
        net, ids = and_or_network
        order = cone_topological_order(net, [ids["inner"], ids["c"]])
        assert ids["c"] in order
        assert ids["out"] not in order


class TestConePis:
    def test_cone_pis_sorted(self, and_or_network):
        net, ids = and_or_network
        assert cone_pis(net, ids["out"]) == sorted(
            [ids["a"], ids["b"], ids["c"]]
        )
        assert cone_pis(net, ids["inner"]) == sorted([ids["a"], ids["b"]])


class TestReachableFanout:
    def test_excludes_root(self, and_or_network):
        net, ids = and_or_network
        reach = reachable_fanout(net, ids["a"])
        assert reach == {ids["inner"], ids["out"]}
