"""Builder word-level blocks checked against integer arithmetic."""

import pytest

from repro.errors import NetworkError
from repro.network import NetworkBuilder
from repro.simulation import Simulator


def evaluate_word(net, sim_values, bits):
    return sum(sim_values[uid] << i for i, uid in enumerate(bits))


def run(net, assignments):
    return Simulator(net).run_vector(assignments)


class TestAdders:
    @pytest.mark.parametrize("width", [1, 3, 4])
    def test_ripple_adder_exhaustive(self, width):
        builder = NetworkBuilder()
        a = builder.pis(width, "a")
        b = builder.pis(width, "b")
        sums, carry = builder.ripple_adder(a, b)
        for bit in sums:
            builder.po(bit)
        builder.po(carry)
        net = builder.build()
        for x in range(1 << width):
            for y in range(1 << width):
                values = {a[i]: (x >> i) & 1 for i in range(width)}
                values.update({b[i]: (y >> i) & 1 for i in range(width)})
                out = run(net, values)
                total = evaluate_word(net, out, sums) + (out[carry] << width)
                assert total == x + y

    def test_width_mismatch_rejected(self):
        builder = NetworkBuilder()
        with pytest.raises(NetworkError):
            builder.ripple_adder(builder.pis(2), builder.pis(3))

    def test_subtractor(self):
        width = 3
        builder = NetworkBuilder()
        a = builder.pis(width, "a")
        b = builder.pis(width, "b")
        diff, _ = builder.subtractor(a, b)
        for bit in diff:
            builder.po(bit)
        net = builder.build()
        for x in range(8):
            for y in range(8):
                values = {a[i]: (x >> i) & 1 for i in range(width)}
                values.update({b[i]: (y >> i) & 1 for i in range(width)})
                out = run(net, values)
                assert evaluate_word(net, out, diff) == (x - y) % 8


class TestMultiplier:
    def test_multiplier_exhaustive_3x3(self):
        builder = NetworkBuilder()
        a = builder.pis(3, "a")
        b = builder.pis(3, "b")
        product = builder.multiplier(a, b)
        for bit in product:
            builder.po(bit)
        net = builder.build()
        for x in range(8):
            for y in range(8):
                values = {a[i]: (x >> i) & 1 for i in range(3)}
                values.update({b[i]: (y >> i) & 1 for i in range(3)})
                out = run(net, values)
                assert evaluate_word(net, out, product) == x * y


class TestComparators:
    def test_equal_const(self):
        builder = NetworkBuilder()
        word = builder.pis(4)
        eq = builder.equal_const(word, 0b1010)
        builder.po(eq)
        net = builder.build()
        for x in range(16):
            values = {word[i]: (x >> i) & 1 for i in range(4)}
            assert run(net, values)[eq] == (1 if x == 0b1010 else 0)

    def test_less_than_exhaustive(self):
        builder = NetworkBuilder()
        a = builder.pis(3, "a")
        b = builder.pis(3, "b")
        lt = builder.less_than(a, b)
        builder.po(lt)
        net = builder.build()
        for x in range(8):
            for y in range(8):
                values = {a[i]: (x >> i) & 1 for i in range(3)}
                values.update({b[i]: (y >> i) & 1 for i in range(3)})
                assert run(net, values)[lt] == (1 if x < y else 0)


class TestReduceTree:
    def test_and_tree(self):
        builder = NetworkBuilder()
        xs = builder.pis(5)
        root = builder.reduce_tree("and", xs)
        builder.po(root)
        net = builder.build()
        for m in range(32):
            values = {xs[i]: (m >> i) & 1 for i in range(5)}
            assert run(net, values)[root] == (1 if m == 31 else 0)

    def test_xor_tree_parity(self):
        builder = NetworkBuilder()
        xs = builder.pis(6)
        root = builder.reduce_tree("xor", xs)
        builder.po(root)
        net = builder.build()
        for m in range(64):
            values = {xs[i]: (m >> i) & 1 for i in range(6)}
            assert run(net, values)[root] == bin(m).count("1") % 2

    def test_empty_rejected(self):
        with pytest.raises(NetworkError):
            NetworkBuilder().reduce_tree("and", [])

    def test_single_operand_passthrough(self):
        builder = NetworkBuilder()
        x = builder.pi()
        assert builder.reduce_tree("or", [x]) == x


class TestMisc:
    def test_mux_semantics(self):
        builder = NetworkBuilder()
        d0, d1, sel = builder.pis(3)
        m = builder.mux_(d0, d1, sel)
        builder.po(m)
        net = builder.build()
        for bits in range(8):
            values = {d0: bits & 1, d1: (bits >> 1) & 1, sel: (bits >> 2) & 1}
            expect = values[d1] if values[sel] else values[d0]
            assert run(net, values)[m] == expect

    def test_half_adder(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        s, c = builder.half_adder(a, b)
        builder.po(s)
        builder.po(c)
        net = builder.build()
        for x in range(2):
            for y in range(2):
                out = run(net, {a: x, b: y})
                assert out[s] == (x ^ y)
                assert out[c] == (x & y)
