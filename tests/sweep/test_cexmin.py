"""Counterexample minimization."""

import random

import pytest

from repro.errors import SweepError
from repro.network import NetworkBuilder
from repro.simulation import InputVector, Simulator
from repro.sweep.cexmin import minimize_counterexample
from tests.conftest import random_network


class TestMinimize:
    def test_drops_irrelevant_pis(self):
        builder = NetworkBuilder()
        a, b, c, d = builder.pis(4)
        g1 = builder.and_(a, b)
        g2 = builder.or_(a, b)
        other = builder.xor_(c, d)  # unrelated logic
        builder.po(g1)
        builder.po(g2)
        builder.po(other)
        net = builder.build()
        vector = InputVector({a: 1, b: 0, c: 1, d: 1})
        minimal = minimize_counterexample(net, vector, g1, g2)
        assert c not in minimal.values
        assert d not in minimal.values

    def test_result_is_distinguishing_cube(self):
        builder = NetworkBuilder()
        a, b, c = builder.pis(3)
        g1 = builder.and_(a, builder.and_(b, c))
        g2 = builder.or_(a, builder.and_(b, c))
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        # a=0, b=1, c=1 distinguishes (g1=0, g2=1); minimal cube is a=0
        # plus enough of b/c... check cube property by brute force.
        vector = InputVector({a: 0, b: 1, c: 1})
        minimal = minimize_counterexample(net, vector, g1, g2)
        sim = Simulator(net)
        free = [pi for pi in net.pis if pi not in minimal.values]
        for m in range(1 << len(free)):
            full = dict(minimal.values)
            for i, pi in enumerate(free):
                full[pi] = (m >> i) & 1
            out = sim.run_vector(full)
            assert out[g1] != out[g2]

    def test_minimality_is_real(self):
        """At least one PI gets freed when the function allows it."""
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.xor_(a, b)
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        # a=0, b=1: g1=0, g2=1.  With a=0, any b gives g1=0, g2=b: b=1
        # required.  With b=1: g1=a, g2=~a -> a free!  Greedy from the
        # highest PI first tries freeing b (fails), then a (succeeds).
        vector = InputVector({a: 0, b: 1})
        minimal = minimize_counterexample(net, vector, g1, g2)
        assert len(minimal.values) == 1

    def test_rejects_non_distinguishing_vector(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.or_(a, b)
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        with pytest.raises(SweepError):
            minimize_counterexample(net, InputVector({a: 1, b: 1}), g1, g2)

    def test_rejects_incomplete_vector(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.or_(a, b)
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        with pytest.raises(SweepError):
            minimize_counterexample(net, InputVector({a: 1}), g1, g2)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_pairs_end_to_end(self, seed):
        """Minimize SAT counterexamples from real checker queries."""
        from repro.sweep.checker import PairChecker
        from repro.sat.solver import SatResult

        net = random_network(seed=seed, num_inputs=5, num_gates=14)
        gates = [n.uid for n in net.gates()]
        rng = random.Random(seed)
        checker = PairChecker(net)
        sim = Simulator(net)
        minimized = 0
        for _ in range(12):
            a, b = rng.sample(gates, 2)
            result, vector = checker.check(a, b)
            if result is not SatResult.SAT:
                continue
            full = vector.completed(net.pis, rng)
            values = sim.run_vector(full.values)
            if values[a] == values[b]:
                continue  # free-PI completion happened to mask the diff
            minimal = minimize_counterexample(net, full, a, b)
            assert len(minimal.values) <= len(full.values)
            minimized += 1
        assert minimized > 0
