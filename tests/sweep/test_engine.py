"""SweepEngine: phases, metrics, and correctness of proven equivalences."""

import pytest

from repro.core import make_generator
from repro.logic import TruthTable
from repro.network import NetworkBuilder
from repro.simulation import cone_function
from repro.sweep import SweepConfig, SweepEngine
from tests.conftest import random_network


def redundant_network(seed=0):
    """A network with guaranteed internal equivalences and differences."""
    builder = NetworkBuilder()
    a, b, c, d = builder.pis(4)
    # Equivalent trio: and, double-negated and, De-Morganed and.
    g1 = builder.and_(a, b)
    g2 = builder.not_(builder.nand_(a, b))
    g3 = builder.nor_(builder.not_(a), builder.not_(b))
    # A near miss: differs from g1 only at a=b=1, c=1.
    g4 = builder.and_(g1, builder.not_(c))
    builder.po(g1)
    builder.po(g2)
    builder.po(g3)
    builder.po(g4)
    builder.po(builder.or_(c, d))
    return builder.build(), (g1, g2, g3, g4)


def verify_equivalences(net, equivalences):
    for rep, member, complemented in equivalences:
        table_a, sup_a = cone_function(net, rep)
        table_b, sup_b = cone_function(net, member)
        union = sorted(set(sup_a) | set(sup_b))
        wide_a = table_a.expand(len(union), [union.index(p) for p in sup_a])
        wide_b = table_b.expand(len(union), [union.index(p) for p in sup_b])
        if complemented:
            assert wide_a.bits == (~wide_b).bits
        else:
            assert wide_a.bits == wide_b.bits


class TestFullSweep:
    def test_proves_real_equivalences(self):
        net, (g1, g2, g3, g4) = redundant_network()
        engine = SweepEngine(
            net, make_generator("AI+DC+MFFC", net, seed=1), SweepConfig(seed=2)
        )
        result = engine.run()
        assert result.metrics.sat_calls > 0
        verify_equivalences(net, result.equivalences)
        proven_pairs = {
            frozenset((a, b)) for a, b, _ in result.equivalences
        }
        # The equivalent trio must end up merged (two proofs).
        assert any(g1 in pair or g2 in pair or g3 in pair for pair in proven_pairs)

    def test_all_classes_resolved(self):
        net, _ = redundant_network()
        engine = SweepEngine(
            net, make_generator("RevS", net, seed=1), SweepConfig(seed=2)
        )
        result = engine.run()
        assert result.classes.splittable() == []

    @pytest.mark.parametrize("strategy", ["RandS", "RevS", "AI+DC+MFFC"])
    def test_proven_equivalences_always_true(self, strategy):
        net = random_network(seed=11, num_inputs=5, num_gates=18)
        engine = SweepEngine(
            net,
            make_generator(strategy, net, seed=3),
            SweepConfig(seed=4, iterations=5),
        )
        result = engine.run()
        verify_equivalences(net, result.equivalences)

    def test_complement_mode(self):
        net, _ = redundant_network()
        engine = SweepEngine(
            net,
            make_generator("AI+DC+MFFC", net, seed=1),
            SweepConfig(seed=2, match_complements=True, random_width=16),
        )
        result = engine.run()
        verify_equivalences(net, result.equivalences)


class TestMetrics:
    def test_cost_history_monotone_nonincreasing(self):
        net = random_network(seed=5, num_inputs=6, num_gates=20)
        engine = SweepEngine(
            net,
            make_generator("AI+DC+MFFC", net, seed=1),
            SweepConfig(seed=2, iterations=8),
        )
        classes, metrics = engine.run_simulation_phase()
        history = metrics.cost_history
        assert len(history) == 1 + 8  # random round + iterations
        assert all(a >= b for a, b in zip(history, history[1:]))

    def test_iteration_times_recorded(self):
        net = random_network(seed=5)
        engine = SweepEngine(
            net,
            make_generator("RevS", net, seed=1),
            SweepConfig(seed=2, iterations=4),
        )
        _, metrics = engine.run_simulation_phase()
        assert len(metrics.iteration_times) == 4
        # Each iteration window splits between generation and simulation.
        assert metrics.sim_time + metrics.simgen_time >= (
            sum(metrics.iteration_times) * 0.99
        )
        assert metrics.simgen_time >= 0.0

    def test_determinism(self):
        net = random_network(seed=6, num_inputs=6, num_gates=20)

        def run_once():
            engine = SweepEngine(
                net,
                make_generator("AI+DC+MFFC", net, seed=9),
                SweepConfig(seed=3, iterations=6),
            )
            result = engine.run()
            return (
                result.metrics.cost_history,
                result.metrics.sat_calls,
                sorted(result.equivalences),
            )

        assert run_once() == run_once()

    def test_random_only_sweep(self):
        net = random_network(seed=7)
        engine = SweepEngine(net, None, SweepConfig(seed=1))
        classes, metrics = engine.run_simulation_phase()
        assert len(metrics.cost_history) == 1
        result = engine.run_sat_phase(classes, metrics)
        assert result.classes.splittable() == []

    def test_final_cost_requires_history(self):
        from repro.errors import SweepError
        from repro.sweep.engine import SweepMetrics

        with pytest.raises(SweepError):
            SweepMetrics().final_cost


class TestEngineVariants:
    """The compiled engine must be trajectory-identical to the reference."""

    def _trace(self, engine_mode, seed=3):
        from repro.benchgen import sweep_instance

        net = sweep_instance("priority")
        engine = SweepEngine(
            net,
            make_generator("AI+DC+MFFC", net, seed=seed),
            SweepConfig(seed=seed, engine=engine_mode),
        )
        result = engine.run()
        return (
            result.metrics.cost_history,
            result.metrics.sat_calls,
            result.metrics.proven,
            result.metrics.disproven,
            result.metrics.unknown,
            result.metrics.vectors_simulated,
            result.equivalences,
            result.classes.all_classes(),
        )

    def test_compiled_matches_reference(self):
        assert self._trace("compiled") == self._trace("reference")

    def test_compiled_matches_reference_random_only(self):
        net, _ = redundant_network()
        traces = []
        for mode in ("compiled", "reference"):
            result = SweepEngine(
                net, None, SweepConfig(seed=1, engine=mode)
            ).run()
            traces.append(
                (result.metrics.cost_history, result.classes.all_classes())
            )
        assert traces[0] == traces[1]

    def test_unknown_engine_rejected(self):
        from repro.errors import SweepError

        net, _ = redundant_network()
        with pytest.raises(SweepError, match="unknown engine"):
            SweepEngine(net, None, SweepConfig(engine="vectorized"))

    def test_counterexamples_are_batched(self):
        """Disproof counterexamples queue up and flush in one resim pass."""
        net, (g1, g2, g3, g4) = redundant_network()
        engine = SweepEngine(
            net,
            make_generator("AI+DC+MFFC", net, seed=1),
            # No guided iterations: the near-miss pair survives simulation
            # and must be disproven (and resimulated) in the SAT phase.
            SweepConfig(seed=2, iterations=0, random_width=4),
        )
        result = engine.run()
        assert result.metrics.disproven > 0
        assert not engine._pending_cex  # everything flushed by the end
        verify_equivalences(net, result.equivalences)

    def test_queue_counterexample_refines_on_flush(self):
        from repro.simulation import InputVector

        net, (g1, g2, g3, g4) = redundant_network()
        engine = SweepEngine(net, None, SweepConfig(seed=0, iterations=0))
        result = engine.run()
        # g4 differs from g1 at a=b=1, c=1: feed exactly that vector.
        pis = net.pis
        vector = InputVector({pis[0]: 1, pis[1]: 1, pis[2]: 1, pis[3]: 0})
        engine.queue_counterexample(vector)
        assert engine._pending_cex
        before = result.classes.cost()
        engine._flush_cex(result.classes, result.metrics)
        assert not engine._pending_cex
        assert result.classes.cost() <= before
