"""Equivalence classes and the Equation-5 cost metric.

Nodes whose outputs agree across every simulated pattern share a class; a
class of size *s* may require up to *s - 1* SAT calls to resolve, so the
paper scores a partition by ``cost = sum(size(i) - 1)`` (Equation 5) —
lower cost means simulation separated more non-equivalent nodes for free.

Classes are refined incrementally: each new signature batch splits every
class by signature value.  Optional complement matching canonicalizes
signatures by their first pattern bit so that a node and its complement
share a class, tracked through a per-member *phase* (as ABC's fraiging
does).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping, Optional

from repro.errors import SweepError
from repro.network.network import Network
from repro.simulation.bitvec import width_mask


class EquivalenceClasses:
    """A partition of candidate nodes, refined by simulation signatures.

    The Equation-5 cost is maintained incrementally (it is simply
    ``#members - #classes``, since every class contributes ``size - 1``),
    and a lazy max-heap work queue serves :meth:`best_splittable` — the
    class a SAT phase should attack next — without re-sorting every class
    on every query.  Heap entries are ``(-size, first_member, class_id)``
    snapshots; mutated classes are re-pushed and stale snapshots discarded
    on pop, so ``best_splittable`` always agrees with ``splittable()[0]``.
    """

    def __init__(
        self,
        network: Network,
        members: Optional[Iterable[int]] = None,
        include_pis: bool = False,
        match_complements: bool = False,
    ):
        self.network = network
        self.match_complements = match_complements
        if members is None:
            members = [
                node.uid
                for node in network.nodes()
                if node.is_gate or (include_pis and node.is_pi)
            ]
        member_list = sorted(set(members))
        for uid in member_list:
            network.node(uid)  # existence check
        self._class_of: dict[int, int] = {uid: 0 for uid in member_list}
        self._classes: dict[int, set[int]] = (
            {0: set(member_list)} if member_list else {}
        )
        self._phase: dict[int, int] = {uid: 0 for uid in member_list}
        self._next_class = 1
        self.refinements = 0
        self._work: list[tuple[int, int, int]] = []
        if len(member_list) >= 2:
            self._push_work(0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_members(self) -> int:
        return len(self._class_of)

    @property
    def num_classes(self) -> int:
        return len(self._classes)

    def members(self) -> list[int]:
        """All tracked node ids."""
        return sorted(self._class_of)

    def class_of(self, uid: int) -> list[int]:
        """The members of the class containing ``uid`` (sorted)."""
        if uid not in self._class_of:
            raise SweepError(f"node {uid} is not tracked")
        return sorted(self._classes[self._class_of[uid]])

    def tracked(self, uid: int) -> bool:
        """True if the node is (still) a tracked member."""
        return uid in self._class_of

    def same_class(self, a: int, b: int) -> bool:
        """True if two tracked nodes currently share a class."""
        if a not in self._class_of or b not in self._class_of:
            raise SweepError("both nodes must be tracked")
        return self._class_of[a] == self._class_of[b]

    def phase(self, uid: int) -> int:
        """Complement phase of a member relative to its class canonical form.

        Always 0 unless ``match_complements`` is enabled.  Two members with
        different phases are candidate *complement* equivalences.
        """
        if uid not in self._phase:
            raise SweepError(f"node {uid} is not tracked")
        return self._phase[uid]

    def splittable(self) -> list[list[int]]:
        """Classes that still need work (size >= 2), largest first."""
        result = [
            sorted(members)
            for members in self._classes.values()
            if len(members) >= 2
        ]
        result.sort(key=lambda c: (-len(c), c[0]))
        return result

    def all_classes(self) -> list[list[int]]:
        """Every class, including singletons."""
        return sorted(
            (sorted(m) for m in self._classes.values()),
            key=lambda c: (-len(c), c[0]),
        )

    def cost(self) -> int:
        """Equation 5: worst-case SAT calls left, ``sum(size - 1)``.

        O(1): classes are never empty, so the sum telescopes to
        ``#members - #classes``.
        """
        return len(self._class_of) - len(self._classes)

    def splittable_members(self) -> list[int]:
        """Members of classes that still need work (size >= 2)."""
        return [
            uid
            for members in self._classes.values()
            if len(members) >= 2
            for uid in members
        ]

    # ------------------------------------------------------------------
    # Work queue
    # ------------------------------------------------------------------
    def _push_work(self, class_id: int) -> None:
        members = self._classes.get(class_id)
        if members is not None and len(members) >= 2:
            heapq.heappush(
                self._work, (-len(members), min(members), class_id)
            )

    def best_splittable(self) -> Optional[list[int]]:
        """``splittable()[0]`` served from the work queue, or ``None``.

        Amortized O(log #classes) per call: every class mutation pushes at
        most one snapshot, and each snapshot is popped at most once.
        """
        work = self._work
        while work:
            neg_size, first, class_id = work[0]
            members = self._classes.get(class_id)
            if members is None or len(members) < 2:
                heapq.heappop(work)  # resolved or shrunk to a singleton
                continue
            if -neg_size != len(members) or first != min(members):
                heapq.heappop(work)  # stale snapshot; requeue current state
                self._push_work(class_id)
                continue
            return sorted(members)
        return None

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def refine(self, signatures: Mapping[int, int], width: int) -> int:
        """Split classes by the new signature batch; returns #splits.

        Args:
            signatures: node id -> packed simulation word (must cover every
                tracked member).
            width: number of patterns in the batch.
        """
        if width <= 0:
            return 0
        mask = width_mask(width)
        splits = 0
        for class_id in list(self._classes):
            members = self._classes[class_id]
            if len(members) < 2:
                continue
            groups: dict[int, list[int]] = {}
            phases: dict[int, int] = {}
            for uid in members:
                if uid not in signatures:
                    raise SweepError(f"signature missing for node {uid}")
                sig = signatures[uid] & mask
                if self.match_complements:
                    # Canonicalize by the first pattern bit so f and NOT f
                    # land in the same bucket with opposite phases.
                    if sig & 1:
                        sig = sig ^ mask
                        phases[uid] = 1
                    else:
                        phases[uid] = 0
                else:
                    phases[uid] = 0
                groups.setdefault(sig, []).append(uid)
            if len(groups) == 1:
                for uid, phase in phases.items():
                    self._phase[uid] = phase
                continue
            # Keep the largest group in place; move the rest out.
            ordered = sorted(groups.values(), key=len, reverse=True)
            for uid, phase in phases.items():
                self._phase[uid] = phase
            for group in ordered[1:]:
                new_id = self._next_class
                self._next_class += 1
                self._classes[new_id] = set(group)
                for uid in group:
                    members.discard(uid)
                    self._class_of[uid] = new_id
                splits += 1
                self._push_work(new_id)
            self._push_work(class_id)
        self.refinements += 1
        return splits

    # ------------------------------------------------------------------
    # SAT-phase bookkeeping
    # ------------------------------------------------------------------
    def remove_member(self, uid: int) -> None:
        """Drop a node (proven equivalent to its representative, or given up)."""
        if uid not in self._class_of:
            raise SweepError(f"node {uid} is not tracked")
        class_id = self._class_of.pop(uid)
        self._classes[class_id].discard(uid)
        if not self._classes[class_id]:
            del self._classes[class_id]
        else:
            self._push_work(class_id)
        del self._phase[uid]

    def isolate(self, uid: int) -> None:
        """Move a node into its own fresh singleton class."""
        if uid not in self._class_of:
            raise SweepError(f"node {uid} is not tracked")
        old = self._class_of[uid]
        if len(self._classes[old]) == 1:
            return
        self._classes[old].discard(uid)
        self._push_work(old)
        new_id = self._next_class
        self._next_class += 1
        self._classes[new_id] = {uid}
        self._class_of[uid] = new_id
        self._phase[uid] = 0
