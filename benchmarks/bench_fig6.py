"""Bench: regenerate Figure 6 (Figure-5 metrics on scaled instances, §6.4)."""

from __future__ import annotations

import os

from repro.experiments.fig5 import run_fig5

QUICK_SCALED = (
    ("alu4", 3),
    ("arbiter", 3),
    ("b15_C2", 2),
)


def test_fig6(benchmark, config, shared_runner):
    full = os.environ.get("REPRO_FULL", "") not in ("", "0")
    if full:
        from repro.experiments.fig6 import run_fig6

        result = benchmark.pedantic(
            run_fig6,
            kwargs={"config": config, "runner": shared_runner},
            rounds=1,
            iterations=1,
        )
    else:
        result = benchmark.pedantic(
            run_fig5,
            kwargs={
                "config": config,
                "runner": shared_runner,
                "workload": list(QUICK_SCALED),
                "title": "Figure 6",
            },
            rounds=1,
            iterations=1,
        )
    print()
    print(result.render())
    assert result.points
