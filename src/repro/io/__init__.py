"""Netlist I/O: BLIF and ISCAS .bench."""

from repro.io.bench import bench_text, parse_bench, read_bench, write_bench
from repro.io.blif import blif_text, parse_blif, read_blif, write_blif

__all__ = [
    "bench_text",
    "blif_text",
    "parse_bench",
    "parse_blif",
    "read_bench",
    "read_blif",
    "write_bench",
    "write_blif",
]
