"""Control-logic benchmark generators (arbiter, dec, priority, voter, ...).

These mirror the EPFL *random/control* suite and a few MCNC circuits:
decoders, priority encoders, round-robin-flavored arbiters, majority
voters, S-box rounds (``des``) and a memory-controller-style address
decode block (``m_ctrl``).
"""

from __future__ import annotations

import random

from repro.network.build import NetworkBuilder
from repro.network.network import Network


def decoder(name: str, bits: int = 5, seed: int = 0) -> Network:
    """Full ``bits``-to-2**bits decoder (EPFL ``dec``)."""
    builder = NetworkBuilder(name)
    a = builder.pis(bits, "a")
    for value in range(1 << bits):
        builder.po(builder.equal_const(a, value), f"d{value}")
    return builder.build()


def priority_encoder(name: str, width: int = 12, seed: int = 0) -> Network:
    """Priority encoder with valid flag (EPFL ``priority``)."""
    builder = NetworkBuilder(name)
    req = builder.pis(width, "r")
    position_bits = max(1, (width - 1).bit_length())
    position = [builder.const(False) for _ in range(position_bits)]
    valid = builder.reduce_tree("or", req)
    for i in range(width):
        higher = (
            builder.reduce_tree("or", [req[j] for j in range(i)])
            if i > 0
            else builder.const(False)
        )
        grant = builder.and_(req[i], builder.not_(higher))
        builder.po(grant, f"g{i}")
        for bit in range(position_bits):
            if (i >> bit) & 1:
                position[bit] = builder.or_(position[bit], grant)
    for bit, node in enumerate(position):
        builder.po(node, f"p{bit}")
    builder.po(valid, "valid")
    return builder.build()


def arbiter(name: str, width: int = 8, seed: int = 0) -> Network:
    """Masked priority arbiter (EPFL ``arbiter`` flavor).

    A pointer word masks the requests; grants go to the first unmasked
    request, falling back to the first request overall when the masked set
    is empty.
    """
    builder = NetworkBuilder(name)
    req = builder.pis(width, "r")
    pointer = builder.pis(width, "m")
    masked = [builder.and_(r, m) for r, m in zip(req, pointer)]

    def first_grant(signals):
        grants = []
        for i, s in enumerate(signals):
            higher = (
                builder.reduce_tree("or", signals[:i])
                if i > 0
                else builder.const(False)
            )
            grants.append(builder.and_(s, builder.not_(higher)))
        return grants

    grant_masked = first_grant(masked)
    grant_any = first_grant(req)
    any_masked = builder.reduce_tree("or", masked)
    for i in range(width):
        builder.po(
            builder.mux_(grant_any[i], grant_masked[i], any_masked), f"g{i}"
        )
    builder.po(any_masked, "hit")
    return builder.build()


def voter(name: str, width: int = 9, seed: int = 0) -> Network:
    """Majority voter over ``width`` inputs (EPFL ``voter`` shape).

    Counts ones with a full-adder tree and compares against width/2.
    """
    builder = NetworkBuilder(name)
    inputs = builder.pis(width, "v")
    # Carry-save population count: bits[k] = signals of weight 2^k.
    bits: list[list[int]] = [list(inputs)]
    column = 0
    while column < len(bits):
        while len(bits[column]) >= 3:
            a = bits[column].pop()
            b = bits[column].pop()
            c = bits[column].pop()
            s, carry = builder.full_adder(a, b, c)
            bits[column].append(s)
            if column + 1 == len(bits):
                bits.append([])
            bits[column + 1].append(carry)
        if len(bits[column]) == 2:
            a = bits[column].pop()
            b = bits[column].pop()
            s, carry = builder.half_adder(a, b)
            bits[column].append(s)
            if column + 1 == len(bits):
                bits.append([])
            bits[column + 1].append(carry)
        column += 1
    count = [col[0] if col else builder.const(False) for col in bits]
    threshold = width // 2  # majority: count > threshold
    const_bits = [
        builder.const(bool((threshold >> k) & 1)) for k in range(len(count))
    ]
    gt = builder.less_than(const_bits, count)
    builder.po(gt, "majority")
    for k, node in enumerate(count):
        builder.po(node, f"cnt{k}")
    return builder.build()


def sbox_round(name: str, sboxes: int = 4, seed: int = 0) -> Network:
    """One S-box substitution + permutation round (``des`` flavor)."""
    rng = random.Random(seed)
    builder = NetworkBuilder(name)
    data = builder.pis(6 * sboxes, "d")
    key = builder.pis(6 * sboxes, "k")
    mixed = [builder.xor_(d, k) for d, k in zip(data, key)]
    outputs: list[int] = []
    from repro.logic.truthtable import TruthTable

    for box in range(sboxes):
        chunk = mixed[6 * box : 6 * box + 6]
        for out_bit in range(4):
            table = TruthTable(6, rng.getrandbits(64))
            outputs.append(builder.table(table, chunk))
    rng.shuffle(outputs)
    for j, node in enumerate(outputs):
        builder.po(node, f"o{j}")
    return builder.build()


def mem_ctrl(name: str, addr_bits: int = 8, banks: int = 4, seed: int = 0) -> Network:
    """Memory-controller-style address decode and command logic (m_ctrl)."""
    rng = random.Random(seed)
    builder = NetworkBuilder(name)
    addr = builder.pis(addr_bits, "a")
    cmd = builder.pis(3, "c")
    refresh = builder.pis(2, "f")
    bank_bits = max(1, (banks - 1).bit_length())
    bank_sel = addr[:bank_bits]
    row = addr[bank_bits:]

    read = builder.equal_const(cmd, 1)
    write = builder.equal_const(cmd, 2)
    precharge = builder.equal_const(cmd, 3)
    activate = builder.equal_const(cmd, 4)
    busy = builder.or_(refresh[0], refresh[1])

    for bank in range(banks):
        selected = builder.equal_const(bank_sel, bank)
        for signal, tag in ((read, "rd"), (write, "wr"), (precharge, "pre"), (activate, "act")):
            enable = builder.and_(selected, signal)
            builder.po(builder.and_(enable, builder.not_(busy)), f"b{bank}_{tag}")
    # Row-address comparators against random open-row constants.
    for bank in range(banks):
        open_row = rng.getrandbits(len(row)) if row else 0
        hit = builder.equal_const(row, open_row) if row else builder.const(True)
        builder.po(builder.and_(hit, builder.equal_const(bank_sel, bank)), f"hit{bank}")
    builder.po(busy, "busy")
    return builder.build()


def parity_encoder(name: str, width: int = 16, seed: int = 0) -> Network:
    """Hamming-style parity/ECC encoder (e64 flavor, scaled)."""
    builder = NetworkBuilder(name)
    data = builder.pis(width, "d")
    groups = max(1, width.bit_length())
    for g in range(groups):
        members = [data[i] for i in range(width) if (i >> g) & 1]
        if not members:
            continue
        builder.po(builder.reduce_tree("xor", members), f"p{g}")
    builder.po(builder.reduce_tree("xor", data), "overall")
    for i in range(0, width, 4):
        chunk = data[i : i + 4]
        builder.po(builder.reduce_tree("and", chunk), f"all{i}")
        builder.po(builder.reduce_tree("or", chunk), f"any{i}")
    return builder.build()
