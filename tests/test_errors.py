"""Exception hierarchy contracts."""

import pytest

from repro import (
    GenerationError,
    LogicError,
    MappingError,
    NetworkError,
    ParseError,
    ReproError,
    SatError,
    SimulationError,
    SweepError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            LogicError,
            NetworkError,
            ParseError,
            SimulationError,
            SatError,
            SweepError,
            MappingError,
            GenerationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            if exc is ParseError:
                raise exc("boom")
            raise exc("boom")

    def test_parse_error_with_line(self):
        error = ParseError("bad cover", line=12)
        assert "line 12" in str(error)
        assert error.line == 12

    def test_parse_error_without_line(self):
        error = ParseError("bad cover")
        assert error.line is None
        assert "bad cover" in str(error)

    def test_catching_base_covers_subsystems(self):
        """A downstream user can guard a whole flow with one except."""
        from repro.logic.truthtable import TruthTable

        with pytest.raises(ReproError):
            TruthTable(2, 1 << 10)
