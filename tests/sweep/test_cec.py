"""CEC on top of sweeping: equivalence verdicts and counterexamples."""

import random

import pytest

from repro.core import factory
from repro.logic import gates
from repro.network import NetworkBuilder
from repro.simulation import Simulator
from repro.sweep import SweepConfig, check_equivalence, union_network
from repro.transforms import rewrite
from tests.conftest import networks_equal, random_network


class TestUnionNetwork:
    def test_shared_pis_and_paired_pos(self):
        net = random_network(seed=0)
        copy, _ = net.map_clone()
        union, pairs = union_network(net, copy)
        assert len(union.pis) == len(net.pis)
        assert len(pairs) == len(net.pos)
        assert len(union.pos) == 2 * len(net.pos)

    def test_interface_mismatch(self):
        builder = NetworkBuilder()
        builder.po(builder.pi())
        small = builder.build()
        other = random_network(seed=1)
        with pytest.raises(Exception):
            union_network(small, other)


class TestCheckEquivalence:
    def test_equivalent_circuits(self):
        net = random_network(seed=2, num_inputs=5, num_gates=14)
        perturbed = rewrite(net, seed=3, intensity=0.4)
        result = check_equivalence(
            net,
            perturbed,
            generator_factory=factory("AI+DC+MFFC"),
            config=SweepConfig(seed=1, iterations=5),
        )
        assert result.equivalent
        assert all(v == "equal" for v in result.outputs.values())
        assert result.counterexample is None

    def test_mutated_circuit_detected_with_valid_cex(self):
        net = random_network(seed=4, num_inputs=5, num_gates=14)
        mutated, _ = net.map_clone()
        # Flip one gate's function.
        victim = next(
            n for n in mutated.gates() if not n.is_const and n.num_fanins == 2
        )
        victim.table = ~victim.table
        if networks_equal(net, mutated):
            pytest.skip("mutation not observable at the POs")
        result = check_equivalence(
            net,
            mutated,
            generator_factory=factory("AI+DC+MFFC"),
            config=SweepConfig(seed=1, iterations=3),
        )
        assert not result.equivalent
        assert "different" in result.outputs.values()
        assert result.counterexample is not None
        # Validate the counterexample on the union network.
        union, pairs = union_network(net, mutated)
        sim = Simulator(union)
        full = result.counterexample.completed(union.pis, random.Random(0))
        values = sim.run_vector(full.values)
        assert any(
            values[a] != values[b]
            for name, a, b in pairs
            if result.outputs.get(name) == "different"
        )

    def test_without_generator_random_only(self):
        net = random_network(seed=5, num_inputs=4, num_gates=10)
        copy, _ = net.map_clone()
        result = check_equivalence(
            net, copy, config=SweepConfig(seed=1)
        )
        assert result.equivalent

    def test_metrics_populated(self):
        net = random_network(seed=6, num_inputs=4, num_gates=10)
        copy, _ = net.map_clone()
        result = check_equivalence(net, copy, config=SweepConfig(seed=1))
        assert result.metrics is not None
        assert result.metrics.sat_calls >= 0
