"""Combinational equivalence checking built on the sweeping engine.

CEC of two circuits (paper §2.2): place both over shared PIs in one
*union* network, sweep it so internal equivalences are proven cheaply and
internal differences are disproven by simulation, then resolve each output
pair — by the sweep's verdict when available, by a direct SAT call
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.generator import BaseVectorGenerator
from repro.errors import SweepError
from repro.network.network import Network
from repro.sat.solver import CdclSolver, SatResult
from repro.sat.tseitin import pair_miter
from repro.simulation.patterns import InputVector
from repro.sweep.engine import SweepConfig, SweepEngine, SweepMetrics


@dataclass(slots=True)
class CecResult:
    """Verdict of a CEC run."""

    #: True if every output pair was proven equivalent.
    equivalent: bool
    #: Per-output verdicts: name -> "equal" | "different" | "unknown".
    outputs: dict[str, str] = field(default_factory=dict)
    #: A distinguishing input vector if any output pair differs.
    counterexample: Optional[InputVector] = None
    #: Metrics of the underlying sweep.
    metrics: Optional[SweepMetrics] = None


def union_network(network_a: Network, network_b: Network) -> tuple[
    Network, list[tuple[str, int, int]]
]:
    """Both circuits over shared PIs; returns (union, PO pair list).

    PIs are matched by position, POs by position; the returned pair list
    holds ``(po_name, node_in_a_copy, node_in_b_copy)``.
    """
    if len(network_a.pis) != len(network_b.pis):
        raise SweepError("PI count mismatch")
    if len(network_a.pos) != len(network_b.pos):
        raise SweepError("PO count mismatch")
    union = Network(f"union({network_a.name},{network_b.name})")
    shared = [union.add_pi(network_a.node(pi).name) for pi in network_a.pis]

    def copy(source: Network) -> dict[int, int]:
        mapping = dict(zip(source.pis, shared))
        for uid in source.topological_order():
            node = source.node(uid)
            if node.is_pi:
                continue
            mapping[uid] = union.add_gate(
                node.table, tuple(mapping[f] for f in node.fanins)
            )
        return mapping

    map_a = copy(network_a)
    map_b = copy(network_b)
    pairs = []
    for (name, uid_a), (_, uid_b) in zip(network_a.pos, network_b.pos):
        node_a = map_a[uid_a]
        node_b = map_b[uid_b]
        union.add_po(node_a, f"a_{name}")
        union.add_po(node_b, f"b_{name}")
        pairs.append((name, node_a, node_b))
    return union, pairs


def check_equivalence(
    network_a: Network,
    network_b: Network,
    generator_factory=None,
    config: Optional[SweepConfig] = None,
) -> CecResult:
    """Sweep-accelerated CEC of two circuits.

    Args:
        network_a, network_b: Circuits with matching PI/PO interfaces.
        generator_factory: ``(network, seed) -> BaseVectorGenerator`` used
            for guided simulation inside the sweep (None = random only).
        config: Sweep configuration.
    """
    config = config or SweepConfig()
    union, pairs = union_network(network_a, network_b)
    generator: Optional[BaseVectorGenerator] = None
    if generator_factory is not None:
        generator = generator_factory(union, config.seed)
    engine = SweepEngine(union, generator, config)
    sweep = engine.run()

    proven = {(a, b) for a, b, comp in sweep.equivalences if not comp}
    proven |= {(b, a) for a, b in proven}

    result = CecResult(equivalent=True, metrics=sweep.metrics)
    for name, node_a, node_b in pairs:
        if node_a == node_b or (node_a, node_b) in proven:
            result.outputs[name] = "equal"
            continue
        cnf, encoder = pair_miter(union, node_a, node_b)
        solver = CdclSolver()
        solver.add_cnf(cnf)
        outcome = solver.solve(conflict_limit=config.sat_conflict_limit)
        sweep.metrics.sat_calls += 1
        if outcome is SatResult.UNSAT:
            result.outputs[name] = "equal"
        elif outcome is SatResult.SAT:
            result.outputs[name] = "different"
            result.equivalent = False
            if result.counterexample is None:
                result.counterexample = encoder.model_to_vector(solver.model())
        else:
            result.outputs[name] = "unknown"
            result.equivalent = False
    return result
