"""VerdictJournal: CRC framing, torn-tail recovery, replay keys."""

import json
import zlib

import pytest

from repro.errors import JournalError
from repro.network import NetworkBuilder
from repro.runtime import VerdictJournal
from repro.sat.solver import SatResult
from repro.simulation.patterns import InputVector


def small_network(name="journal"):
    builder = NetworkBuilder(name)
    a, b = builder.pis(2)
    g1 = builder.and_(a, b, "g1")
    g2 = builder.and_(a, b, "g2")
    g3 = builder.or_(a, b, "g3")
    builder.po(g3, "f")
    return builder.build(), (a, b, g1, g2, g3)


FP = {"seed": 0, "iterations": 5, "generator": "none"}


def fresh_journal(path, network, fingerprint=FP):
    journal = VerdictJournal(path, fsync=False)
    journal.bind(network, fingerprint)
    return journal


class TestFraming:
    def test_lines_are_crc_guarded_json(self, tmp_path):
        path = tmp_path / "j.jsonl"
        net, (_, _, g1, g2, _) = small_network()
        with fresh_journal(path, net) as journal:
            journal.record(g1, g2, False, 1000, SatResult.UNSAT, None, 3, 17)
        for line in path.read_bytes().splitlines():
            crc_hex, _, body = line.partition(b"\t")
            assert int(crc_hex, 16) == zlib.crc32(body) & 0xFFFFFFFF
            json.loads(body)

    def test_record_then_lookup_roundtrip(self, tmp_path):
        net, (a, b, g1, _, g3) = small_network()
        vector = InputVector({a: 1, b: 0})
        with fresh_journal(tmp_path / "j.jsonl", net) as journal:
            journal.record(g1, g3, False, 1000, SatResult.SAT, vector, 5, 9)
        journal = VerdictJournal(tmp_path / "j.jsonl", resume=True)
        journal.bind(net, FP)
        record = journal.lookup(g1, g3, False, 1000)
        assert record is not None
        assert record.outcome is SatResult.SAT
        assert record.vector.values == {a: 1, b: 0}
        assert record.conflicts == 5
        assert record.propagations == 9
        assert journal.lookup(g1, g3, True, 1000) is None
        assert journal.lookup(g1, g3, False, 2000) is None
        journal.close()

    def test_duplicate_keys_keep_the_first_record(self, tmp_path):
        net, (_, _, g1, g2, _) = small_network()
        with fresh_journal(tmp_path / "j.jsonl", net) as journal:
            assert journal.record(
                g1, g2, False, 100, SatResult.UNSAT, None, 1, 1
            )
            assert not journal.record(
                g1, g2, False, 100, SatResult.UNKNOWN, None, 9, 9
            )
            assert journal.lookup(g1, g2, False, 100).outcome is SatResult.UNSAT

    def test_structural_twins_share_a_key(self, tmp_path):
        """g1 and g2 are the same AND over the same PIs: one key serves
        both orientations of the pair against g3."""
        net, (_, _, g1, g2, g3) = small_network()
        with fresh_journal(tmp_path / "j.jsonl", net) as journal:
            journal.record(g1, g3, False, 100, SatResult.SAT, None, 2, 2)
            assert journal.lookup(g2, g3, False, 100) is not None


class TestTornTail:
    def seeded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        net, (_, _, g1, g2, g3) = small_network()
        with fresh_journal(path, net) as journal:
            journal.record(g1, g2, False, 100, SatResult.UNSAT, None, 1, 1)
            journal.record(g1, g3, False, 100, SatResult.SAT, None, 2, 2)
        return path, net

    def test_partial_final_record_is_truncated(self, tmp_path):
        path, net = self.seeded(tmp_path)
        intact = path.read_bytes()
        path.write_bytes(intact[:-7])  # tear mid-record (newline lost)
        journal = VerdictJournal(path, resume=True, fsync=False)
        assert journal.stats["torn_tail_truncations"] == 1
        journal.bind(net, FP)
        # The torn verdict is gone; the intact prefix survives.
        assert journal.stats["loaded_verdicts"] == 1
        assert path.read_bytes() == intact[: intact.rfind(b"\n", 0, -1) + 1]
        journal.close()

    def test_crc_damaged_final_record_is_truncated(self, tmp_path):
        path, net = self.seeded(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-10] + b"X" + data[-9:])  # flip inside body
        journal = VerdictJournal(path, resume=True, fsync=False)
        assert journal.stats["torn_tail_truncations"] == 1
        journal.bind(net, FP)
        assert journal.stats["loaded_verdicts"] == 1
        journal.close()

    def test_truncated_journal_can_be_extended_and_reread(self, tmp_path):
        path, net = self.seeded(tmp_path)
        path.write_bytes(path.read_bytes()[:-5])
        journal = VerdictJournal(path, resume=True, fsync=False)
        journal.bind(net, FP)
        _, (_, _, g1, _, g3) = small_network()
        net2, (_, _, h1, _, h3) = small_network()
        journal.record(h1, h3, False, 100, SatResult.SAT, None, 2, 2)
        journal.close()
        reread = VerdictJournal(path, resume=True, fsync=False)
        reread.bind(net, FP)
        assert reread.stats["loaded_verdicts"] == 2
        reread.close()

    def test_midfile_corruption_raises(self, tmp_path):
        path, net = self.seeded(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"deadbeef\t{broken\n"  # valid records follow
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError):
            VerdictJournal(path, resume=True)


class TestGuards:
    def test_existing_nonempty_journal_refused_without_resume(self, tmp_path):
        path, _ = TestTornTail().seeded(tmp_path)
        with pytest.raises(JournalError):
            VerdictJournal(path)

    def test_resume_with_missing_file_starts_fresh(self, tmp_path):
        net, _ = small_network()
        journal = VerdictJournal(tmp_path / "new.jsonl", resume=True)
        journal.bind(net, FP)
        assert journal.stats["loaded_verdicts"] == 0
        journal.close()

    def test_network_mismatch_raises_on_bind(self, tmp_path):
        path, _ = TestTornTail().seeded(tmp_path)
        builder = NetworkBuilder("other")
        a, b, c = builder.pis(3)
        builder.po(builder.and_(a, builder.or_(b, c)), "f")
        other = builder.build()
        journal = VerdictJournal(path, resume=True, fsync=False)
        with pytest.raises(JournalError):
            journal.bind(other, FP)
        journal.close()

    def test_fingerprint_mismatch_raises_on_bind(self, tmp_path):
        path, net = TestTornTail().seeded(tmp_path)
        journal = VerdictJournal(path, resume=True, fsync=False)
        with pytest.raises(JournalError):
            journal.bind(net, {**FP, "seed": 99})
        journal.close()

    def test_unbound_journal_rejects_lookup_and_record(self, tmp_path):
        journal = VerdictJournal(tmp_path / "j.jsonl", fsync=False)
        with pytest.raises(JournalError):
            journal.lookup(1, 2, False, 100)
        with pytest.raises(JournalError):
            journal.record(1, 2, False, 100, SatResult.UNSAT, None, 0, 0)
        journal.close()


class TestStats:
    def test_consume_stats_is_a_delta(self, tmp_path):
        net, (_, _, g1, g2, g3) = small_network()
        with fresh_journal(tmp_path / "j.jsonl", net) as journal:
            journal.record(g1, g2, False, 100, SatResult.UNSAT, None, 1, 1)
            first = journal.consume_stats()
            assert first["appends"] == 1
            assert journal.consume_stats() == {}
            journal.record(g1, g3, False, 100, SatResult.SAT, None, 1, 1)
            assert journal.consume_stats() == {"appends": 1}


class TestCreationDurability:
    """The crash drill for journal *creation*.

    Per-record fsync makes appends durable, but a freshly created file's
    directory entry is only durable after the parent directory itself is
    fsync'd.  The constructor must do that exactly once — when (and only
    when) it creates the file in durable mode.
    """

    def _record_dir_fsyncs(self, monkeypatch):
        from repro.runtime import atomicio

        calls = []
        real = atomicio._fsync_directory
        monkeypatch.setattr(
            atomicio,
            "_fsync_directory",
            lambda directory: (calls.append(directory), real(directory))[1],
        )
        return calls

    def test_fresh_durable_journal_fsyncs_parent_directory(
        self, tmp_path, monkeypatch
    ):
        calls = self._record_dir_fsyncs(monkeypatch)
        journal = VerdictJournal(tmp_path / "j.jsonl", fsync=True)
        journal.close()
        assert str(tmp_path) in calls

    def test_no_directory_fsync_when_durability_is_off(
        self, tmp_path, monkeypatch
    ):
        calls = self._record_dir_fsyncs(monkeypatch)
        VerdictJournal(tmp_path / "j.jsonl", fsync=False).close()
        assert calls == []

    def test_no_directory_fsync_on_resume_of_existing_file(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "j.jsonl"
        VerdictJournal(path, fsync=False).close()
        calls = self._record_dir_fsyncs(monkeypatch)
        VerdictJournal(path, resume=True, fsync=True).close()
        assert calls == []


class TestGeneratorLabel:
    """The backend twins must share one journal namespace."""

    def test_backend_prefixes_are_stripped(self):
        from repro.runtime.journal import generator_label

        class SimGenGenerator:
            pass

        class BatchSimGenGenerator:
            pass

        class CompiledSimGenGenerator:
            pass

        labels = {
            generator_label(cls())
            for cls in (
                SimGenGenerator, BatchSimGenGenerator, CompiledSimGenGenerator
            )
        }
        assert labels == {"SimGenGenerator"}
        assert generator_label(None) == "none"

    def test_real_backends_fingerprint_identically(self):
        from repro.core.strategies import make_generator
        from repro.runtime.journal import config_fingerprint
        from repro.sweep import SweepConfig

        net, _ = small_network()
        config = SweepConfig(seed=3)
        prints = {
            json.dumps(
                config_fingerprint(
                    config,
                    make_generator(
                        "RandS", net, seed=3, simgen_backend=backend
                    ),
                ),
                sort_keys=True,
            )
            for backend in ("batch", "compiled", "reference")
        }
        assert len(prints) == 1
