"""Property test: all three simulation backends are bit-identical.

Random benchgen-style networks, random packed batches (including widths
that exercise partial top-word masking), constant nodes, and cone
restriction — ``Simulator``, ``NumpySimulator``, and ``CompiledSimulator``
must agree on every node word.
"""

import random

import pytest

from repro.network import NetworkBuilder
from repro.simulation import (
    CompiledSimulator,
    NumpySimulator,
    PatternBatch,
    Simulator,
)
from tests.conftest import random_network

np = pytest.importorskip("numpy")

#: Widths straddling the 64-bit word boundary (partial top-word masking).
WIDTHS = (1, 7, 63, 64, 65, 130)


def network_with_consts(seed):
    """A random network plus constant nodes mixed into the fanin graph."""
    net = random_network(seed=seed, num_inputs=6, num_gates=18)
    builder = NetworkBuilder(f"const{seed}")
    remap = {}
    for uid in net.topological_order():
        node = net.node(uid)
        if node.is_pi:
            remap[uid] = builder.pi()
        elif node.is_const:
            remap[uid] = builder.const(bool(node.table.bits))
        else:
            remap[uid] = builder.table(
                node.table, [remap[f] for f in node.fanins]
            )
    one = builder.const(True)
    zero = builder.const(False)
    gates = [remap[uid] for uid in net.node_ids() if net.node(uid).is_gate]
    mixed = builder.and_(gates[-1], one)
    builder.po(builder.or_(mixed, zero))
    for name, uid in net.pos:
        builder.po(remap[uid], name)
    return builder.build()


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("width", WIDTHS)
def test_backends_bit_identical(seed, width):
    net = network_with_consts(seed)
    batch = PatternBatch.random_for(net, width, random.Random(seed * 31 + width))
    reference = Simulator(net).run_batch(batch)
    assert NumpySimulator(net).run_words(batch.words(), width) == reference
    assert CompiledSimulator(net).run_batch(batch) == reference


@pytest.mark.parametrize("width", WIDTHS)
def test_oversized_pi_words_masked_identically(width):
    net = random_network(seed=9, num_inputs=5, num_gates=14)
    rng = random.Random(width * 7)
    words = {pi: rng.getrandbits(256) for pi in net.pis}
    reference = Simulator(net).run_words(words, width)
    assert NumpySimulator(net).run_words(words, width) == reference
    assert CompiledSimulator(net).run_words(words, width) == reference


def test_cone_restricted_compiled_agrees_with_numpy():
    net = network_with_consts(2)
    targets = [uid for uid in net.node_ids() if net.node(uid).is_gate][:3]
    batch = PatternBatch.random_for(net, 65, random.Random(5))
    full = NumpySimulator(net).run_words(batch.words(), 65)
    cone = CompiledSimulator(net, targets=targets).run_batch(batch)
    for uid, word in cone.items():
        assert word == full[uid]
