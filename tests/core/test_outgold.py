"""OUTgold strategies (paper §3 step 1)."""

import random

from repro.core.outgold import (
    alternating_outgold,
    level_alternating_outgold,
    random_outgold,
    select_targets,
)


class TestAlternating:
    def test_alternates_by_node_id(self, and_or_network):
        net, ids = and_or_network
        members = [ids["out"], ids["inner"], ids["a"]]
        gold = alternating_outgold(net, members)
        ordered = sorted(members)
        assert [gold[uid] for uid in ordered] == [0, 1, 0]

    def test_balanced_for_even_classes(self, and_or_network):
        net, ids = and_or_network
        gold = alternating_outgold(net, [ids["a"], ids["b"], ids["c"], ids["inner"]])
        assert sorted(gold.values()) == [0, 0, 1, 1]


class TestLevelAlternating:
    def test_orders_by_level(self, and_or_network):
        net, ids = and_or_network
        gold = level_alternating_outgold(net, [ids["out"], ids["a"], ids["inner"]])
        # level order: a (0), inner (1), out (2)
        assert gold[ids["a"]] == 0
        assert gold[ids["inner"]] == 1
        assert gold[ids["out"]] == 0


class TestRandomOutgold:
    def test_balanced_and_deterministic(self, and_or_network):
        net, ids = and_or_network
        members = [ids["a"], ids["b"], ids["c"], ids["inner"]]
        strat_a = random_outgold(seed=5)
        strat_b = random_outgold(seed=5)
        gold_a = strat_a(net, members)
        gold_b = strat_b(net, members)
        assert gold_a == gold_b
        assert sorted(gold_a.values()) == [0, 0, 1, 1]


class TestSelectTargets:
    def test_no_cap_returns_sorted(self):
        assert select_targets([5, 2, 9]) == [2, 5, 9]

    def test_cap_samples_subset(self):
        rng = random.Random(0)
        targets = select_targets(range(100), max_targets=8, rng=rng)
        assert len(targets) == 8
        assert targets == sorted(targets)
        assert all(0 <= t < 100 for t in targets)

    def test_cap_below_two_clamped(self):
        rng = random.Random(0)
        targets = select_targets(range(10), max_targets=1, rng=rng)
        assert len(targets) == 2

    def test_different_rng_different_subsets(self):
        a = select_targets(range(50), 5, random.Random(1))
        b = select_targets(range(50), 5, random.Random(2))
        assert a != b
