"""Packed bit-vector helpers for bit-parallel simulation.

A *word* is a Python int whose bit ``p`` holds a signal's value under
simulation pattern ``p``.  Python's arbitrary-precision ints give us
word-level AND/OR/XOR at C speed for any batch width, which is the classic
bit-parallel simulation trick (64 patterns per machine word in C; here the
width is arbitrary).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.errors import SimulationError


def width_mask(width: int) -> int:
    """The all-ones word of ``width`` bits."""
    if width < 0:
        raise SimulationError(f"width must be >= 0, got {width}")
    return (1 << width) - 1


def random_word(rng: random.Random, width: int) -> int:
    """A uniformly random ``width``-bit word."""
    if width < 0:
        raise SimulationError(f"width must be >= 0, got {width}")
    return rng.getrandbits(width) if width else 0


def exhaustive_word(var_index: int, num_vars: int) -> int:
    """Variable ``var_index``'s column in an exhaustive 2**num_vars batch.

    Pattern ``p`` assigns variable ``i`` the ``i``-th bit of ``p``; this is
    the same convention truth tables use, so exhaustive simulation of a cone
    reproduces its global function directly.
    """
    if not 0 <= var_index < num_vars:
        raise SimulationError(
            f"var index {var_index} out of range for {num_vars} vars"
        )
    width = 1 << num_vars
    word = 0
    for p in range(width):
        if (p >> var_index) & 1:
            word |= 1 << p
    return word


def get_bit(word: int, position: int) -> int:
    """Bit ``position`` of a word."""
    if position < 0:
        raise SimulationError(f"bit position must be >= 0, got {position}")
    return (word >> position) & 1


def set_bit(word: int, position: int, value: int) -> int:
    """A copy of ``word`` with bit ``position`` set to ``value``."""
    if position < 0:
        raise SimulationError(f"bit position must be >= 0, got {position}")
    if value:
        return word | (1 << position)
    return word & ~(1 << position)


def from_bits(bits: Sequence[int]) -> int:
    """Pack a list of 0/1 values (pattern 0 first) into a word."""
    word = 0
    for p, b in enumerate(bits):
        if b not in (0, 1, False, True):
            raise SimulationError(f"bit value {b!r} is not Boolean")
        if b:
            word |= 1 << p
    return word


def to_bits(word: int, width: int) -> list[int]:
    """Unpack a word into ``width`` 0/1 values (pattern 0 first)."""
    return [(word >> p) & 1 for p in range(width)]


def concat_words(words: Iterable[tuple[int, int]]) -> tuple[int, int]:
    """Concatenate ``(word, width)`` batches; returns (word, total width)."""
    result = 0
    offset = 0
    for word, width in words:
        if width < 0:
            raise SimulationError("negative batch width")
        result |= (word & width_mask(width)) << offset
        offset += width
    return result, offset
