"""Boolean-network substrate: DAG, cones, traversals, builder, validation."""

from repro.network.build import NetworkBuilder
from repro.network.cones import (
    MffcCache,
    fanin_cone,
    fanout_cone,
    ffc_check,
    mffc,
    mffc_depth,
    mffc_leaves,
)
from repro.network.network import Network
from repro.network.node import Node, NodeKind
from repro.network.traversal import (
    cone_pis,
    cone_topological_order,
    dfs_fanin,
    reachable_fanout,
)
from repro.network.validate import validate

__all__ = [
    "MffcCache",
    "Network",
    "NetworkBuilder",
    "Node",
    "NodeKind",
    "cone_pis",
    "cone_topological_order",
    "dfs_fanin",
    "fanin_cone",
    "fanout_cone",
    "ffc_check",
    "mffc",
    "mffc_depth",
    "mffc_leaves",
    "reachable_fanout",
    "validate",
]
