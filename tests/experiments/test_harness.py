"""Experiment harnesses on a tiny configuration (fast smoke coverage)."""

import pytest

from repro.core.strategies import STRATEGY_NAMES
from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    run_fig5,
    run_fig7,
    run_table1,
    run_table2,
)

TINY = ExperimentConfig(
    benchmarks=("alu4", "dec"),
    iterations=4,
    random_width=8,
    vectors_per_iteration=2,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(TINY)


class TestRunner:
    def test_instance_cached(self, runner):
        a = runner.instance("alu4")
        b = runner.instance("alu4")
        assert a is b

    def test_run_records_everything(self, runner):
        run = runner.run("alu4", "RevS", with_sat=True)
        assert run.benchmark == "alu4"
        assert run.cost_initial >= run.cost_final
        assert len(run.cost_history) == 1 + TINY.iterations
        assert run.sat_calls >= 0
        assert run.luts > 0

    def test_sim_only_run(self, runner):
        run = runner.run("dec", "AI+DC+MFFC", with_sat=False)
        assert run.sat_calls == 0

    def test_none_strategy_random_rounds_only(self, runner):
        run = runner.run("dec", "none", with_sat=False)
        assert len(run.cost_history) == 1


class TestTable1:
    def test_structure_and_baseline_normalization(self, runner):
        result = run_table1(TINY, runner)
        assert set(result.avg_cost) == set(STRATEGY_NAMES)
        assert result.avg_cost["RevS"] == pytest.approx(1.0)
        assert result.avg_runtime["RevS"] == pytest.approx(1.0)
        text = result.render()
        assert "Table 1" in text
        assert "AI+DC+MFFC" in text
        assert "paper" in text.lower()


class TestTable2:
    def test_rows_and_render(self, runner):
        result = run_table2(TINY, runner)
        assert [r.benchmark for r in result.rows] == list(TINY.benchmarks)
        text = result.render()
        assert "SAT calls" in text
        assert "Aggregate SGen/RevS" in text

    def test_scaled_variant(self, runner):
        result = run_table2(
            TINY, runner, scaled=True, scaled_benchmarks=[("alu4", 2)]
        )
        assert result.rows[0].copies == 2
        assert "(2)" in result.render()


class TestFig5:
    def test_points_and_pareto(self, runner):
        result = run_fig5(TINY, runner)
        assert len(result.points) == len(TINY.benchmarks)
        for point in result.points:
            assert point.pareto_class() in (
                "dominates",
                "trade-off",
                "dominated",
            )
        text = result.render()
        assert "Figure 5" in text
        assert "Pareto" in text


class TestFig7:
    def test_traces(self, runner):
        result = run_fig7(
            TINY, runner, benchmarks=("alu4",), iterations=6, patience=2
        )
        traces = result.traces["alu4"]
        labels = [t.label for t in traces]
        assert labels == ["RandS", "RandS->RevS", "RandS->SimGen"]
        for trace in traces:
            assert len(trace.costs) == 1 + 6
            assert len(trace.cumulative_time) == 6
            # cumulative time must be nondecreasing
            assert all(
                a <= b
                for a, b in zip(trace.cumulative_time, trace.cumulative_time[1:])
            )
        assert "Figure 7" in result.render()


class TestCli:
    def test_main_table1_quick_subset(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["table1", "--benchmarks", "alu4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "completed" in out
