"""Factory functions for the truth tables of common logic gates.

Benchmark generators and hand-built test circuits speak in gate names
(``and``, ``nand``, ``xor``, ...); this module maps those names to
:class:`~repro.logic.truthtable.TruthTable` instances of the right arity.
"""

from __future__ import annotations

from functools import reduce

from repro.errors import LogicError
from repro.logic.truthtable import TruthTable


def const0(num_vars: int = 0) -> TruthTable:
    """Constant 0 of the given arity."""
    return TruthTable.const(num_vars, False)


def const1(num_vars: int = 0) -> TruthTable:
    """Constant 1 of the given arity."""
    return TruthTable.const(num_vars, True)


def buf() -> TruthTable:
    """Single-input buffer."""
    return TruthTable.var(1, 0)


def inv() -> TruthTable:
    """Single-input inverter."""
    return ~TruthTable.var(1, 0)


def and_gate(num_vars: int = 2) -> TruthTable:
    """N-input AND."""
    _check_arity(num_vars)
    return reduce(
        lambda a, b: a & b,
        (TruthTable.var(num_vars, i) for i in range(num_vars)),
    )


def or_gate(num_vars: int = 2) -> TruthTable:
    """N-input OR."""
    _check_arity(num_vars)
    return reduce(
        lambda a, b: a | b,
        (TruthTable.var(num_vars, i) for i in range(num_vars)),
    )


def nand_gate(num_vars: int = 2) -> TruthTable:
    """N-input NAND."""
    return ~and_gate(num_vars)


def nor_gate(num_vars: int = 2) -> TruthTable:
    """N-input NOR."""
    return ~or_gate(num_vars)


def xor_gate(num_vars: int = 2) -> TruthTable:
    """N-input XOR (odd parity)."""
    _check_arity(num_vars)
    return reduce(
        lambda a, b: a ^ b,
        (TruthTable.var(num_vars, i) for i in range(num_vars)),
    )


def xnor_gate(num_vars: int = 2) -> TruthTable:
    """N-input XNOR (even parity)."""
    return ~xor_gate(num_vars)


def mux() -> TruthTable:
    """2:1 multiplexer: inputs (data0, data1, select)."""
    d0 = TruthTable.var(3, 0)
    d1 = TruthTable.var(3, 1)
    sel = TruthTable.var(3, 2)
    return (d0 & ~sel) | (d1 & sel)


def majority() -> TruthTable:
    """3-input majority (full-adder carry)."""
    a, b, c = (TruthTable.var(3, i) for i in range(3))
    return (a & b) | (a & c) | (b & c)


def _check_arity(num_vars: int) -> None:
    if num_vars < 1:
        raise LogicError(f"gate arity must be >= 1, got {num_vars}")


_FIXED = {
    "buf": buf,
    "inv": inv,
    "not": inv,
    "mux": mux,
    "maj": majority,
    "majority": majority,
}

_VARIADIC = {
    "and": and_gate,
    "or": or_gate,
    "nand": nand_gate,
    "nor": nor_gate,
    "xor": xor_gate,
    "xnor": xnor_gate,
}


def gate(name: str, num_vars: int | None = None) -> TruthTable:
    """Look up a gate truth table by name.

    Args:
        name: Gate name, case-insensitive (``and``, ``nand``, ``inv``, ...).
        num_vars: Arity for variadic gates; ignored for fixed-arity gates.
    """
    key = name.lower()
    if key in ("const0", "zero", "gnd"):
        return const0(num_vars or 0)
    if key in ("const1", "one", "vdd"):
        return const1(num_vars or 0)
    if key in _FIXED:
        return _FIXED[key]()
    if key in _VARIADIC:
        return _VARIADIC[key](2 if num_vars is None else num_vars)
    raise LogicError(f"unknown gate {name!r}")
