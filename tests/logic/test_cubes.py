"""Unit and property tests for cubes, rows, and ISOP extraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LogicError
from repro.logic.cubes import (
    Cube,
    Row,
    isop,
    isop_cover,
    iter_minterms,
    matching_rows,
    packed_rows,
    rows_of,
)
from repro.logic.gates import and_gate, mux, nand_gate, xor_gate
from repro.logic.truthtable import TruthTable

tables = st.integers(min_value=0, max_value=4).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestCube:
    def test_from_literals(self):
        cube = Cube.from_literals([1, None, 0])
        assert cube.literal(0) == 1
        assert cube.literal(1) is None
        assert cube.literal(2) == 0
        assert cube.num_dc() == 1
        assert cube.num_bound() == 2

    def test_from_literals_rejects_bad_values(self):
        with pytest.raises(LogicError):
            Cube.from_literals([2])

    def test_contains(self):
        cube = Cube.from_literals([1, None])
        assert cube.contains(0b01)
        assert cube.contains(0b11)
        assert not cube.contains(0b00)

    def test_values_outside_mask_rejected(self):
        with pytest.raises(LogicError):
            Cube(2, 0b01, 0b10)

    def test_with_literal(self):
        cube = Cube.full_dc(3).with_literal(1, 1)
        assert cube.literal(1) == 1
        assert cube.num_dc() == 2

    def test_to_truthtable(self):
        cube = Cube.from_literals([1, 0])
        tt = cube.to_truthtable()
        assert list(tt.minterms()) == [0b01]

    def test_compatible_with(self):
        cube = Cube.from_literals([1, None, 0])
        assert cube.compatible_with([1, 0, None])
        assert cube.compatible_with([None, None, None])
        assert not cube.compatible_with([0, None, None])

    def test_str(self):
        assert str(Cube.from_literals([1, None, 0])) == "1-0"

    def test_iter_minterms(self):
        cube = Cube.from_literals([None, 1])
        assert sorted(iter_minterms(cube)) == [0b10, 0b11]


class TestRow:
    def test_matches_output_filter(self):
        row = Row(Cube.from_literals([1, None]), 1)
        assert row.matches([1, None], 1)
        assert not row.matches([1, None], 0)
        assert row.matches([None, 0], None)

    def test_dc_size_is_equation_1(self):
        row = Row(Cube.from_literals([None, 1, None]), 0)
        assert row.dc_size() == 2

    def test_bad_output(self):
        with pytest.raises(LogicError):
            Row(Cube.full_dc(1), 2)


class TestIsop:
    def test_and_gate_single_cube(self):
        cubes = isop(and_gate(3))
        assert len(cubes) == 1
        assert str(cubes[0]) == "111"

    def test_nand_offset_is_and_onset(self):
        assert [str(c) for c in isop(~nand_gate(2))] == ["11"]

    def test_xor_needs_two_cubes(self):
        cubes = isop(xor_gate(2))
        assert len(cubes) == 2

    def test_const0_empty_cover(self):
        assert isop(TruthTable.const(3, False)) == []

    def test_const1_universal_cube(self):
        cubes = isop(TruthTable.const(3, True))
        assert len(cubes) == 1
        assert cubes[0].num_dc() == 3

    @given(tables)
    def test_cover_equals_onset(self, tt):
        cover = 0
        for cube in isop(tt):
            for m in iter_minterms(cube):
                cover |= 1 << m
        assert cover == tt.bits

    @given(tables)
    def test_cubes_never_overlap_offset(self, tt):
        for cube in isop(tt):
            for m in iter_minterms(cube):
                assert tt.output_for(m) == 1

    @given(tables)
    def test_irredundant(self, tt):
        """Dropping any cube must leave some onset minterm uncovered."""
        cubes = isop(tt)
        if len(cubes) < 2:
            return
        full = set()
        for cube in cubes:
            full.update(iter_minterms(cube))
        for skip in range(len(cubes)):
            partial = set()
            for i, cube in enumerate(cubes):
                if i != skip:
                    partial.update(iter_minterms(cube))
            assert partial != full

    @given(tables)
    def test_isop_cover_matches_isop(self, tt):
        assert list(isop_cover(tt)) == isop(tt)

    def test_isop_cover_is_memoized(self):
        tt = TruthTable(3, 0b10010110)
        assert isop_cover(tt) is isop_cover(TruthTable(3, 0b10010110))


class TestRowsOf:
    def test_every_minterm_covered_with_correct_output(self):
        tt = mux()
        rows = rows_of(tt)
        for m in range(tt.size):
            covering = [r for r in rows if r.cube.contains(m)]
            assert covering, f"minterm {m} uncovered"
            for row in covering:
                assert row.output == tt.output_for(m)

    def test_cached_identity(self):
        assert rows_of(and_gate(2)) is rows_of(and_gate(2))

    @given(tables)
    def test_onset_offset_partition(self, tt):
        rows = rows_of(tt)
        for m in range(tt.size):
            outputs = {r.output for r in rows if r.cube.contains(m)}
            assert outputs == {tt.output_for(m)}

    def test_packed_rows_agree_with_rows(self):
        tt = mux()
        packed = packed_rows(tt)
        rows = rows_of(tt)
        assert len(packed) == len(rows)
        for (mask, values, output), row in zip(packed, rows):
            assert mask == row.cube.mask
            assert values == row.cube.values
            assert output == row.output


class TestMatchingRows:
    def test_filters_on_inputs_and_output(self):
        tt = and_gate(2)
        # Output 1 forces the single 11 row.
        rows = matching_rows(tt, [None, None], 1)
        assert len(rows) == 1
        assert str(rows[0].cube) == "11"

    def test_input_filter(self):
        tt = and_gate(2)
        rows = matching_rows(tt, [1, None], None)
        # With a=1 both outputs remain possible.
        assert {r.output for r in rows} == {0, 1}

    def test_no_match_is_contradiction(self):
        tt = and_gate(2)
        assert matching_rows(tt, [0, None], 1) == []
