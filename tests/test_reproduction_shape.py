"""Headline reproduction-shape regression tests.

These encode the paper's central claims as assertions over a small, fixed
workload, so any change that silently breaks the reproduction (a weaker
implication engine, a broken decision ranking, a sweeping regression)
fails CI — not just the slow benchmark harness.
"""

import pytest

from repro.benchgen import sweep_instance
from repro.core import make_generator
from repro.sweep import SweepConfig, SweepEngine

#: Deep reconvergent instances where the RevS-vs-SimGen gap is robust.
WORKLOAD = ("cps", "b15_C")


@pytest.fixture(scope="module")
def sweeps():
    """(strategy -> summed metrics) over the fixed workload."""
    totals: dict[str, dict[str, float]] = {}
    for strategy in ("RevS", "SI+RD", "AI+DC+MFFC"):
        agg = {"cost": 0, "sat_calls": 0, "sim_time": 0.0}
        for name in WORKLOAD:
            network = sweep_instance(name)
            generator = make_generator(strategy, network, seed=42)
            engine = SweepEngine(
                network,
                generator,
                SweepConfig(seed=7, iterations=20, random_width=8),
            )
            classes, metrics = engine.run_simulation_phase()
            engine.run_sat_phase(classes, metrics)
            agg["cost"] += metrics.final_cost
            agg["sat_calls"] += metrics.sat_calls
            agg["sim_time"] += metrics.sim_time
        totals[strategy] = agg
    return totals


class TestPaperShape:
    def test_simgen_beats_revs_on_cost(self, sweeps):
        """Table 1's headline: SimGen's Equation-5 cost < RevS's."""
        assert sweeps["AI+DC+MFFC"]["cost"] < sweeps["RevS"]["cost"]

    def test_each_technique_direction(self, sweeps):
        """SI+RD already improves on RevS (the implication step §4)."""
        assert sweeps["SI+RD"]["cost"] <= sweeps["RevS"]["cost"]

    def test_simgen_needs_fewer_sat_calls(self, sweeps):
        """Table 2's headline: fewer SAT queries after better simulation."""
        assert sweeps["AI+DC+MFFC"]["sat_calls"] < sweeps["RevS"]["sat_calls"]

    def test_gap_is_substantial(self, sweeps):
        """The improvement must stay comparable to the paper's ~20%."""
        revs = sweeps["RevS"]["cost"]
        sgen = sweeps["AI+DC+MFFC"]["cost"]
        assert sgen <= 0.9 * revs, (sgen, revs)


class TestHybridShape:
    def test_hybrid_escapes_random_plateau(self):
        """Figure 7: RandS plateaus, RandS->SimGen keeps splitting (cps)."""
        from repro.core import HybridGenerator, RandomGenerator

        network = sweep_instance("cps")
        cfg = SweepConfig(seed=3, iterations=25, random_width=8)

        rand = RandomGenerator(network, seed=1)
        _, rand_metrics = SweepEngine(network, rand, cfg).run_simulation_phase()

        guided = make_generator("AI+DC+MFFC", network, seed=1)
        hybrid = HybridGenerator(network, guided, seed=2, patience=3)
        _, hybrid_metrics = SweepEngine(
            network, hybrid, cfg
        ).run_simulation_phase()

        assert hybrid.switched, "hybrid never handed over to SimGen"
        assert hybrid_metrics.final_cost < rand_metrics.final_cost
