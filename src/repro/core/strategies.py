"""Named strategy presets matching the paper's evaluation (§6.2).

The evaluation compares five generators:

====================  ==========================================
Name                  Configuration
====================  ==========================================
``RevS``              reverse simulation (baseline)
``SI+RD``             simple implication + random decision
``AI+RD``             advanced implication + random decision
``AI+DC``             advanced implication + don't-care heuristic
``AI+DC+MFFC``        + MFFC heuristic — this is *SimGen*
``RandS``             fully random vectors
====================  ==========================================

:func:`make_generator` builds any of them by name so experiment scripts and
examples can sweep the whole matrix.
"""

from __future__ import annotations

from typing import Callable

from repro.core.compiled import GENERATOR_BACKENDS, CompiledSimGenGenerator
from repro.core.decision import DecisionStrategy
from repro.core.generator import BaseVectorGenerator, SimGenGenerator
from repro.core.implication import ImplicationStrategy
from repro.core.random_gen import RandomGenerator
from repro.core.reverse import ReverseSimGenerator
from repro.errors import GenerationError
from repro.network.network import Network

#: Canonical order used by Table 1.
STRATEGY_NAMES = ("RevS", "SI+RD", "AI+RD", "AI+DC", "AI+DC+MFFC")

#: The paper refers to the full configuration as simply "SimGen".
SIMGEN = "AI+DC+MFFC"

_SIMGEN_CONFIGS: dict[str, tuple[ImplicationStrategy, DecisionStrategy]] = {
    "SI+RD": (ImplicationStrategy.SIMPLE, DecisionStrategy.RANDOM),
    "AI+RD": (ImplicationStrategy.ADVANCED, DecisionStrategy.RANDOM),
    "AI+DC": (ImplicationStrategy.ADVANCED, DecisionStrategy.DC),
    "AI+DC+MFFC": (ImplicationStrategy.ADVANCED, DecisionStrategy.DC_MFFC),
}


def make_generator(
    name: str,
    network: Network,
    seed: int = 0,
    vectors_per_iteration: int = 4,
    max_targets: int = 8,
    simgen_backend: str = "batch",
) -> BaseVectorGenerator:
    """Instantiate a generator by its paper name.

    Args:
        name: One of ``RandS``, ``RevS``, ``SI+RD``, ``AI+RD``, ``AI+DC``,
            ``AI+DC+MFFC`` (alias ``SimGen``), case-insensitive.
        network: The network vectors are generated for.
        seed: RNG seed (deterministic runs).
        vectors_per_iteration: Vectors emitted per guided iteration.
        max_targets: Target-node cap per vector for targeted generators.
        simgen_backend: ``"batch"`` (default) runs the SimGen variants on
            the lane-batched driver of :mod:`repro.core.batch` (C inner
            loop + 64-wide speculative verification); ``"compiled"`` on the
            array-lowered Python kernel of :mod:`repro.core.compiled`;
            ``"reference"`` keeps the dict-walking engines.  Trajectories
            are bit-identical across all three; only speed differs.
            Ignored for non-SimGen generators.
    """
    if simgen_backend not in GENERATOR_BACKENDS:
        raise GenerationError(
            f"unknown simgen backend {simgen_backend!r} "
            "(use 'batch', 'compiled', or 'reference')"
        )
    key = name.strip().lower()
    if key == "rands":
        # Random simulation covers many patterns per iteration cheaply;
        # scale its per-iteration budget to the guided generators' budget.
        return RandomGenerator(
            network, seed, vectors_per_iteration=vectors_per_iteration * 8
        )
    if key == "revs":
        # Classic reverse simulation targets a *pair* of class nodes with
        # complementary values (paper §1 step 1) — it keeps its pair
        # targeting regardless of the SimGen target budget.
        return ReverseSimGenerator(
            network,
            seed,
            vectors_per_iteration=vectors_per_iteration,
            max_targets=min(2, max_targets),
        )
    if key == "simgen":
        key = SIMGEN.lower()
    if simgen_backend == "batch":
        from repro.core.batch import BatchSimGenGenerator

        cls = BatchSimGenGenerator
    elif simgen_backend == "compiled":
        cls = CompiledSimGenGenerator
    else:
        cls = SimGenGenerator
    for config_name, (impl, dec) in _SIMGEN_CONFIGS.items():
        if key == config_name.lower():
            return cls(
                network,
                seed,
                implication_strategy=impl,
                decision_strategy=dec,
                vectors_per_iteration=vectors_per_iteration,
                max_targets=max_targets,
            )
    raise GenerationError(f"unknown strategy {name!r}")


#: Type of a generator factory bound to (network, seed).
GeneratorFactory = Callable[[Network, int], BaseVectorGenerator]


def factory(name: str, **kwargs) -> GeneratorFactory:
    """A factory closure for :func:`make_generator` with fixed options."""

    def build(network: Network, seed: int = 0) -> BaseVectorGenerator:
        return make_generator(name, network, seed, **kwargs)

    return build
