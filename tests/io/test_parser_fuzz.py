"""Fuzzing the BLIF/BENCH parsers with mutated and truncated sources.

The robustness contract: feeding the parsers *any* byte soup either yields
a network or raises :class:`ParseError` carrying a line number — never an
``IndexError``/``KeyError``/``ValueError`` leaking from parser internals —
and valid documents survive parse -> write -> parse with a stable, fixed
serialization.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.io import bench_text, blif_text, parse_bench, parse_blif
from tests.conftest import networks_equal, random_network

#: Forbidden escapees — the raw exceptions that sloppy parsing would leak.
LEAKY = (IndexError, KeyError, ValueError, AttributeError, TypeError)


def _seed_doc(fmt: str, seed: int) -> str:
    net = random_network(seed=seed, num_inputs=3, num_gates=8)
    return blif_text(net) if fmt == "blif" else bench_text(net)


HAND_BLIF = """\
.model hand
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
01 1
.names c g
0 1
.end
"""

HAND_BENCH = """\
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
t1 = AND(a, b)
f = NAND(t1, c)
"""


def _mutate(doc: str, ops: list[tuple[str, int, int]]) -> str:
    """Apply a deterministic edit script (truncate/delete/swap/dup/insert)."""
    for op, pos_a, pos_b in ops:
        if not doc:
            break
        a = pos_a % len(doc)
        if op == "truncate":
            doc = doc[:a]
        elif op == "delete":
            doc = doc[:a] + doc[a + 1:]
        elif op == "swap":
            b = pos_b % len(doc)
            lo, hi = min(a, b), max(a, b)
            if lo != hi:
                doc = (
                    doc[:lo] + doc[hi] + doc[lo + 1:hi] + doc[lo] + doc[hi + 1:]
                )
        elif op == "insert":
            junk = "()=.#01-xyz \n"[pos_b % 13]
            doc = doc[:a] + junk + doc[a:]
        elif op == "dup_line":
            lines = doc.splitlines(keepends=True)
            if lines:
                i = pos_a % len(lines)
                lines.insert(i, lines[i])
                doc = "".join(lines)
    return doc


edit_script = st.lists(
    st.tuples(
        st.sampled_from(["truncate", "delete", "swap", "insert", "dup_line"]),
        st.integers(0, 10_000),
        st.integers(0, 10_000),
    ),
    min_size=1,
    max_size=6,
)

doc_choice = st.tuples(st.integers(0, 30), edit_script)


def _assert_parse_contract(parse, doc: str) -> None:
    try:
        parse(doc)
    except ParseError as exc:
        assert exc.line is not None, (
            f"ParseError without a line number: {exc}"
        )
        assert isinstance(exc.line, int) and exc.line >= 1
    except LEAKY as exc:  # pragma: no cover - the failure being hunted
        pytest.fail(f"parser leaked {type(exc).__name__}: {exc}")


@settings(max_examples=150, deadline=None)
@given(doc_choice)
def test_blif_mutations_never_leak(params):
    seed, ops = params
    doc = _mutate(_seed_doc("blif", seed), ops)
    _assert_parse_contract(parse_blif, doc)


@settings(max_examples=150, deadline=None)
@given(doc_choice)
def test_bench_mutations_never_leak(params):
    seed, ops = params
    doc = _mutate(_seed_doc("bench", seed), ops)
    _assert_parse_contract(parse_bench, doc)


@settings(max_examples=100, deadline=None)
@given(edit_script)
def test_hand_blif_mutations_never_leak(ops):
    _assert_parse_contract(parse_blif, _mutate(HAND_BLIF, ops))


@settings(max_examples=100, deadline=None)
@given(edit_script)
def test_hand_bench_mutations_never_leak(ops):
    _assert_parse_contract(parse_bench, _mutate(HAND_BENCH, ops))


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 30), st.integers(0, 5000))
def test_blif_truncation_never_leaks(seed, cut):
    doc = _seed_doc("blif", seed)
    _assert_parse_contract(parse_blif, doc[: cut % (len(doc) + 1)])


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 30), st.integers(0, 5000))
def test_bench_truncation_never_leaks(seed, cut):
    doc = _seed_doc("bench", seed)
    _assert_parse_contract(parse_bench, doc[: cut % (len(doc) + 1)])


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 60))
def test_blif_roundtrip_stable(seed):
    text1 = _seed_doc("blif", seed)
    net1 = parse_blif(text1)
    text2 = blif_text(net1)
    net2 = parse_blif(text2)
    assert networks_equal(net1, net2, width=64)
    # The serialization reaches a fixed point after one round trip.
    assert blif_text(net2) == text2


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 60))
def test_bench_roundtrip_stable(seed):
    text1 = _seed_doc("bench", seed)
    net1 = parse_bench(text1)
    text2 = bench_text(net1)
    net2 = parse_bench(text2)
    assert networks_equal(net1, net2, width=64)
    assert bench_text(net2) == text2


@pytest.mark.parametrize(
    "parse, doc, needle",
    [
        (parse_blif, ".model m\n.outputs f\n.names g f\n1 1\n", "undefined"),
        (
            parse_blif,
            ".model m\n.outputs f\n.names f f\n1 1\n",
            "cycle",
        ),
        (
            parse_blif,
            ".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n",
            "does not match",
        ),
        (parse_bench, "OUTPUT(f)\nf = AND(g, h)\n", "undefined"),
        (parse_bench, "OUTPUT(f)\nf = BUF(f)\n", "cycle"),
        (parse_bench, "INPUT(a)\nOUTPUT(a)\na = AND(a, a)\n", "INPUT"),
    ],
)
def test_malformed_docs_report_lines(parse, doc, needle):
    with pytest.raises(ParseError) as info:
        parse(doc)
    assert info.value.line is not None
    assert needle in str(info.value)
