"""SweepService end-to-end: replay identity, delta reuse, validation.

The acceptance gates of the serving PR live here:

* a re-submitted identical netlist completes with **zero SAT solving**
  (full verdict-cache replay) and a byte-identical result;
* a lightly edited netlist re-solves only pairs whose cone signatures
  changed, and its result is byte-identical to a cold run — at
  ``jobs=1`` and ``jobs=4``.
"""

import pytest

from repro.serve import ClientBudget, SweepService
from tests.serve.conftest import miter_text, run_job


def sweep_request(text, **config):
    return {"kind": "sweep", "netlist": text, "config": config}


def result_of(job):
    assert job.status == "done", f"{job.status}: {job.error}"
    return job.result


class TestReplayIdentity:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_identical_resubmission_is_zero_sat_replay(self, jobs):
        text = miter_text()
        with SweepService(workers=1) as svc:
            cold = result_of(run_job(svc, sweep_request(text, jobs=jobs)))
            warm = result_of(run_job(svc, sweep_request(text, jobs=jobs)))
        assert cold["cache"]["appends"] > 0
        assert cold["cache"]["hits"] < cold["cache"]["appends"] + cold["cache"]["hits"]
        # Full replay: no fresh verdicts, zero SAT wall time anywhere.
        assert warm["cache"]["appends"] == 0
        assert warm["cache"]["misses"] == 0
        assert warm["metrics"]["sat_time"] == 0.0
        # Byte-identical outcome.
        assert warm["netlist"] == cold["netlist"]
        assert warm["sweep_signature"] == cold["sweep_signature"]
        assert warm["metrics"]["sat_calls"] == cold["metrics"]["sat_calls"]

    def test_worker_count_never_changes_bytes(self):
        text = miter_text()
        with SweepService(workers=1) as serial_svc:
            serial = result_of(run_job(serial_svc, sweep_request(text, jobs=1)))
        with SweepService(workers=2) as pooled_svc:
            pooled = result_of(run_job(pooled_svc, sweep_request(text, jobs=4)))
        assert pooled["netlist"] == serial["netlist"]
        assert pooled["sweep_signature"] == serial["sweep_signature"]


class TestDeltaReuse:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_edited_netlist_solves_only_the_delta(self, jobs):
        original = miter_text()
        edited = miter_text(mutate=2)  # one inverted gate in each copy
        assert edited != original
        # Cold baseline for the edited design, on a fresh cache.
        with SweepService(workers=1) as cold_svc:
            cold = result_of(
                run_job(cold_svc, sweep_request(edited, jobs=jobs))
            )
        # Warm: sweep the original first, then submit the edit.
        with SweepService(workers=1) as warm_svc:
            first = result_of(
                run_job(warm_svc, sweep_request(original, jobs=jobs))
            )
            second = result_of(
                run_job(warm_svc, sweep_request(edited, jobs=jobs))
            )
        # Untouched cones replay from the first job's verdicts...
        assert second["cache"]["hits"] > 0
        # ...only signatures changed by the edit are solved fresh...
        assert 0 < second["cache"]["appends"] < first["cache"]["appends"]
        # ...and cache state never leaks into the result bytes.
        assert second["netlist"] == cold["netlist"]
        assert second["sweep_signature"] == cold["sweep_signature"]


class TestCecJobs:
    def test_equivalent_pair(self, service):
        text = miter_text(num_gates=20)
        job = run_job(
            service,
            {"kind": "cec", "netlist": text, "revised": text},
        )
        result = result_of(job)
        assert result["verdict"] == "equivalent"
        assert result["equivalent"] is True
        assert result["counterexample"] is None

    def test_different_pair_reports_counterexample(self, service):
        job = run_job(
            service,
            {
                "kind": "cec",
                "netlist": miter_text(num_gates=20),
                "revised": miter_text(num_gates=20, mutate=0),
            },
        )
        result = result_of(job)
        if result["verdict"] == "different":
            assert result["counterexample"]
            assert all(bit in (0, 1) for _, bit in result["counterexample"])
        else:  # the mutation may be unobservable through the miter POs
            assert result["verdict"] == "equivalent"


class TestValidationAndBudgets:
    def test_unknown_kind_rejected(self, service):
        assert "rejected" in service.submit({"kind": "frobnicate"})

    def test_missing_netlist_rejected(self, service):
        assert "rejected" in service.submit({"kind": "sweep"})

    def test_unknown_config_field_rejected(self, service):
        answer = service.submit(
            {"kind": "sweep", "netlist": "x", "config": {"warp": 9}}
        )
        assert "warp" in answer["rejected"]

    def test_cec_needs_revised(self, service):
        assert "rejected" in service.submit(
            {"kind": "cec", "netlist": miter_text(num_gates=15)}
        )

    def test_pending_budget_rejects(self):
        svc = SweepService(
            workers=1, default_budget=ClientBudget(max_pending=0)
        )
        try:
            answer = svc.submit(
                {"kind": "sweep", "netlist": miter_text(num_gates=15)}
            )
            assert "rejected" in answer
            # The refused job is still queryable, marked rejected.
            assert svc.job(answer["id"]).status == "rejected"
        finally:
            svc.shutdown()

    def test_bad_netlist_fails_job(self, service):
        job = run_job(
            service, {"kind": "sweep", "netlist": "INPUT(\nnot a netlist"}
        )
        assert job.status == "failed"
        assert job.error

    def test_max_job_seconds_clamps_deadline(self):
        with SweepService(
            workers=1,
            default_budget=ClientBudget(max_job_seconds=0.000001),
        ) as svc:
            job = run_job(
                svc, {"kind": "sweep", "netlist": miter_text(num_gates=25)}
            )
            result = result_of(job)
            assert result["metrics"]["deadline_expired"] is True


class TestObservability:
    def test_trace_records_stream(self, service):
        job = run_job(
            service,
            {
                "kind": "sweep",
                "netlist": miter_text(num_gates=20),
                "trace": True,
            },
        )
        result_of(job)
        body = service.trace_bytes(job.id)
        assert body and body.count(b"\n") > 2
        # Offset reads support incremental streaming.
        tail = service.trace_bytes(job.id, offset=len(body) - 5)
        assert tail == body[-5:]

    def test_stats_surfaces_every_cache_layer(self, service):
        run_job(service, sweep_request(miter_text(num_gates=20)))
        stats = service.stats()
        assert stats["jobs"]["done"] == 1
        for layer in ("verdict", "transition", "tape"):
            assert layer in stats["cache"]
        assert stats["cache"]["verdict"]["inserts"] > 0
        for counter in ("hits", "misses", "evictions"):
            assert counter in stats["cache"]["tape"]
        # Verdict-cache traffic folds into the shared metrics registry.
        assert stats["registry"].get("cache.verdict.inserts", 0) > 0
