"""Structured stress instances for the CDCL solver."""

import itertools
import random

import pytest

from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver, SatResult, solve_cnf


def pigeonhole(pigeons: int, holes: int) -> Cnf:
    """PHP(p, h): UNSAT iff p > h; classic resolution-hard family."""
    cnf = Cnf(pigeons * holes)

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    for p in range(pigeons):
        cnf.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            cnf.add_clause([-var(p1, h), -var(p2, h)])
    return cnf


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_unsat_when_overfull(self, holes):
        result, _ = solve_cnf(pigeonhole(holes + 1, holes))
        assert result is SatResult.UNSAT

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_sat_when_fits(self, holes):
        cnf = pigeonhole(holes, holes)
        result, model = solve_cnf(cnf)
        assert result is SatResult.SAT
        assert cnf.evaluate(model)


class TestImplicationChains:
    def test_long_chain_propagates(self):
        """1 -> 2 -> ... -> n by unit propagation only (no decisions)."""
        n = 500
        solver = CdclSolver()
        solver.add_clause([1])
        for v in range(1, n):
            solver.add_clause([-v, v + 1])
        assert solver.solve() is SatResult.SAT
        model = solver.model()
        assert all(model[v] for v in range(1, n + 1))
        assert solver.stats["decisions"] == 0

    def test_chain_with_contradiction_unsat(self):
        n = 200
        solver = CdclSolver()
        solver.add_clause([1])
        for v in range(1, n):
            solver.add_clause([-v, v + 1])
        solver.add_clause([-n])
        assert solver.solve() is SatResult.UNSAT


class TestXorChains:
    """Parity constraints force deep search with learning."""

    def _xor_clauses(self, a: int, b: int, c: int):
        """Clauses for a XOR b = c."""
        return [
            [-a, -b, -c],
            [a, b, -c],
            [a, -b, c],
            [-a, b, c],
        ]

    def test_consistent_parity_chain(self):
        solver = CdclSolver()
        n = 30
        for i in range(1, n - 1, 2):
            for clause in self._xor_clauses(i, i + 1, i + 2):
                solver.add_clause(clause)
        assert solver.solve() is SatResult.SAT

    def test_contradictory_parity(self):
        # a XOR b = c, with a=b and c=1 forced: c must be 0 -> UNSAT.
        solver = CdclSolver()
        for clause in self._xor_clauses(1, 2, 3):
            solver.add_clause(clause)
        solver.add_clause([1])
        solver.add_clause([2])
        solver.add_clause([3])
        assert solver.solve() is SatResult.UNSAT


class TestRepeatedSolving:
    def test_many_queries_one_solver(self):
        """Selector-guarded queries stay correct over a long session."""
        rng = random.Random(5)
        solver = CdclSolver()
        variables = [solver.new_var() for _ in range(12)]
        # Base constraints: a random satisfiable 2-CNF chain.
        for i in range(len(variables) - 1):
            solver.add_clause([variables[i], variables[i + 1]])
        for round_index in range(30):
            selector = solver.new_var()
            forced = rng.choice(variables)
            polarity = rng.choice([1, -1])
            solver.add_clause([-selector, polarity * forced])
            result = solver.solve(assumptions=[selector])
            assert result in (SatResult.SAT, SatResult.UNSAT)
            if result is SatResult.SAT:
                assert solver.model()[forced] == (polarity > 0)
            solver.add_clause([-selector])
        # The base problem must still be SAT at the end.
        assert solver.solve() is SatResult.SAT


class TestLearntReduction:
    """LBD-based learnt-clause DB reduction under a forced-low cap."""

    def test_unsat_verdict_survives_reductions(self):
        solver = CdclSolver()
        solver.add_cnf(pigeonhole(6, 5))
        solver._learnt_cap = 32
        assert solver.solve() is SatResult.UNSAT
        assert solver.stats["reductions"] >= 1
        assert solver.stats["learnts_deleted"] >= 1

    @pytest.mark.parametrize("seed", range(5))
    def test_verdicts_match_unreduced_solver(self, seed):
        rng = random.Random(9000 + seed)
        cnf = Cnf(24)
        for _ in range(100):
            clause = rng.sample(range(1, 25), 3)
            cnf.add_clause([rng.choice([1, -1]) * v for v in clause])
        reduced = CdclSolver()
        reduced.add_cnf(cnf)
        reduced._learnt_cap = 16
        plain = CdclSolver()
        plain.add_cnf(cnf)
        verdict = reduced.solve()
        assert verdict is plain.solve()
        if verdict is SatResult.SAT:
            assert cnf.evaluate(reduced.model())

    def test_glue_clauses_are_never_deleted(self):
        solver = CdclSolver()
        solver.add_cnf(pigeonhole(6, 5))
        solver._learnt_cap = 32
        solver.solve()
        # Clauses with LBD <= 2 ("glue") are pinned by _reduce_learnts.
        assert solver.stats["learnts_deleted"] > 0
        assert all(
            solver._clauses[ci] is not None for ci in solver._learnts
        )
