"""Sweep engine behaviour at resource limits and corner cases."""

import pytest

from repro.core import make_generator
from repro.network import NetworkBuilder
from repro.sweep import SweepConfig, SweepEngine


def parity_pair_network(width=8):
    """Two structurally different parity trees (truly equivalent)."""
    builder = NetworkBuilder()
    xs = builder.pis(width)
    left = builder.reduce_tree("xor", xs)
    # right: linear chain instead of a balanced tree
    chain = xs[0]
    for x in xs[1:]:
        chain = builder.xor_(chain, x)
    builder.po(left, "l")
    builder.po(chain, "r")
    return builder.build(), left, chain


class TestConflictLimit:
    def test_tiny_budget_yields_unknowns(self):
        net, left, chain = parity_pair_network()
        engine = SweepEngine(
            net,
            None,
            SweepConfig(seed=1, sat_conflict_limit=1, random_width=32),
        )
        result = engine.run()
        # Parity equivalence needs conflicts; with budget 1 the solver must
        # give up on at least one pair (counted, class isolated).
        assert result.metrics.unknown >= 1
        assert result.classes.splittable() == []

    def test_generous_budget_proves_parity(self):
        net, left, chain = parity_pair_network()
        engine = SweepEngine(
            net,
            None,
            SweepConfig(seed=1, sat_conflict_limit=None, random_width=32),
        )
        result = engine.run()
        assert result.metrics.unknown == 0
        pairs = {frozenset((a, b)) for a, b, _ in result.equivalences}
        assert frozenset((left, chain)) in pairs


class TestDegenerateNetworks:
    def test_no_gates(self):
        builder = NetworkBuilder()
        a = builder.pi()
        builder.po(a)
        net = builder.build()
        engine = SweepEngine(net, None, SweepConfig(seed=1))
        result = engine.run()
        assert result.metrics.sat_calls == 0
        assert result.metrics.final_cost == 0

    def test_single_gate(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        builder.po(builder.and_(a, b))
        net = builder.build()
        result = SweepEngine(net, None, SweepConfig(seed=1)).run()
        assert result.metrics.sat_calls == 0

    def test_constant_heavy_network(self):
        builder = NetworkBuilder()
        a = builder.pi()
        one = builder.const(True)
        zero = builder.const(False)
        g1 = builder.and_(a, one)
        g2 = builder.or_(a, zero)  # equivalent to g1
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        generator = make_generator("AI+DC+MFFC", net, seed=1)
        result = SweepEngine(net, generator, SweepConfig(seed=1)).run()
        assert result.classes.splittable() == []
        pairs = {frozenset((x, y)) for x, y, _ in result.equivalences}
        assert frozenset((g1, g2)) in pairs


class TestMisc:
    def test_find_by_name(self):
        builder = NetworkBuilder()
        a = builder.pi("clk_en")
        g = builder.not_(a, "n_clk_en")
        builder.po(g)
        net = builder.build()
        assert net.find_by_name("clk_en") == a
        assert net.find_by_name("n_clk_en") == g
        assert net.find_by_name("missing") is None

    def test_strash_idempotent(self):
        from repro.transforms import strash
        from tests.conftest import random_network

        net = random_network(seed=13)
        once = strash(net)
        twice = strash(once)
        assert once.num_gates == twice.num_gates

    def test_fig7_find_switch_helper(self):
        from repro.experiments.fig7 import _find_switch

        assert _find_switch([10, 8, 8, 8, 8, 5], patience=3) == 4
        assert _find_switch([10, 9, 8, 7], patience=3) is None
        assert _find_switch([], patience=3) is None


class TestObserver:
    def test_observer_sees_all_phases(self):
        from tests.conftest import random_network

        net = random_network(seed=4, num_inputs=5, num_gates=16)
        events = []
        engine = SweepEngine(
            net,
            make_generator("RevS", net, seed=1),
            SweepConfig(seed=2, iterations=3),
            observer=lambda phase, step, cost: events.append((phase, step)),
        )
        engine.run()
        phases = {phase for phase, _ in events}
        assert "random" in phases
        assert "guided" in phases
        guided_steps = [s for p, s in events if p == "guided"]
        assert guided_steps == [0, 1, 2]

    def test_no_observer_is_fine(self):
        from tests.conftest import random_network

        net = random_network(seed=4)
        engine = SweepEngine(
            net, None, SweepConfig(seed=2)
        )
        engine.run()  # must not raise
