"""Microbenchmarks of the substrate layers.

Not a paper table — these time the building blocks (bit-parallel
simulation, CDCL solving, cut enumeration, vector generation) so
performance regressions in the substrate are visible independently of the
experiment-level numbers.
"""

from __future__ import annotations

import random

import pytest

from repro.benchgen import sweep_instance
from repro.core import make_generator
from repro.mapping import enumerate_cuts
from repro.simulation import PatternBatch, Simulator
from repro.sweep.checker import PairChecker


@pytest.fixture(scope="module")
def network():
    return sweep_instance("b14_C")


def test_bitparallel_simulation_256_patterns(benchmark, network):
    simulator = Simulator(network)
    batch = PatternBatch.random_for(network, 256, random.Random(0))

    benchmark(simulator.run_batch, batch)


def test_single_vector_simulation(benchmark, network):
    simulator = Simulator(network)
    vector = {pi: 0 for pi in network.pis}

    benchmark(simulator.run_vector, vector)


def test_cut_enumeration_k6(benchmark, network):
    benchmark(enumerate_cuts, network, 6, 8)


def test_sat_pair_check_incremental(benchmark, network):
    gates = [n.uid for n in network.gates()]
    rng = random.Random(1)
    pairs = [tuple(rng.sample(gates, 2)) for _ in range(20)]

    def run():
        checker = PairChecker(network, incremental=True)
        for a, b in pairs:
            checker.check(a, b)
        return checker.stats.calls

    calls = benchmark.pedantic(run, rounds=1, iterations=1)
    assert calls == 20


def test_simgen_vector_generation(benchmark, network):
    generator = make_generator("AI+DC+MFFC", network, seed=1)
    gates = [n.uid for n in network.gates()]
    classes = [gates[i : i + 8] for i in range(0, 64, 8)]

    benchmark(generator.generate, classes)


def test_revsim_vector_generation(benchmark, network):
    generator = make_generator("RevS", network, seed=1)
    gates = [n.uid for n in network.gates()]
    classes = [gates[i : i + 8] for i in range(0, 64, 8)]

    benchmark(generator.generate, classes)


def test_numpy_simulation_4096_patterns(benchmark, network):
    """Wide-batch backend (numpy) on the same circuit."""
    pytest.importorskip("numpy")
    from repro.simulation.numpy_backend import NumpySimulator

    simulator = NumpySimulator(network)
    batch = PatternBatch.random_for(network, 4096, random.Random(0))
    words = batch.words()

    benchmark(simulator.run_words, words, 4096)


def test_bigint_simulation_4096_patterns(benchmark, network):
    """Big-int backend at the same width, for comparison."""
    simulator = Simulator(network)
    batch = PatternBatch.random_for(network, 4096, random.Random(0))
    words = batch.words()

    benchmark(simulator.run_words, words, 4096)
