"""Tseitin-style encoding of Boolean networks into CNF, and miters.

Each node gets a SAT variable; a gate's relation to its fanins is encoded
from its onset/offset cube covers: an onset cube implies the output true, an
offset cube implies it false.  Because the two covers jointly contain every
minterm, the clauses define the output exactly.

The :func:`pair_miter` helper builds the equivalence-check instance the
sweeping engine solves: SAT means the two nodes differ and the model is a
counterexample input vector; UNSAT proves them equivalent.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.errors import SatError
from repro.logic.cubes import isop_cover
from repro.network.network import Network
from repro.sat.cnf import Cnf
from repro.simulation.patterns import InputVector


@lru_cache(maxsize=16384)
def gate_clause_templates(table) -> tuple[tuple[tuple[tuple[int, int], ...], int], ...]:
    """Per-table clause templates: one entry per onset/offset ISOP cube.

    Each entry is ``(pairs, sign)``: ``pairs`` lists the bound inputs as
    ``(fanin index, literal value)`` in ascending index order, and ``sign``
    is 1 when the clause implies the output true (onset cube) and 0 when it
    implies it false (offset cube).  LUT networks reuse few distinct
    functions, so caching the compiled template turns per-gate encoding
    into a literal-substitution loop (no cube objects, no per-literal
    method calls on the hot cone-encoding path).
    """
    templates = []
    for sign, cover in ((1, isop_cover(table)), (0, isop_cover(~table))):
        for cube in cover:
            mask = cube.mask
            values = cube.values
            pairs = tuple(
                (i, (values >> i) & 1)
                for i in range(table.num_vars)
                if (mask >> i) & 1
            )
            templates.append((pairs, sign))
    return tuple(templates)


class TseitinEncoder:
    """Incremental encoder: network nodes -> CNF variables and clauses."""

    def __init__(self, network: Network):
        self.network = network
        self.cnf = Cnf()
        self._node_var: dict[int, int] = {}
        #: node uid -> position in the network's topological order, built
        #: lazily on the first encode (the network is immutable while an
        #: encoder serves queries).
        self._topo_index: Optional[dict[int, int]] = None

    def var_of(self, uid: int) -> Optional[int]:
        """The CNF variable of a node, if already encoded."""
        return self._node_var.get(uid)

    def encode_cone(self, root: int) -> int:
        """Encode the fanin cone of ``root``; returns the root's variable.

        Incremental: the cone walk prunes at already-encoded nodes (an
        encoded node's cone is always fully encoded), so a query touching
        mostly-known logic costs only its new frontier — not a fresh
        whole-network traversal.  New nodes are processed in global
        topological order, which keeps variable numbering and clause order
        identical to a from-scratch encoding of the same query sequence.
        """
        node_var = self._node_var
        var = node_var.get(root)
        if var is not None:
            return var
        network = self.network
        if self._topo_index is None:
            self._topo_index = {
                uid: i for i, uid in enumerate(network.topological_order())
            }
        fresh: list[int] = []
        seen: set[int] = set()
        stack = [root]
        while stack:
            uid = stack.pop()
            if uid in seen or uid in node_var:
                continue
            seen.add(uid)
            fresh.append(uid)
            stack.extend(network.node(uid).fanins)
        fresh.sort(key=self._topo_index.__getitem__)
        cnf = self.cnf
        clauses = cnf.clauses
        for uid in fresh:
            node = network.node(uid)
            var = cnf.new_var()
            node_var[uid] = var
            if node.is_pi:
                continue
            if node.is_const:
                cnf.add_clause([var if node.table.bits else -var])
                continue
            fanin_vars = [node_var[f] for f in node.fanins]
            # Inline gate encoding: substitute this gate's fanin variables
            # into the cached per-table clause templates.  Appending to the
            # clause list directly is safe because every literal's variable
            # was allocated through ``cnf.new_var()`` above.
            for pairs, sign in gate_clause_templates(node.table):
                clause = [
                    (-fanin_vars[i] if lit else fanin_vars[i])
                    for i, lit in pairs
                ]
                clause.append(var if sign else -var)
                clauses.append(tuple(clause))
        return node_var[root]

    def _encode_gate(self, out_var: int, table, fanin_vars: list[int]) -> None:
        """Encode one gate (template substitution; kept for direct use)."""
        clauses = self.cnf.clauses
        for pairs, sign in gate_clause_templates(table):
            clause = [
                (-fanin_vars[i] if lit else fanin_vars[i]) for i, lit in pairs
            ]
            clause.append(out_var if sign else -out_var)
            clauses.append(tuple(clause))

    def model_to_vector(self, model: dict[int, bool]) -> InputVector:
        """Extract PI values from a SAT model (encoded PIs only)."""
        vector = InputVector()
        for pi in self.network.pis:
            var = self._node_var.get(pi)
            if var is not None and var in model:
                vector.set(pi, int(model[var]))
        return vector


def pair_miter(
    network: Network,
    node_a: int,
    node_b: int,
    complement: bool = False,
) -> tuple[Cnf, TseitinEncoder]:
    """CNF asserting the two nodes *differ* (or agree, if ``complement``).

    With ``complement=False`` the instance is SAT iff some input makes
    ``node_a != node_b`` — i.e., UNSAT proves equivalence.  With
    ``complement=True`` it is SAT iff some input makes them *equal* — i.e.,
    UNSAT proves ``node_a == NOT node_b``.
    """
    if node_a == node_b:
        raise SatError("miter of a node with itself is trivially UNSAT")
    encoder = TseitinEncoder(network)
    var_a = encoder.encode_cone(node_a)
    var_b = encoder.encode_cone(node_b)
    if complement:
        # SAT iff equal: (a & b) | (~a & ~b)
        encoder.cnf.add_clause([var_a, -var_b])
        encoder.cnf.add_clause([-var_a, var_b])
    else:
        # SAT iff different: exactly one true.
        encoder.cnf.add_clause([var_a, var_b])
        encoder.cnf.add_clause([-var_a, -var_b])
    return encoder.cnf, encoder


def po_miter(network_a: Network, network_b: Network) -> Network:
    """Structural miter network of two circuits with matching interfaces.

    Builds one network containing both circuits over shared PIs (matched by
    position) and one PO per output pair: ``out_a XOR out_b``.  The miter is
    constant-0 iff the circuits are equivalent.
    """
    from repro.logic import gates  # local import to avoid cycles at import time

    if len(network_a.pis) != len(network_b.pis):
        raise SatError("PI count mismatch between the two networks")
    if len(network_a.pos) != len(network_b.pos):
        raise SatError("PO count mismatch between the two networks")
    miter = Network(f"miter({network_a.name},{network_b.name})")
    shared_pis = [
        miter.add_pi(network_a.node(pi).name) for pi in network_a.pis
    ]

    def copy_into(source: Network) -> dict[int, int]:
        mapping: dict[int, int] = {}
        for old_pi, new_pi in zip(source.pis, shared_pis):
            mapping[old_pi] = new_pi
        for uid in source.topological_order():
            node = source.node(uid)
            if node.is_pi:
                continue
            mapping[uid] = miter.add_gate(
                node.table, tuple(mapping[f] for f in node.fanins)
            )
        return mapping

    map_a = copy_into(network_a)
    map_b = copy_into(network_b)
    for (name_a, uid_a), (_, uid_b) in zip(network_a.pos, network_b.pos):
        xor = miter.add_gate(
            gates.xor_gate(2), (map_a[uid_a], map_b[uid_b]), f"miter_{name_a}"
        )
        miter.add_po(xor, f"miter_{name_a}")
    return miter
