"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments table1 [--quick]
    python -m repro.experiments table2 [--quick]
    python -m repro.experiments table2-scaled
    python -m repro.experiments fig5 [--quick]
    python -m repro.experiments fig6
    python -m repro.experiments fig7
    python -m repro.experiments all [--quick]

``--quick`` restricts tables to a 10-benchmark subset; the full 42-benchmark
matrix takes substantially longer (pure-Python simulation and SAT).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2


def _config(args: argparse.Namespace) -> ExperimentConfig:
    if args.benchmarks:
        return ExperimentConfig(benchmarks=tuple(args.benchmarks))
    if args.quick:
        return ExperimentConfig.quick()
    return ExperimentConfig()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simgen-experiments",
        description="Regenerate the SimGen paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "table2-scaled", "fig5", "fig6", "fig7", "all"],
    )
    parser.add_argument(
        "--quick", action="store_true", help="10-benchmark subset"
    )
    parser.add_argument(
        "--benchmarks", nargs="*", help="explicit benchmark names"
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true", help="per-benchmark progress"
    )
    parser.add_argument(
        "--seeds", type=int, default=1,
        help="generator seeds averaged in Table 1 (default 1)",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="also dump results as JSON"
    )
    parser.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="wall-clock deadline per sweep run (expired runs are "
        "recorded as partial, never hung)",
    )
    parser.add_argument(
        "--escalate", action="store_true",
        help="retry conflict-limited pairs with growing limits",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="SAT-phase worker processes per sweep (results identical "
        "for any N)",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record a structured JSONL trace of every sweep "
        "(analyze with `python -m repro.tools trace FILE`)",
    )
    args = parser.parse_args(argv)
    config = _config(args)
    config.num_seeds = max(1, args.seeds)
    config.timeout_s = args.timeout
    if args.escalate:
        config.max_escalations = 2
    config.jobs = max(1, args.jobs)
    config.trace_path = args.trace
    runner = ExperimentRunner(config)

    chosen = args.experiment
    start = time.perf_counter()
    outputs: list[str] = []
    results: list[object] = []
    def record(result) -> None:
        results.append(result)
        outputs.append(result.render())

    try:
        if chosen in ("table1", "all"):
            record(run_table1(config, runner, verbose=args.verbose))
        if chosen in ("table2", "all"):
            record(run_table2(config, runner, verbose=args.verbose))
        if chosen in ("table2-scaled", "all"):
            record(run_table2(config, runner, scaled=True, verbose=args.verbose))
        if chosen in ("fig5", "all"):
            record(run_fig5(config, runner, verbose=args.verbose))
        if chosen in ("fig6", "all"):
            record(run_fig6(config, runner, verbose=args.verbose))
        if chosen in ("fig7", "all"):
            record(run_fig7(config, runner, verbose=args.verbose))
    finally:
        runner.close()
    if args.trace:
        print(f"trace -> {args.trace}", file=sys.stderr)
    elapsed = time.perf_counter() - start
    if args.json:
        from repro.experiments.serialize import dump_results

        dump_results(results, args.json)
    print("\n\n".join(outputs))
    print(f"\n[{chosen} completed in {elapsed:.1f}s]")
    return 0


def run(argv: list[str] | None = None) -> int:
    """Interrupt-safe wrapper used by the console entry point."""
    try:
        return main(argv)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(run())
