"""Trace analyzer: the durable-session supervision line."""

from repro.obs.analyze import TraceSummary, render, summarize


def test_durable_session_line_renders_journal_and_pool_counters():
    summary = TraceSummary()
    summary.counters = {
        "journal.appends": 12,
        "journal.replayed_verdicts": 7,
        "journal.torn_tail_truncations": 1,
        "pool.respawns": 2,
        "pool.retries": 3,
        "pool.pairs_redispatched": 3,
        "pool.heartbeats_missed": 1,
    }
    report = render(summary)
    line = next(l for l in report.splitlines() if "durable session" in l)
    assert "appends=12" in line
    assert "replayed=7" in line
    assert "torn_tails=1" in line
    assert "respawns=2" in line
    assert "redispatched=3" in line


def test_durable_session_line_absent_without_counters():
    assert "durable session" not in render(TraceSummary())


def test_counters_record_feeds_the_summary():
    records = [
        {"type": "header", "meta": {}},
        {"type": "counters", "values": {"journal.appends": 4}},
    ]
    summary = summarize(records)
    assert summary.counters == {"journal.appends": 4}
    assert "journal appends=4" in render(summary)
