"""Gate-library semantics."""

import pytest

from repro.errors import LogicError
from repro.logic import gates
from repro.logic.truthtable import TruthTable


def brute(table: TruthTable, fn):
    for m in range(table.size):
        bits = [(m >> i) & 1 for i in range(table.num_vars)]
        assert table.output_for(m) == fn(bits), (m, bits)


class TestFixedGates:
    def test_buf(self):
        brute(gates.buf(), lambda b: b[0])

    def test_inv(self):
        brute(gates.inv(), lambda b: 1 - b[0])

    def test_mux_selects(self):
        brute(gates.mux(), lambda b: b[1] if b[2] else b[0])

    def test_majority(self):
        brute(gates.majority(), lambda b: 1 if sum(b) >= 2 else 0)


class TestVariadicGates:
    @pytest.mark.parametrize("arity", [1, 2, 3, 5])
    def test_and(self, arity):
        brute(gates.and_gate(arity), lambda b: int(all(b)))

    @pytest.mark.parametrize("arity", [1, 2, 4])
    def test_or(self, arity):
        brute(gates.or_gate(arity), lambda b: int(any(b)))

    @pytest.mark.parametrize("arity", [2, 3])
    def test_nand(self, arity):
        brute(gates.nand_gate(arity), lambda b: 1 - int(all(b)))

    @pytest.mark.parametrize("arity", [2, 3])
    def test_nor(self, arity):
        brute(gates.nor_gate(arity), lambda b: 1 - int(any(b)))

    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_xor_parity(self, arity):
        brute(gates.xor_gate(arity), lambda b: sum(b) % 2)

    @pytest.mark.parametrize("arity", [2, 3])
    def test_xnor(self, arity):
        brute(gates.xnor_gate(arity), lambda b: 1 - sum(b) % 2)

    def test_zero_arity_rejected(self):
        with pytest.raises(LogicError):
            gates.and_gate(0)


class TestLookup:
    def test_lookup_by_name(self):
        assert gates.gate("AND", 3) == gates.and_gate(3)
        assert gates.gate("not") == gates.inv()
        assert gates.gate("const1") == TruthTable.const(0, True)
        assert gates.gate("gnd") == TruthTable.const(0, False)

    def test_default_arity_two(self):
        assert gates.gate("xor") == gates.xor_gate(2)

    def test_unknown_gate(self):
        with pytest.raises(LogicError):
            gates.gate("frobnicate")
