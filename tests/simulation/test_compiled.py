"""CompiledSimulator: bit-identical to Simulator, plus compile-time folding."""

import random

import pytest

from repro.errors import SimulationError
from repro.network import NetworkBuilder
from repro.simulation import CompiledSimulator, PatternBatch, Simulator
from repro.simulation.compiled import CODEGEN_NODE_LIMIT
from tests.conftest import random_network


class TestAgainstSimulator:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_networks(self, seed):
        net = random_network(seed=seed, num_inputs=6, num_gates=20)
        batch = PatternBatch.random_for(net, 100, random.Random(seed))
        expected = Simulator(net).run_batch(batch)
        actual = CompiledSimulator(net).run_batch(batch)
        assert actual == expected

    @pytest.mark.parametrize("width", [0, 1, 63, 64, 65, 130])
    def test_partial_width_masking(self, width):
        net = random_network(seed=3, num_inputs=5, num_gates=15)
        rng = random.Random(width)
        # Deliberately oversized PI words: bits above `width` must be masked.
        words = {pi: rng.getrandbits(192) for pi in net.pis}
        expected = Simulator(net).run_words(words, width)
        actual = CompiledSimulator(net).run_words(words, width)
        assert actual == expected

    def test_run_vector_and_output_words(self, and_or_network):
        net, ids = and_or_network
        sim = CompiledSimulator(net)
        out = sim.run_vector({ids["a"]: 1, ids["b"]: 1, ids["c"]: 0})
        assert out[ids["out"]] == 1
        batch = PatternBatch.random_for(net, 16, random.Random(0))
        values = sim.run_batch(batch)
        assert sim.output_words(values) == Simulator(net).output_words(
            Simulator(net).run_batch(batch)
        )


class TestConstantFolding:
    def build_with_consts(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        one = builder.const(True)
        zero = builder.const(False)
        g1 = builder.and_(a, one)       # folds to a
        g2 = builder.or_(b, zero)       # folds to b
        g3 = builder.and_(g1, zero)     # folds to constant 0
        g4 = builder.or_(g2, one)       # folds to constant 1
        out = builder.xor_(g3, g4)
        builder.po(out)
        return builder.build(), (a, b, one, zero, g1, g2, g3, g4, out)

    def test_folded_constants_bit_identical(self):
        net, _ = self.build_with_consts()
        batch = PatternBatch.random_for(net, 64, random.Random(1))
        assert CompiledSimulator(net).run_batch(batch) == Simulator(
            net
        ).run_batch(batch)

    def test_folding_is_visible(self):
        net, (_, _, _, _, _, _, g3, g4, _) = self.build_with_consts()
        sim = CompiledSimulator(net)
        # Gates whose cubes resolved against constant fanins became
        # compile-time constants: they cost no gate ops at run time.
        assert sim.num_folded >= 4  # one, zero, g3, g4
        assert sim.num_gate_ops < net.num_gates
        width = 8
        values = sim.run_words(
            {pi: random.Random(2).getrandbits(width) for pi in net.pis}, width
        )
        assert values[g3] == 0
        assert values[g4] == (1 << width) - 1

    def test_const_only_network(self):
        builder = NetworkBuilder()
        one = builder.const(True)
        builder.po(one)
        net = builder.build()
        sim = CompiledSimulator(net)
        assert sim.run_words({}, 5)[one] == 0b11111
        assert sim.num_gate_ops == 0


class TestConeRestriction:
    def test_targets_restrict_nodes_and_pis(self, fig4_network):
        net, ids = fig4_network
        sim = CompiledSimulator(net, targets=[ids["x"]])
        values = sim.run_batch(PatternBatch.random_for(net, 8, random.Random(0)))
        # Only x's cone (m, n, x and their PIs) is simulated.
        assert ids["x"] in values
        assert ids["t"] not in values and ids["y"] not in values
        assert set(sim.compiled_pis) < set(net.pis)

    def test_cone_values_match_full_simulation(self, fig4_network):
        net, ids = fig4_network
        batch = PatternBatch.random_for(net, 64, random.Random(7))
        full = Simulator(net).run_batch(batch)
        cone = CompiledSimulator(net, targets=[ids["z"], ids["t"]]).run_batch(
            batch
        )
        for uid, word in cone.items():
            assert word == full[uid]

    def test_cone_run_accepts_only_cone_pis(self, fig4_network):
        net, ids = fig4_network
        sim = CompiledSimulator(net, targets=[ids["m"]])
        rng = random.Random(3)
        words = {pi: rng.getrandbits(4) for pi in sim.compiled_pis}
        out = sim.run_words(words, 4)  # non-cone PIs not required
        assert ids["m"] in out

    def test_unknown_target_rejected(self, fig4_network):
        net, _ = fig4_network
        with pytest.raises(Exception):
            CompiledSimulator(net, targets=[10**9])


class TestErrorsAndFallback:
    def test_missing_pi_rejected(self, and_or_network):
        net, ids = and_or_network
        with pytest.raises(SimulationError, match="missing word"):
            CompiledSimulator(net).run_words({ids["a"]: 1}, 1)

    def test_negative_width_rejected(self, and_or_network):
        net, _ = and_or_network
        with pytest.raises(SimulationError):
            CompiledSimulator(net).run_words({}, -1)

    def test_tape_interpreter_matches_codegen(self, monkeypatch):
        net = random_network(seed=11, num_inputs=6, num_gates=25)
        batch = PatternBatch.random_for(net, 96, random.Random(11))
        compiled = CompiledSimulator(net)
        assert compiled._fn is not None
        monkeypatch.setattr(
            "repro.simulation.compiled.CODEGEN_NODE_LIMIT", 0
        )
        interpreted = CompiledSimulator(net)
        assert interpreted._fn is None  # fell back to the tape interpreter
        assert interpreted.run_batch(batch) == compiled.run_batch(batch)

    def test_codegen_limit_is_sane(self):
        assert CODEGEN_NODE_LIMIT > 1000


class TestTapeCache:
    """The process-wide compiled-tape LRU (serving-daemon warm paths)."""

    def setup_method(self):
        from repro.simulation import compiled as mod

        mod.clear_tape_cache()
        self.mod = mod

    def test_recompile_hits_and_shares_artifacts(self):
        net = random_network(seed=21, num_inputs=6, num_gates=24)
        before = self.mod.tape_cache_info()
        first = CompiledSimulator(net)
        second = CompiledSimulator(net)
        info = self.mod.tape_cache_info()
        assert info["misses"] == before["misses"] + 1
        assert info["hits"] == before["hits"] + 1
        # The immutable compile products are shared, stats are private.
        assert second._tape is first._tape
        assert second._fn is first._fn
        assert second.stats is not first.stats
        batch = PatternBatch.random_for(net, 64, random.Random(21))
        assert second.run_batch(batch) == first.run_batch(batch)

    def test_equal_reparse_hits_across_objects(self):
        from repro.io import bench_text, parse_bench

        net = random_network(seed=22, num_inputs=6, num_gates=24)
        text = bench_text(net)
        CompiledSimulator(parse_bench(text))
        before = self.mod.tape_cache_info()["hits"]
        reparsed = parse_bench(text)
        CompiledSimulator(reparsed)
        assert self.mod.tape_cache_info()["hits"] == before + 1

    def test_targets_key_separately(self):
        net = random_network(seed=23, num_inputs=6, num_gates=24)
        root = next(uid for _, uid in net.pos)
        CompiledSimulator(net)
        before = self.mod.tape_cache_info()
        cone = CompiledSimulator(net, targets=[root])
        info = self.mod.tape_cache_info()
        assert info["misses"] == before["misses"] + 1
        batch = PatternBatch.random_for(net, 32, random.Random(23))
        full = CompiledSimulator(net).run_batch(batch)
        words = {pi: batch.words()[pi] for pi in cone.compiled_pis}
        assert cone.run_words(words, batch.width)[root] == full[root]

    def test_eviction_bounds_residency(self, monkeypatch):
        monkeypatch.setattr(self.mod, "TAPE_CACHE_CAP", 2)
        for seed in range(4):
            CompiledSimulator(
                random_network(seed=seed, num_inputs=5, num_gates=12)
            )
        info = self.mod.tape_cache_info()
        assert info["size"] <= 2
        assert info["evictions"] >= 2

    def test_clear_keeps_lifetime_counters(self):
        CompiledSimulator(
            random_network(seed=24, num_inputs=5, num_gates=12)
        )
        misses = self.mod.tape_cache_info()["misses"]
        self.mod.clear_tape_cache()
        info = self.mod.tape_cache_info()
        assert info["size"] == 0
        assert info["misses"] == misses

    def test_concurrent_compiles_are_consistent(self):
        import threading

        net = random_network(seed=25, num_inputs=6, num_gates=24)
        batch = PatternBatch.random_for(net, 64, random.Random(25))
        expected = Simulator(net).run_batch(batch)
        results = []
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            results.append(CompiledSimulator(net).run_batch(batch))

        pool = [threading.Thread(target=worker) for _ in range(6)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert all(r == expected for r in results)
        info = self.mod.tape_cache_info()
        assert info["hits"] + info["misses"] >= 6
