"""Synthetic stand-ins for the VTR / EPFL / ITC'99 benchmark suites."""

from repro.benchgen.suite import (
    BENCHMARKS,
    BenchmarkSpec,
    FIG7_BENCHMARKS,
    benchmark_names,
    build_benchmark,
    sweep_instance,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "FIG7_BENCHMARKS",
    "benchmark_names",
    "build_benchmark",
    "sweep_instance",
]
