"""Table 1: average normalized cost and simulation runtime vs RevS (§6.2).

The paper reports, over 42 benchmarks after one round of random simulation
and 20 guided iterations::

            RevS   SI+RD  AI+RD  AI+DC  AI+DC+MFFC
    Cost    1.000  0.814  0.812  0.810  0.807 (-19.3%)
    SimRT   1.000  1.204  1.263  1.262  1.130 (+13.0%)

This module regenerates both rows for our substrate.  Only the simulation
phase is measured (cost is Equation 5 after the 20th iteration; runtime is
generation + simulation wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.strategies import STRATEGY_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import mean, safe_ratio
from repro.experiments.report import format_table
from repro.experiments.runner import BenchmarkRun, ExperimentRunner

#: The paper's published values, for side-by-side comparison in the report.
PAPER_COST = {
    "RevS": 1.000,
    "SI+RD": 0.814,
    "AI+RD": 0.812,
    "AI+DC": 0.810,
    "AI+DC+MFFC": 0.807,
}
PAPER_RUNTIME = {
    "RevS": 1.000,
    "SI+RD": 1.204,
    "AI+RD": 1.263,
    "AI+DC": 1.262,
    "AI+DC+MFFC": 1.130,
}


@dataclass(slots=True)
class Table1Result:
    """Aggregated Table-1 rows plus the per-benchmark raw runs."""

    avg_cost: dict[str, float]
    avg_runtime: dict[str, float]
    #: Sum-based ratios (total cost / total RevS cost): robust against
    #: benchmarks whose absolute costs are tiny.
    aggregate_cost: dict[str, float] = field(default_factory=dict)
    aggregate_runtime: dict[str, float] = field(default_factory=dict)
    runs: dict[tuple[str, str], BenchmarkRun] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Metric", *STRATEGY_NAMES]
        rows = [
            ["Cost (measured, mean)"]
            + [f"{self.avg_cost[s]:.3f}" for s in STRATEGY_NAMES],
            ["Cost (measured, aggregate)"]
            + [f"{self.aggregate_cost.get(s, 0.0):.3f}" for s in STRATEGY_NAMES],
            ["Cost (paper)"]
            + [f"{PAPER_COST[s]:.3f}" for s in STRATEGY_NAMES],
            ["Sim runtime (measured, mean)"]
            + [f"{self.avg_runtime[s]:.3f}" for s in STRATEGY_NAMES],
            ["Sim runtime (measured, aggregate)"]
            + [
                f"{self.aggregate_runtime.get(s, 0.0):.3f}"
                for s in STRATEGY_NAMES
            ],
            ["Sim runtime (paper)"]
            + [f"{PAPER_RUNTIME[s]:.3f}" for s in STRATEGY_NAMES],
        ]
        return format_table(
            headers,
            rows,
            title=(
                "Table 1: average normalized cost / simulation runtime "
                "(relative to RevS)"
            ),
        )


def run_table1(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ExperimentRunner] = None,
    verbose: bool = False,
) -> Table1Result:
    """Execute the Table-1 sweep matrix and aggregate."""
    config = config or ExperimentConfig()
    runner = runner or ExperimentRunner(config)
    seeds = [config.seed + 1009 * k for k in range(max(1, config.num_seeds))]
    runs: dict[tuple[str, str], BenchmarkRun] = {}
    # Seed-averaged (cost, sim_time) per (benchmark, strategy).
    averaged: dict[tuple[str, str], tuple[float, float]] = {}
    for benchmark in config.benchmarks:
        for strategy in STRATEGY_NAMES:
            costs = []
            times = []
            for seed in seeds:
                run = runner.run(
                    benchmark, strategy, with_sat=False, generator_seed=seed
                )
                costs.append(run.cost_final)
                times.append(run.sim_time)
            runs[(benchmark, strategy)] = run
            averaged[(benchmark, strategy)] = (mean(costs), mean(times))
            if verbose:
                print(
                    f"  {benchmark:10s} {strategy:11s} "
                    f"cost {run.cost_initial:4d}->{mean(costs):6.1f} "
                    f"sim {mean(times):6.2f}s"
                )
    avg_cost: dict[str, float] = {}
    avg_runtime: dict[str, float] = {}
    aggregate_cost: dict[str, float] = {}
    aggregate_runtime: dict[str, float] = {}
    for strategy in STRATEGY_NAMES:
        cost_ratios = []
        time_ratios = []
        total_cost = 0.0
        total_time = 0.0
        base_cost = 0.0
        base_time = 0.0
        for benchmark in config.benchmarks:
            base_c, base_t = averaged[(benchmark, "RevS")]
            run_c, run_t = averaged[(benchmark, strategy)]
            cost_ratios.append(safe_ratio(run_c, base_c))
            time_ratios.append(safe_ratio(run_t, base_t))
            total_cost += run_c
            total_time += run_t
            base_cost += base_c
            base_time += base_t
        avg_cost[strategy] = mean(cost_ratios)
        avg_runtime[strategy] = mean(time_ratios)
        aggregate_cost[strategy] = safe_ratio(total_cost, base_cost)
        aggregate_runtime[strategy] = safe_ratio(total_time, base_time)
    return Table1Result(
        avg_cost=avg_cost,
        avg_runtime=avg_runtime,
        aggregate_cost=aggregate_cost,
        aggregate_runtime=aggregate_runtime,
        runs=runs,
    )
