"""And-Inverter Graphs with complemented edges and structural hashing.

The AIG is the canonical representation of modern SAT-sweeping tools
(ABC's GIA): every node is a 2-input AND, inversion is a bit on the edge,
and structural hashing makes identical AND pairs share one node.  This
package complements the table-based :class:`~repro.network.network.Network`
(which models LUTs) with the representation equivalence checkers actually
strash into.

A *literal* is ``2 * node_index + phase``; node 0 is the constant FALSE,
so literal 0 is const0 and literal 1 is const1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import NetworkError

#: Literal of constant false / true.
FALSE = 0
TRUE = 1


def lit(node: int, phase: int = 0) -> int:
    """The literal of ``node`` with the given phase (1 = complemented)."""
    if node < 0 or phase not in (0, 1):
        raise NetworkError(f"bad literal components ({node}, {phase})")
    return 2 * node + phase


def lit_node(literal: int) -> int:
    """The node index of a literal."""
    return literal >> 1


def lit_phase(literal: int) -> int:
    """The phase bit of a literal."""
    return literal & 1


def lit_not(literal: int) -> int:
    """The complemented literal."""
    return literal ^ 1


@dataclass(slots=True)
class AigNode:
    """One AIG node: a PI or a 2-input AND over literals."""

    index: int
    fanin0: int = -1  # literals; -1 for PIs / const
    fanin1: int = -1
    name: Optional[str] = None

    @property
    def is_const(self) -> bool:
        return self.index == 0

    @property
    def is_pi(self) -> bool:
        return self.fanin0 < 0 and self.index != 0

    @property
    def is_and(self) -> bool:
        return self.fanin0 >= 0


class Aig:
    """A structurally hashed And-Inverter Graph."""

    def __init__(self, name: str = "aig"):
        self.name = name
        self._nodes: list[AigNode] = [AigNode(0)]  # node 0 = const FALSE
        self._pis: list[int] = []
        self._pos: list[tuple[str, int]] = []  # (name, literal)
        self._strash: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input; returns its (positive) literal."""
        index = len(self._nodes)
        self._nodes.append(AigNode(index, name=name))
        self._pis.append(index)
        return lit(index)

    def add_po(self, literal: int, name: Optional[str] = None) -> None:
        """Expose a literal as a primary output."""
        self._check_literal(literal)
        if name is None:
            name = f"po{len(self._pos)}"
        self._pos.append((name, literal))

    def and_(self, a: int, b: int) -> int:
        """AND of two literals with constant/trivial simplification.

        Applies the standard one-level rules (0 dominates, 1 is neutral,
        ``x & x = x``, ``x & ~x = 0``) and strashes: an (a, b) pair already
        built returns the existing node's literal.
        """
        self._check_literal(a)
        self._check_literal(b)
        if a > b:
            a, b = b, a
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
        if a == lit_not(b):
            return FALSE
        key = (a, b)
        if key in self._strash:
            return lit(self._strash[key])
        index = len(self._nodes)
        self._nodes.append(AigNode(index, a, b))
        self._strash[key] = index
        return lit(index)

    # Derived operators ---------------------------------------------------
    def or_(self, a: int, b: int) -> int:
        """OR via De Morgan."""
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        """XOR as (a & ~b) | (~a & b)."""
        return self.or_(self.and_(a, lit_not(b)), self.and_(lit_not(a), b))

    def mux_(self, d0: int, d1: int, sel: int) -> int:
        """2:1 mux: sel ? d1 : d0."""
        return self.or_(self.and_(lit_not(sel), d0), self.and_(sel, d1))

    def and_many(self, literals: list[int]) -> int:
        """Balanced AND tree over a literal list (TRUE for empty)."""
        if not literals:
            return TRUE
        layer = list(literals)
        while len(layer) > 1:
            nxt = [
                self.and_(layer[i], layer[i + 1])
                for i in range(0, len(layer) - 1, 2)
            ]
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def or_many(self, literals: list[int]) -> int:
        """Balanced OR tree over a literal list (FALSE for empty)."""
        return lit_not(self.and_many([lit_not(l) for l in literals]))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _check_literal(self, literal: int) -> None:
        if literal < 0 or lit_node(literal) >= len(self._nodes):
            raise NetworkError(f"literal {literal} out of range")

    def node(self, index: int) -> AigNode:
        try:
            return self._nodes[index]
        except IndexError as exc:
            raise NetworkError(f"no AIG node {index}") from exc

    @property
    def num_nodes(self) -> int:
        """Total nodes including const0 and PIs."""
        return len(self._nodes)

    @property
    def num_ands(self) -> int:
        return sum(1 for n in self._nodes if n.is_and)

    @property
    def pis(self) -> tuple[int, ...]:
        """PI node indices in creation order."""
        return tuple(self._pis)

    @property
    def pos(self) -> tuple[tuple[str, int], ...]:
        """(name, literal) pairs."""
        return tuple(self._pos)

    def ands(self) -> Iterator[AigNode]:
        """AND nodes in topological (creation) order."""
        return (n for n in self._nodes if n.is_and)

    def levels(self) -> dict[int, int]:
        """Level per node (PIs and const at 0)."""
        level: dict[int, int] = {}
        for node in self._nodes:
            if node.is_and:
                level[node.index] = 1 + max(
                    level[lit_node(node.fanin0)], level[lit_node(node.fanin1)]
                )
            else:
                level[node.index] = 0
        return level

    def depth(self) -> int:
        """Maximum level."""
        levels = self.levels()
        return max(levels.values(), default=0)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def simulate(self, pi_words: dict[int, int], width: int) -> dict[int, int]:
        """Bit-parallel evaluation; returns node index -> packed word."""
        mask = (1 << width) - 1
        values: dict[int, int] = {0: 0}
        for index in self._pis:
            if index not in pi_words:
                raise NetworkError(f"missing word for AIG PI {index}")
            values[index] = pi_words[index] & mask

        def lit_value(literal: int) -> int:
            value = values[lit_node(literal)]
            return (value ^ mask) if lit_phase(literal) else value

        for node in self._nodes:
            if node.is_and:
                values[node.index] = lit_value(node.fanin0) & lit_value(
                    node.fanin1
                )
        return values

    def evaluate(self, pi_values: dict[int, int]) -> dict[str, int]:
        """Single-pattern evaluation; returns PO name -> 0/1."""
        values = self.simulate(pi_values, 1)

        def lit_value(literal: int) -> int:
            return values[lit_node(literal)] ^ lit_phase(literal)

        return {name: lit_value(literal) for name, literal in self._pos}

    # ------------------------------------------------------------------
    def cleanup(self) -> int:
        """Drop AND nodes unreachable from the POs; returns count removed.

        Rebuilds the graph (indices change); strash state is preserved for
        the surviving structure.
        """
        reachable = {0}
        stack = [lit_node(l) for _, l in self._pos]
        while stack:
            index = stack.pop()
            if index in reachable:
                continue
            reachable.add(index)
            node = self._nodes[index]
            if node.is_and:
                stack.append(lit_node(node.fanin0))
                stack.append(lit_node(node.fanin1))
        reachable.update(self._pis)

        remap: dict[int, int] = {}
        new_nodes: list[AigNode] = []
        for node in self._nodes:
            if node.index not in reachable:
                continue
            new_index = len(new_nodes)
            remap[node.index] = new_index
            if node.is_and:
                new_nodes.append(
                    AigNode(
                        new_index,
                        lit(remap[lit_node(node.fanin0)], lit_phase(node.fanin0)),
                        lit(remap[lit_node(node.fanin1)], lit_phase(node.fanin1)),
                        node.name,
                    )
                )
            else:
                new_nodes.append(AigNode(new_index, name=node.name))
        removed = len(self._nodes) - len(new_nodes)
        self._nodes = new_nodes
        self._pis = [remap[i] for i in self._pis]
        self._pos = [
            (name, lit(remap[lit_node(l)], lit_phase(l))) for name, l in self._pos
        ]
        self._strash = {
            (n.fanin0, n.fanin1): n.index for n in self._nodes if n.is_and
        }
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Aig({self.name!r}: {len(self._pis)} PIs, {self.num_ands} ANDs, "
            f"{len(self._pos)} POs)"
        )
