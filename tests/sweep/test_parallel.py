"""Process-parallel SAT phase: deterministic merge, chaos, budgets.

The contract (docs/PERFORMANCE.md): for any worker count the parallel
path's refinement trajectory is bit-identical, and its final merges,
classes, and cost equal the serial path's — the serial path itself is
untouched when ``jobs=1``.
"""

import pytest

from repro.core.strategies import factory, make_generator
from repro.errors import SweepError
from repro.runtime import Budget
from repro.sat.tseitin import po_miter
from repro.sweep import SweepConfig, SweepEngine, check_equivalence
from tests.conftest import random_network
from tests.runtime.conftest import assert_equivalences_sound, parity_pair_network


def duplicated_network(seed=3):
    """Two copies of a random circuit over shared PIs: rich in provable
    equivalences, so the SAT phase has real parallel work."""
    base = random_network(seed=seed, num_inputs=5, num_gates=25)
    return po_miter(base, base)


def run_sweep(net, jobs, **overrides):
    config = SweepConfig(seed=11, jobs=jobs, **overrides)
    generator = make_generator("RandS", net, seed=11)
    return SweepEngine(net, generator, config).run()


def merge_projection(result):
    """What every schedule must agree on (see SweepTrace.same_merges)."""
    return (
        sorted(result.equivalences),
        sorted(map(tuple, result.classes.all_classes())),
        result.classes.cost(),
        result.metrics.proven,
    )


class TestDeterministicMerge:
    def test_parallel_merges_equal_serial(self):
        net = duplicated_network()
        serial = run_sweep(net, jobs=1)
        parallel = run_sweep(net, jobs=4)
        assert merge_projection(serial) == merge_projection(parallel)
        assert serial.metrics.cost_history == parallel.metrics.cost_history
        assert_equivalences_sound(net, parallel.equivalences)

    def test_trajectory_is_worker_count_invariant(self):
        net = duplicated_network()
        results = {jobs: run_sweep(net, jobs=jobs) for jobs in (2, 3, 4)}
        reference = results[2]
        for jobs in (3, 4):
            other = results[jobs]
            # Bit-identical, not merely merge-equal: same verdict sequence,
            # same counterexamples, same waves.
            assert other.equivalences == reference.equivalences
            assert other.metrics.sat_calls == reference.metrics.sat_calls
            assert other.metrics.disproven == reference.metrics.disproven
            assert other.metrics.unknown == reference.metrics.unknown
            assert (
                other.metrics.vectors_simulated
                == reference.metrics.vectors_simulated
            )
            assert other.metrics.waves == reference.metrics.waves
            assert other.classes.all_classes() == reference.classes.all_classes()

    def test_serial_path_reports_no_waves(self):
        net = duplicated_network()
        serial = run_sweep(net, jobs=1)
        assert serial.metrics.waves == 0
        assert serial.metrics.worker_failures == 0

    def test_parallel_escalation_ladder_matches_serial(self):
        net = parity_pair_network(n=10, pairs=2)
        def run(jobs):
            config = SweepConfig(
                seed=3,
                sat_conflict_limit=100,
                escalation_factor=4,
                max_escalations=2,
                jobs=jobs,
            )
            return SweepEngine(net, None, config).run()

        serial, parallel = run(1), run(2)
        assert merge_projection(serial) == merge_projection(parallel)
        assert parallel.metrics.escalations > 0
        assert parallel.metrics.unknown == 0
        assert_equivalences_sound(net, parallel.equivalences)


class TestCecParallel:
    def test_equivalent_verdicts_match(self):
        base = random_network(seed=5, num_inputs=5, num_gates=20)
        results = {}
        for jobs in (1, 2):
            results[jobs] = check_equivalence(
                base,
                base,
                generator_factory=factory("RandS"),
                config=SweepConfig(seed=7, jobs=jobs),
            )
        assert results[1].verdict == results[2].verdict == "equivalent"
        assert results[1].outputs == results[2].outputs

    def test_different_verdicts_match(self):
        golden = random_network(seed=5, num_inputs=5, num_gates=20)
        revised = random_network(seed=6, num_inputs=5, num_gates=20)
        results = {}
        for jobs in (1, 2):
            results[jobs] = check_equivalence(
                golden,
                revised,
                generator_factory=factory("RandS"),
                config=SweepConfig(seed=7, jobs=jobs),
            )
        assert results[1].verdict == results[2].verdict == "different"
        assert results[1].outputs == results[2].outputs
        assert results[2].counterexample is not None


class TestChaos:
    def test_killed_worker_pair_is_retried_and_merge_matches_clean_run(self):
        """A worker SIGKILLed mid-wave costs a respawn, not a verdict: the
        lost pair is re-dispatched and the merged result equals both an
        undisturbed jobs=2 run and the serial jobs=1 run."""
        net = duplicated_network()
        clean = run_sweep(net, jobs=2)
        assert clean.equivalences, "workload must have provable pairs"
        target = clean.equivalences[0][:2]
        chaotic = run_sweep(net, jobs=2, chaos_kill_pair=target)
        assert chaotic.metrics.worker_failures == 1
        assert chaotic.metrics.unknown == clean.metrics.unknown
        assert merge_projection(chaotic) == merge_projection(clean)
        assert merge_projection(chaotic) == merge_projection(
            run_sweep(net, jobs=1)
        )
        assert_equivalences_sound(net, chaotic.equivalences)

    def test_persistent_killer_degrades_pair_without_corrupting_merge(self):
        """When every respawn is re-armed (chaos_kill_limit=None) the retry
        budget exhausts and the pair degrades to UNKNOWN — never guessed."""
        net = duplicated_network()
        clean = run_sweep(net, jobs=2)
        target = clean.equivalences[0][:2]
        chaotic = run_sweep(
            net, jobs=2, chaos_kill_pair=target,
            chaos_kill_limit=None, pair_retry_limit=1,
        )
        metrics = chaotic.metrics
        # Initial dispatch + one retry, both killed.
        assert metrics.worker_failures == 2
        assert metrics.unknown >= 1
        assert target not in {(a, b) for a, b, _ in chaotic.equivalences}
        # Everything that WAS merged is still a true equivalence.
        assert_equivalences_sound(net, chaotic.equivalences)

    def test_expired_budget_yields_sound_partial_result(self):
        net = duplicated_network()
        result = run_sweep(net, jobs=2, budget=Budget(seconds=0))
        assert result.metrics.deadline_expired
        assert result.metrics.sat_calls == 0
        assert result.equivalences == []


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(SweepError):
            SweepEngine(duplicated_network(), None, SweepConfig(jobs=0))

    def test_solver_factory_incompatible_with_jobs(self):
        with pytest.raises(SweepError):
            SweepEngine(
                duplicated_network(),
                None,
                SweepConfig(jobs=2, solver_factory=object),
            )

    def test_reference_engine_incompatible_with_jobs(self):
        with pytest.raises(SweepError):
            SweepEngine(
                duplicated_network(),
                None,
                SweepConfig(jobs=2, engine="reference"),
            )
