"""Random and 1-distance vector generators."""

import random

from repro.core import OneDistanceGenerator, RandomGenerator
from repro.simulation import InputVector
from tests.conftest import random_network


class TestRandomGenerator:
    def test_emits_configured_count(self):
        net = random_network(seed=0)
        generator = RandomGenerator(net, seed=1, vectors_per_iteration=7)
        vectors = generator.generate([])
        assert len(vectors) == 7

    def test_vectors_unconstrained(self):
        net = random_network(seed=0)
        generator = RandomGenerator(net, seed=1)
        for vector in generator.generate([[1, 2]]):
            assert len(vector.values) == 0

    def test_ignores_classes(self):
        net = random_network(seed=0)
        generator = RandomGenerator(net, seed=1, vectors_per_iteration=3)
        assert len(generator.generate([[1, 2], [3, 4]])) == 3


class TestOneDistance:
    def test_without_seed_vector_falls_back_to_random(self):
        net = random_network(seed=0)
        generator = OneDistanceGenerator(net, seed=1, vectors_per_iteration=4)
        vectors = generator.generate([])
        assert len(vectors) == 4
        assert all(len(v.values) == 0 for v in vectors)

    def test_flips_one_pi_per_vector(self):
        net = random_network(seed=0)
        generator = OneDistanceGenerator(net, seed=1, vectors_per_iteration=3)
        base = InputVector({pi: 0 for pi in net.pis})
        generator.set_seed_vector(base)
        vectors = generator.generate([])
        for i, vector in enumerate(vectors):
            flipped = [pi for pi in net.pis if vector.values[pi] == 1]
            assert flipped == [net.pis[i % len(net.pis)]]

    def test_cycles_over_pis(self):
        net = random_network(seed=0)
        n = len(net.pis)
        generator = OneDistanceGenerator(
            net, seed=1, vectors_per_iteration=n + 1
        )
        generator.set_seed_vector(InputVector({pi: 0 for pi in net.pis}))
        vectors = generator.generate([])
        first = [pi for pi in net.pis if vectors[0].values[pi] == 1]
        wrap = [pi for pi in net.pis if vectors[n].values[pi] == 1]
        assert first == wrap  # wrapped back to PI 0


class TestEngineSeedFeedback:
    def test_cex_vectors_seed_one_distance(self):
        """The engine feeds SAT counterexamples into 1-distance generators."""
        from repro.core import OneDistanceGenerator
        from repro.sweep import SweepConfig, SweepEngine
        from repro.network import NetworkBuilder

        builder = NetworkBuilder()
        a, b, c = builder.pis(3)
        g1 = builder.and_(a, b)
        g2 = builder.and_(g1, builder.not_(c))  # near-miss of g1
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        generator = OneDistanceGenerator(net, seed=1)
        engine = SweepEngine(
            net,
            generator,
            # One pattern of random sim: g1/g2 often share a class, so the
            # SAT phase must disprove and feed the cex back.
            SweepConfig(seed=5, iterations=2, random_width=1),
        )
        result = engine.run()
        assert result.classes.splittable() == []
        if result.metrics.disproven:
            assert generator._seed_vector is not None
