"""The Boolean network: a DAG of single-output nodes (paper §2.1).

The network owns node storage, fanout bookkeeping, levels, and the list of
primary outputs.  Primary outputs are *references* to nodes (with optional
names), matching the paper's definition of a PO as a node whose value is
observed; several POs may reference one node.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import NetworkError
from repro.logic.truthtable import TruthTable
from repro.network.node import Node, NodeKind


class Network:
    """A combinational Boolean network.

    Nodes are created through :meth:`add_pi` / :meth:`add_gate` and receive
    increasing unique ids.  Fanouts and levels are maintained by the network;
    levels are computed lazily and invalidated by any structural mutation.
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self._nodes: dict[int, Node] = {}
        self._fanouts: dict[int, list[int]] = {}
        self._pis: list[int] = []
        self._pos: list[tuple[str, int]] = []
        self._next_uid = 0
        self._levels: Optional[dict[int, int]] = None
        self._topo: Optional[list[int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input; returns its node id."""
        uid = self._new_uid()
        node = Node(uid, NodeKind.PI, name=name)
        self._nodes[uid] = node
        self._fanouts[uid] = []
        self._pis.append(uid)
        self._invalidate()
        return uid

    def add_gate(
        self,
        table: TruthTable,
        fanins: Iterable[int],
        name: Optional[str] = None,
    ) -> int:
        """Create a gate with the given function and fanins; returns its id."""
        fanin_tuple = tuple(fanins)
        for f in fanin_tuple:
            if f not in self._nodes:
                raise NetworkError(f"fanin {f} does not exist")
        uid = self._new_uid()
        node = Node(uid, NodeKind.GATE, fanin_tuple, table, name)
        self._nodes[uid] = node
        self._fanouts[uid] = []
        for f in set(fanin_tuple):
            self._fanouts[f].append(uid)
        self._invalidate()
        return uid

    def add_const(self, value: bool, name: Optional[str] = None) -> int:
        """Create a zero-fanin constant gate."""
        return self.add_gate(TruthTable.const(0, value), (), name)

    def add_po(self, node_uid: int, name: Optional[str] = None) -> None:
        """Mark a node as (one of the) primary outputs."""
        if node_uid not in self._nodes:
            raise NetworkError(f"PO target {node_uid} does not exist")
        if name is None:
            name = f"po{len(self._pos)}"
        self._pos.append((name, node_uid))
        self._invalidate()

    def _invalidate(self) -> None:
        self._levels = None
        self._topo = None

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, uid: int) -> Node:
        """The node with the given id."""
        try:
            return self._nodes[uid]
        except KeyError as exc:
            raise NetworkError(f"no node with id {uid}") from exc

    def __contains__(self, uid: int) -> bool:
        return uid in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Total node count (PIs + gates)."""
        return len(self._nodes)

    @property
    def num_gates(self) -> int:
        """Gate/LUT count (excludes PIs)."""
        return sum(1 for n in self._nodes.values() if n.is_gate)

    @property
    def pis(self) -> tuple[int, ...]:
        """Primary input ids in creation order."""
        return tuple(self._pis)

    @property
    def pos(self) -> tuple[tuple[str, int], ...]:
        """Primary outputs as ``(name, node_id)`` pairs."""
        return tuple(self._pos)

    @property
    def po_nodes(self) -> tuple[int, ...]:
        """Primary output node ids (may repeat if a node drives two POs)."""
        return tuple(uid for _, uid in self._pos)

    def nodes(self) -> Iterator[Node]:
        """Iterate all nodes in id order."""
        for uid in sorted(self._nodes):
            yield self._nodes[uid]

    def gates(self) -> Iterator[Node]:
        """Iterate gate nodes in id order."""
        return (n for n in self.nodes() if n.is_gate)

    def node_ids(self) -> list[int]:
        """All node ids in increasing order."""
        return sorted(self._nodes)

    def fanouts(self, uid: int) -> tuple[int, ...]:
        """Ids of nodes that use ``uid`` as a fanin."""
        if uid not in self._nodes:
            raise NetworkError(f"no node with id {uid}")
        return tuple(self._fanouts[uid])

    def num_fanouts(self, uid: int) -> int:
        """Fanout count of a node (distinct reader nodes)."""
        return len(self._fanouts[uid])

    def find_by_name(self, name: str) -> Optional[int]:
        """The id of the first node with the given name, or ``None``."""
        for node in self._nodes.values():
            if node.name == name:
                return node.uid
        return None

    # ------------------------------------------------------------------
    # Orders and levels
    # ------------------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Node ids ordered so every fanin precedes its readers.

        Raises :class:`NetworkError` if the graph contains a cycle.
        """
        if self._topo is not None:
            return list(self._topo)
        in_deg = {uid: len(set(n.fanins)) for uid, n in self._nodes.items()}
        ready = sorted(uid for uid, d in in_deg.items() if d == 0)
        order: list[int] = []
        queue = list(ready)
        while queue:
            uid = queue.pop()
            order.append(uid)
            for out in self._fanouts[uid]:
                in_deg[out] -= 1
                if in_deg[out] == 0:
                    queue.append(out)
        if len(order) != len(self._nodes):
            raise NetworkError("network contains a cycle")
        self._topo = order
        return list(order)

    def levels(self) -> dict[int, int]:
        """Level of every node: longest path from any PI (PIs are level 0)."""
        if self._levels is None:
            levels: dict[int, int] = {}
            for uid in self.topological_order():
                node = self._nodes[uid]
                if node.is_pi or node.is_const:
                    levels[uid] = 0
                else:
                    levels[uid] = 1 + max(levels[f] for f in node.fanins)
            self._levels = levels
        return dict(self._levels)

    def level(self, uid: int) -> int:
        """Level of one node."""
        if self._levels is None:
            self.levels()
        assert self._levels is not None
        return self._levels[uid]

    def depth(self) -> int:
        """Maximum level over all nodes (0 for an empty/PI-only network)."""
        levels = self.levels()
        return max(levels.values(), default=0)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def replace_fanin(self, uid: int, old: int, new: int) -> None:
        """Redirect every occurrence of fanin ``old`` of node ``uid`` to ``new``."""
        node = self.node(uid)
        if old not in node.fanins:
            raise NetworkError(f"{old} is not a fanin of {uid}")
        if new not in self._nodes:
            raise NetworkError(f"replacement node {new} does not exist")
        node.fanins = tuple(new if f == old else f for f in node.fanins)
        if uid in self._fanouts[old]:
            self._fanouts[old].remove(uid)
        if uid not in self._fanouts[new]:
            self._fanouts[new].append(uid)
        self._invalidate()

    def replace_node(self, old: int, new: int) -> None:
        """Redirect all readers (fanouts and POs) of ``old`` to ``new``."""
        if old == new:
            return
        self.node(old)
        self.node(new)
        for reader in list(self._fanouts[old]):
            self.replace_fanin(reader, old, new)
        self._pos = [
            (name, new if uid == old else uid) for name, uid in self._pos
        ]
        self._invalidate()

    def remove_dangling(self) -> int:
        """Delete gates with no fanouts that drive no PO; returns count removed."""
        po_set = set(self.po_nodes)
        removed = 0
        changed = True
        while changed:
            changed = False
            for uid in list(self._nodes):
                node = self._nodes[uid]
                if node.is_pi or uid in po_set:
                    continue
                if not self._fanouts[uid]:
                    for f in set(node.fanins):
                        self._fanouts[f].remove(uid)
                    del self._nodes[uid]
                    del self._fanouts[uid]
                    removed += 1
                    changed = True
        if removed:
            self._invalidate()
        return removed

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------
    def clone(self, name: Optional[str] = None) -> "Network":
        """Deep copy with identical node ids."""
        other = Network(name or self.name)
        other._next_uid = self._next_uid
        for uid, node in self._nodes.items():
            other._nodes[uid] = Node(
                node.uid, node.kind, node.fanins, node.table, node.name
            )
            other._fanouts[uid] = list(self._fanouts[uid])
        other._pis = list(self._pis)
        other._pos = list(self._pos)
        return other

    def map_clone(
        self, name: Optional[str] = None
    ) -> tuple["Network", dict[int, int]]:
        """Copy with freshly numbered ids; returns (copy, old->new map)."""
        other = Network(name or self.name)
        mapping: dict[int, int] = {}
        # PIs keep their declaration order (positional PI matching between
        # a network and its clone must stay valid).
        for pi in self._pis:
            mapping[pi] = other.add_pi(self._nodes[pi].name)
        for uid in self.topological_order():
            node = self._nodes[uid]
            if node.is_pi:
                continue
            mapping[uid] = other.add_gate(
                node.table,
                tuple(mapping[f] for f in node.fanins),
                node.name,
            )
        for po_name, uid in self._pos:
            other.add_po(mapping[uid], po_name)
        return other, mapping

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network({self.name!r}: {len(self._pis)} PIs, "
            f"{self.num_gates} gates, {len(self._pos)} POs)"
        )
