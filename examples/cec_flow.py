#!/usr/bin/env python3
"""Combinational equivalence checking of two circuit implementations.

The motivating workload of the paper: verify that a restructured circuit
(post-synthesis, post-ECO, ...) still computes the same function.  We build
a benchmark, derive a function-preserving rewritten version (the "revised"
netlist), then run sweep-accelerated CEC — and repeat with a deliberately
injected bug to show counterexample extraction.

Run:  python examples/cec_flow.py
"""

import random

from repro.benchgen import build_benchmark
from repro.core import factory
from repro.simulation import Simulator
from repro.sweep import SweepConfig, check_equivalence
from repro.transforms import rewrite


def main() -> None:
    golden = build_benchmark("priority")
    print(f"Golden circuit : {golden}")

    # The "revised" implementation: same function, different structure.
    revised = rewrite(golden, seed=11, intensity=0.4)
    print(f"Revised circuit: {revised} (rewritten, function-preserving)")

    config = SweepConfig(seed=3, iterations=8, random_width=8)
    result = check_equivalence(
        golden, revised, generator_factory=factory("AI+DC+MFFC"), config=config
    )
    print(f"\nCEC verdict: {'EQUIVALENT' if result.equivalent else 'DIFFERENT'}")
    print(f"  SAT calls: {result.metrics.sat_calls}, "
          f"proven: {result.metrics.proven}, "
          f"disproven: {result.metrics.disproven}")

    # ------------------------------------------------------------------
    # Inject a bug: flip one gate's function in the revised netlist.
    # ------------------------------------------------------------------
    buggy, _ = revised.map_clone()
    victim = next(
        node for node in buggy.gates() if not node.is_const and node.num_fanins >= 2
    )
    victim.table = ~victim.table
    print(f"\nInjected bug: inverted gate {victim.label()}")

    result = check_equivalence(
        golden, buggy, generator_factory=factory("AI+DC+MFFC"), config=config
    )
    print(f"CEC verdict: {'EQUIVALENT' if result.equivalent else 'DIFFERENT'}")
    bad = [name for name, verdict in result.outputs.items() if verdict != "equal"]
    print(f"  differing outputs: {bad if bad else '(none observable)'}")
    if result.counterexample is not None:
        vector = result.counterexample.completed(
            golden.pis, random.Random(0)
        )
        golden_out = Simulator(golden).run_vector(
            {p: vector.values[q] for p, q in zip(golden.pis, golden.pis)}
        )
        print(f"  counterexample over {len(vector.values)} PIs extracted "
              "(distinguishing input found by the SAT phase)")


if __name__ == "__main__":
    main()
