"""Property-based netlist roundtrips over randomly shaped networks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import aig_to_network, network_to_aig
from repro.aig.aiger import aag_text, parse_aag
from repro.io import bench_text, blif_text, parse_bench, parse_blif
from tests.conftest import networks_equal, random_network

network_params = st.tuples(
    st.integers(0, 200),  # seed
    st.integers(2, 6),    # inputs
    st.integers(3, 20),   # gates
)


@settings(max_examples=25, deadline=None)
@given(network_params)
def test_blif_roundtrip(params):
    seed, inputs, gates = params
    net = random_network(seed=seed, num_inputs=inputs, num_gates=gates)
    parsed = parse_blif(blif_text(net))
    assert networks_equal(net, parsed, width=64)


@settings(max_examples=25, deadline=None)
@given(network_params)
def test_bench_roundtrip(params):
    seed, inputs, gates = params
    net = random_network(seed=seed, num_inputs=inputs, num_gates=gates)
    parsed = parse_bench(bench_text(net))
    assert networks_equal(net, parsed, width=64)


@settings(max_examples=25, deadline=None)
@given(network_params)
def test_aig_conversion_roundtrip(params):
    seed, inputs, gates = params
    net = random_network(seed=seed, num_inputs=inputs, num_gates=gates)
    back = aig_to_network(network_to_aig(net))
    assert networks_equal(net, back, width=64)


@settings(max_examples=20, deadline=None)
@given(network_params)
def test_aag_roundtrip_through_network(params):
    seed, inputs, gates = params
    net = random_network(seed=seed, num_inputs=inputs, num_gates=gates)
    aig = network_to_aig(net)
    parsed = parse_aag(aag_text(aig))
    back = aig_to_network(parsed)
    assert networks_equal(net, back, width=64)
