#!/usr/bin/env python3
"""Compare all five generation strategies on one benchmark (mini Table 1).

Runs RevS, SI+RD, AI+RD, AI+DC and AI+DC+MFFC through the same sweep and
prints the Equation-5 cost trajectory, simulation runtime, and SAT-phase
statistics of each — the per-benchmark view behind the paper's Table 1 and
Figure 5.

Run:  python examples/strategy_comparison.py [benchmark]
"""

import sys
import time

from repro.benchgen import benchmark_names, sweep_instance
from repro.core import STRATEGY_NAMES, make_generator
from repro.sweep import SweepConfig, SweepEngine


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "b15_C"
    if benchmark not in benchmark_names():
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; choose from {benchmark_names()}"
        )
    instance = sweep_instance(benchmark)
    print(
        f"benchmark {benchmark}: {instance.num_gates} LUTs, "
        f"{len(instance.pis)} PIs, depth {instance.depth()}\n"
    )
    header = (
        f"{'strategy':12s} {'cost0':>6s} {'cost20':>7s} {'sim(s)':>7s} "
        f"{'SAT calls':>10s} {'proven':>7s} {'disproven':>10s} {'SAT(s)':>7s}"
    )
    print(header)
    print("-" * len(header))
    baseline_cost = None
    for strategy in STRATEGY_NAMES:
        generator = make_generator(strategy, instance, seed=42)
        engine = SweepEngine(
            instance,
            generator,
            SweepConfig(seed=7, iterations=20, random_width=8),
        )
        start = time.perf_counter()
        result = engine.run()
        metrics = result.metrics
        if baseline_cost is None:
            baseline_cost = max(1, metrics.final_cost)
        print(
            f"{strategy:12s} {metrics.cost_history[0]:6d} "
            f"{metrics.final_cost:7d} {metrics.sim_time:7.2f} "
            f"{metrics.sat_calls:10d} {metrics.proven:7d} "
            f"{metrics.disproven:10d} {metrics.sat_time:7.2f}"
        )
    print(
        "\nLower cost after the 20 guided iterations means fewer"
        " SAT calls later — the paper's central claim."
    )


if __name__ == "__main__":
    main()
