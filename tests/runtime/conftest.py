"""Shared builders for the runtime (budget / escalation / chaos) suites."""

from repro.network import NetworkBuilder
from repro.simulation import cone_function


def parity_pair_network(n: int = 8, pairs: int = 1):
    """``pairs`` structurally different parity implementations per PO pair.

    A linear XOR chain and a balanced XOR tree compute the same parity, so
    simulation can never split them — proving each pair is a genuinely hard
    CDCL query whose cost grows steeply with ``n`` (parity has no short
    resolution proofs), which makes this the standard stressor for conflict
    limits, escalation ladders, and deadlines.
    """
    builder = NetworkBuilder("parity")
    pis = builder.pis(n)
    for p in range(pairs):
        sigs = pis[p:] + pis[:p]
        chain = sigs[0]
        for sig in sigs[1:]:
            chain = builder.xor_(chain, sig)
        # The tree consumes the inputs rotated by one so no chain prefix
        # coincides with a subtree: the only equivalence is the full parity,
        # and proving it gets no warm-up from cheap intermediate proofs.
        level = sigs[1:] + sigs[:1]
        while len(level) > 1:
            nxt = [
                builder.xor_(level[i], level[i + 1])
                for i in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        builder.po(chain, f"chain{p}")
        builder.po(level[0], f"tree{p}")
    return builder.build()


def assert_equivalences_sound(net, equivalences) -> None:
    """Every reported equivalence must hold as a truth-table identity."""
    for rep, member, complemented in equivalences:
        table_a, sup_a = cone_function(net, rep)
        table_b, sup_b = cone_function(net, member)
        union = sorted(set(sup_a) | set(sup_b))
        wide_a = table_a.expand(len(union), [union.index(p) for p in sup_a])
        wide_b = table_b.expand(len(union), [union.index(p) for p in sup_b])
        if complemented:
            assert wide_a.bits == (~wide_b).bits, (rep, member)
        else:
            assert wide_a.bits == wide_b.bits, (rep, member)
