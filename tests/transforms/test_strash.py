"""Structural hashing and cleanup."""

import pytest

from repro.logic import gates
from repro.network import Network, NetworkBuilder, validate
from repro.simulation import cone_function
from repro.transforms import strash
from tests.conftest import networks_equal, random_network


class TestMerging:
    def test_identical_gates_merged(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.and_(a, b)
        g2 = builder.and_(a, b)
        out = builder.or_(g1, g2)
        builder.po(out)
        net = builder.build()
        hashed = strash(net)
        # g1/g2 merge; or(x, x) then shrinks to a buffer onto the AND.
        assert hashed.num_gates == 1

    def test_different_fanin_order_not_merged(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        g1 = builder.table(gates.and_gate(2), [a, b])
        g2 = builder.table(gates.and_gate(2), [b, a])
        builder.po(g1)
        builder.po(g2)
        net = builder.build()
        hashed = strash(net)
        # order-sensitive hashing keeps both (function is symmetric but the
        # strash key is structural)
        assert hashed.num_gates == 2


class TestConstantPropagation:
    def test_and_with_const_true_becomes_buffer(self):
        builder = NetworkBuilder()
        a = builder.pi()
        one = builder.const(True)
        g = builder.and_(a, one)
        builder.po(g, "f")
        net = builder.build()
        hashed = strash(net)
        # collapses to the PI directly
        assert hashed.num_gates == 0
        assert hashed.pos[0][1] == hashed.pis[0]

    def test_and_with_const_false_becomes_const(self):
        builder = NetworkBuilder()
        a = builder.pi()
        zero = builder.const(False)
        g = builder.and_(a, zero)
        builder.po(g, "f")
        net = builder.build()
        hashed = strash(net)
        table, _ = cone_function(hashed, hashed.pos[0][1], max_support=2)
        assert table.const_value() == 0

    def test_degenerate_table_shrinks(self):
        from repro.logic.truthtable import TruthTable

        builder = NetworkBuilder()
        a, b = builder.pis(2)
        # f(a, b) = a  (ignores b)
        g = builder.table(TruthTable.var(2, 0), [a, b])
        builder.po(g)
        net = builder.build()
        hashed = strash(net)
        assert hashed.num_gates == 0  # buffer collapsed onto the PI


class TestFunctionPreservation:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_networks(self, seed):
        net = random_network(seed=seed)
        hashed = strash(net)
        validate(hashed)
        assert networks_equal(net, hashed)

    def test_dangling_removed(self):
        builder = NetworkBuilder()
        a, b = builder.pis(2)
        used = builder.and_(a, b)
        builder.or_(a, b)  # dangling
        builder.po(used)
        net = builder.build()
        hashed = strash(net)
        assert hashed.num_gates == 1
