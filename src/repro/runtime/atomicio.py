"""Crash-safe file writes (temp file + fsync + ``os.replace``).

Result artifacts — reduced networks, ``BENCH_perf.json``, experiment JSON,
CEC verdict reports — must never be observable half-written: a reader (or
a resumed session) that finds the file at all must find a complete one.
The standard recipe used here:

1. write the full payload to a temp file *in the destination directory*
   (same filesystem, so the final rename is atomic);
2. flush and ``fsync`` the temp file so the bytes are durable before the
   rename makes them visible;
3. ``os.replace`` onto the destination (atomic on POSIX and Windows);
4. best-effort ``fsync`` of the directory so the rename itself survives a
   power cut.

A crash at any point leaves either the old file or the new file — never a
mix — plus at worst a stray ``*.tmp`` file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Union

PathLike = Union[str, "os.PathLike[str]"]


def _fsync_directory(directory: str) -> None:
    """Best-effort directory fsync (not supported on every platform)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: PathLike, text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text`` (durable before visible)."""
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def atomic_write_json(
    path: PathLike, payload: Any, indent: int = 2
) -> None:
    """Atomically replace ``path`` with ``payload`` as indented JSON."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
