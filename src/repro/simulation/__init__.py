"""Bit-parallel simulation: packed words, pattern batches, the simulator."""

from repro.simulation.bitvec import (
    exhaustive_word,
    from_bits,
    get_bit,
    random_word,
    set_bit,
    to_bits,
    width_mask,
)
from repro.simulation.patterns import InputVector, PatternBatch
from repro.simulation.compiled import CompiledSimulator
from repro.simulation.numpy_backend import NumpySimulator
from repro.simulation.quality import VectorQuality, batch_quality, distinguishing_power
from repro.simulation.simulator import Simulator, cone_function, simulate

__all__ = [
    "CompiledSimulator",
    "InputVector",
    "NumpySimulator",
    "PatternBatch",
    "Simulator",
    "VectorQuality",
    "batch_quality",
    "distinguishing_power",
    "cone_function",
    "exhaustive_word",
    "from_bits",
    "get_bit",
    "random_word",
    "set_bit",
    "simulate",
    "to_bits",
    "width_mask",
]
