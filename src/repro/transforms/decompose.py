"""Decomposition of wide gates into bounded-arity networks.

LUT mapping needs every gate's arity to be at most K (a gate is the unit a
cut must absorb whole).  :func:`decompose_to_arity` rewrites any wider gate
into an equivalent network of 2-input AND/OR gates and inverters via
recursive Shannon expansion — the role ``strash``-to-AIG plays in ABC.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NetworkError
from repro.logic import gates
from repro.logic.truthtable import TruthTable
from repro.network.network import Network


def decompose_to_arity(
    network: Network, max_arity: int, name: Optional[str] = None
) -> Network:
    """A copy of the network with every gate arity <= ``max_arity``.

    Gates already within the bound are copied unchanged; wider gates are
    Shannon-expanded on their highest variable into 2-input logic.
    """
    if max_arity < 2:
        raise NetworkError(f"max_arity must be >= 2, got {max_arity}")
    result = Network(name or f"{network.name}_dec{max_arity}")
    new_id: dict[int, int] = {}
    for pi in network.pis:
        new_id[pi] = result.add_pi(network.node(pi).name)

    inverters: dict[int, int] = {}

    def invert(driver: int) -> int:
        if driver not in inverters:
            inverters[driver] = result.add_gate(gates.inv(), (driver,))
        return inverters[driver]

    def synthesize(table: TruthTable, drivers: list[int]) -> int:
        """Build <=2-input logic computing ``table`` over ``drivers``."""
        const = table.const_value()
        if const is not None:
            return result.add_const(bool(const))
        support = table.support()
        if len(support) == 1:
            var = support[0]
            positive = table.cofactor(var, 1).const_value() == 1
            return drivers[var] if positive else invert(drivers[var])
        if len(support) <= 2 and table.num_vars <= 2:
            return result.add_gate(table, tuple(drivers))
        if table.num_vars <= 2:
            return result.add_gate(table, tuple(drivers))
        # Shannon on the highest support variable:
        # f = (~x & f0) | (x & f1)
        var = support[-1]
        x = drivers[var]
        low = synthesize(table.cofactor(var, 0), drivers)
        high = synthesize(table.cofactor(var, 1), drivers)
        if low == high:
            return low
        term0 = result.add_gate(gates.and_gate(2), (invert(x), low))
        term1 = result.add_gate(gates.and_gate(2), (x, high))
        return result.add_gate(gates.or_gate(2), (term0, term1))

    for uid in network.topological_order():
        node = network.node(uid)
        if node.is_pi:
            continue
        if node.is_const:
            new_id[uid] = result.add_const(bool(node.table.bits), node.name)
            continue
        drivers = [new_id[f] for f in node.fanins]
        if node.num_fanins <= max_arity:
            new_id[uid] = result.add_gate(node.table, drivers, node.name)
        else:
            new_id[uid] = synthesize(node.table, drivers)
    for po_name, uid in network.pos:
        result.add_po(new_id[uid], po_name)
    result.remove_dangling()
    return result
