"""Tseitin-style encoding of Boolean networks into CNF, and miters.

Each node gets a SAT variable; a gate's relation to its fanins is encoded
from its onset/offset cube covers: an onset cube implies the output true, an
offset cube implies it false.  Because the two covers jointly contain every
minterm, the clauses define the output exactly.

The :func:`pair_miter` helper builds the equivalence-check instance the
sweeping engine solves: SAT means the two nodes differ and the model is a
counterexample input vector; UNSAT proves them equivalent.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SatError
from repro.logic.cubes import isop_cover
from repro.network.network import Network
from repro.network.traversal import cone_topological_order
from repro.sat.cnf import Cnf
from repro.simulation.patterns import InputVector


class TseitinEncoder:
    """Incremental encoder: network nodes -> CNF variables and clauses."""

    def __init__(self, network: Network):
        self.network = network
        self.cnf = Cnf()
        self._node_var: dict[int, int] = {}

    def var_of(self, uid: int) -> Optional[int]:
        """The CNF variable of a node, if already encoded."""
        return self._node_var.get(uid)

    def encode_cone(self, root: int) -> int:
        """Encode the fanin cone of ``root``; returns the root's variable."""
        for uid in cone_topological_order(self.network, [root]):
            if uid in self._node_var:
                continue
            node = self.network.node(uid)
            var = self.cnf.new_var()
            self._node_var[uid] = var
            if node.is_pi:
                continue
            if node.is_const:
                self.cnf.add_clause([var if node.table.bits else -var])
                continue
            fanin_vars = [self._node_var[f] for f in node.fanins]
            self._encode_gate(var, node.table, fanin_vars)
        return self._node_var[root]

    def _encode_gate(self, out_var: int, table, fanin_vars: list[int]) -> None:
        for cube in isop_cover(table):
            clause = self._cube_antecedent(cube, fanin_vars)
            clause.append(out_var)
            self.cnf.add_clause(clause)
        for cube in isop_cover(~table):
            clause = self._cube_antecedent(cube, fanin_vars)
            clause.append(-out_var)
            self.cnf.add_clause(clause)

    @staticmethod
    def _cube_antecedent(cube, fanin_vars: list[int]) -> list[int]:
        clause: list[int] = []
        for i, var in enumerate(fanin_vars):
            lit = cube.literal(i)
            if lit is None:
                continue
            clause.append(-var if lit else var)
        return clause

    def model_to_vector(self, model: dict[int, bool]) -> InputVector:
        """Extract PI values from a SAT model (encoded PIs only)."""
        vector = InputVector()
        for pi in self.network.pis:
            var = self._node_var.get(pi)
            if var is not None and var in model:
                vector.set(pi, int(model[var]))
        return vector


def pair_miter(
    network: Network,
    node_a: int,
    node_b: int,
    complement: bool = False,
) -> tuple[Cnf, TseitinEncoder]:
    """CNF asserting the two nodes *differ* (or agree, if ``complement``).

    With ``complement=False`` the instance is SAT iff some input makes
    ``node_a != node_b`` — i.e., UNSAT proves equivalence.  With
    ``complement=True`` it is SAT iff some input makes them *equal* — i.e.,
    UNSAT proves ``node_a == NOT node_b``.
    """
    if node_a == node_b:
        raise SatError("miter of a node with itself is trivially UNSAT")
    encoder = TseitinEncoder(network)
    var_a = encoder.encode_cone(node_a)
    var_b = encoder.encode_cone(node_b)
    if complement:
        # SAT iff equal: (a & b) | (~a & ~b)
        encoder.cnf.add_clause([var_a, -var_b])
        encoder.cnf.add_clause([-var_a, var_b])
    else:
        # SAT iff different: exactly one true.
        encoder.cnf.add_clause([var_a, var_b])
        encoder.cnf.add_clause([-var_a, -var_b])
    return encoder.cnf, encoder


def po_miter(network_a: Network, network_b: Network) -> Network:
    """Structural miter network of two circuits with matching interfaces.

    Builds one network containing both circuits over shared PIs (matched by
    position) and one PO per output pair: ``out_a XOR out_b``.  The miter is
    constant-0 iff the circuits are equivalent.
    """
    from repro.logic import gates  # local import to avoid cycles at import time

    if len(network_a.pis) != len(network_b.pis):
        raise SatError("PI count mismatch between the two networks")
    if len(network_a.pos) != len(network_b.pos):
        raise SatError("PO count mismatch between the two networks")
    miter = Network(f"miter({network_a.name},{network_b.name})")
    shared_pis = [
        miter.add_pi(network_a.node(pi).name) for pi in network_a.pis
    ]

    def copy_into(source: Network) -> dict[int, int]:
        mapping: dict[int, int] = {}
        for old_pi, new_pi in zip(source.pis, shared_pis):
            mapping[old_pi] = new_pi
        for uid in source.topological_order():
            node = source.node(uid)
            if node.is_pi:
                continue
            mapping[uid] = miter.add_gate(
                node.table, tuple(mapping[f] for f in node.fanins)
            )
        return mapping

    map_a = copy_into(network_a)
    map_b = copy_into(network_b)
    for (name_a, uid_a), (_, uid_b) in zip(network_a.pos, network_b.pos):
        xor = miter.add_gate(
            gates.xor_gate(2), (map_a[uid_a], map_b[uid_b]), f"miter_{name_a}"
        )
        miter.add_po(xor, f"miter_{name_a}")
    return miter
