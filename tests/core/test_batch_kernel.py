"""Batch SimGen backend vs the compiled kernel: exact equivalence.

The lane-batched driver of :mod:`repro.core.batch` runs Algorithm 1's
inner loop in C and verifies finished attempts up to 64 per simulator
word, speculating past each attempt and rewinding when the scalar loop
would have stopped earlier.  Its contract is the same as every backend
seam in this repository: *bit-identical* trajectories, not merely
functional equivalence.  The differential suite here drives batch and
compiled generators with the same networks, seeds, and sweep schedules
and requires identical vectors, reports, survivor lists, RNG end states,
and implication/decision/kernel stats streams.

Lane-masking edge cases are pinned separately: a flush whose lanes all
retired pre-verify must not touch the simulator, a single live lane must
verify alone, and a mid-batch quota fill must rewind the over-speculated
lanes exactly to their checkpoints.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.batch as batch_mod
from repro.core import make_generator
from repro.core.batch import BatchSimGenGenerator, _PendingAttempt
from repro.core.compiled import CompiledSimGenGenerator
from repro.core.generator import GenerationReport
from repro.core.outgold import (
    alternating_outgold,
    level_alternating_outgold,
    select_targets,
)
from repro.sweep import SweepConfig, SweepEngine
from tests.conftest import random_network

SIMGEN_STRATEGIES = ("AI+DC+MFFC", "AI+DC", "AI+RD", "SI+RD")


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------

def freeze_reports(gen):
    return [
        (
            r.skipped,
            r.survivors,
            r.implications,
            r.decisions,
            r.conflicts,
            None
            if r.vector is None
            else tuple(sorted(r.vector.values.items())),
        )
        for r in gen.reports
    ]


def sweep_trace(net, strategy, backend, seed, vpi=4, iterations=6):
    """Everything observable about one guided sweep, frozen for comparison.

    Includes the shared stats dicts: the batch backend folds its C-core
    counters into the same implication/decision/kernel streams the scalar
    kernel feeds, so they must match number for number.
    """
    gen = make_generator(
        strategy,
        net,
        seed=seed,
        simgen_backend=backend,
        vectors_per_iteration=vpi,
    )
    engine = SweepEngine(net, gen, SweepConfig(seed=seed, iterations=iterations))
    classes, metrics = engine.run_simulation_phase()
    return gen, (
        classes.all_classes(),
        metrics.cost_history,
        freeze_reports(gen),
        gen.rng.getstate(),
        dict(gen.implication.stats),
        dict(gen.decision.stats),
        dict(gen.kernel.stats),
    )


def two_real_attempts(net, seed, vpi=1):
    """A batch generator plus its first two attempts, parked un-flushed.

    Replays exactly the body of ``generate()`` up to (not including) the
    flush, over one class holding every gate, so flush behaviour can be
    probed at a chosen quota.
    """
    gen = make_generator(
        "AI+DC+MFFC",
        net,
        seed=seed,
        simgen_backend="batch",
        vectors_per_iteration=vpi,
    )
    splittable = [[n.uid for n in net.gates()]]
    records = []
    for _ in range(2):
        chk = gen._checkpoint()
        cls = splittable[gen._rotation % len(splittable)]
        gen._rotation += 1
        targets = select_targets(cls, gen.max_targets, gen.rng)
        outgold = gen.outgold_strategy(gen.network, targets)
        rec = gen._attempt(outgold, chk)
        gen.reports.append(rec.report)
        records.append(rec)
    return gen, records


# ----------------------------------------------------------------------
# Differential identity: batch == compiled, bit for bit
# ----------------------------------------------------------------------

class TestBatchIdentity:
    @pytest.mark.parametrize("strategy", SIMGEN_STRATEGIES)
    def test_sweep_trajectory_identical(self, strategy):
        net = random_network(seed=21, num_inputs=6, num_gates=24)
        _, batch = sweep_trace(net, strategy, "batch", seed=5)
        _, compiled = sweep_trace(net, strategy, "compiled", seed=5)
        assert batch == compiled

    @settings(max_examples=10, deadline=None)
    @given(
        net_seed=st.integers(0, 5000),
        sweep_seed=st.integers(0, 5000),
        num_inputs=st.integers(4, 6),
        num_gates=st.integers(12, 24),
    )
    def test_random_networks_identical(
        self, net_seed, sweep_seed, num_inputs, num_gates
    ):
        net = random_network(
            seed=net_seed, num_inputs=num_inputs, num_gates=num_gates
        )
        _, batch = sweep_trace(
            net, "AI+DC+MFFC", "batch", seed=sweep_seed, iterations=4
        )
        _, compiled = sweep_trace(
            net, "AI+DC+MFFC", "compiled", seed=sweep_seed, iterations=4
        )
        assert batch == compiled

    @pytest.mark.parametrize("jobs", (1, 4))
    def test_full_sweep_identical_across_backends(self, jobs):
        """End-to-end gate: the full sweep (guided phase + pooled SAT
        phase) lands on the same verdicts, classes, and integer counters
        whichever generator backend ran."""
        net = random_network(seed=31, num_inputs=6, num_gates=26)

        def run(backend):
            gen = make_generator(
                "AI+DC+MFFC", net, seed=8, simgen_backend=backend
            )
            engine = SweepEngine(net, gen, SweepConfig(seed=8, jobs=jobs))
            result = engine.run()
            counters = {
                k: v
                for k, v in engine.registry.as_dict().items()
                if not k.endswith("_s") and not k.startswith("simgen.batch")
            }
            return (
                result.equivalences,
                result.classes.all_classes(),
                result.metrics.cost_history,
                result.metrics.sat_calls,
                result.metrics.proven,
                freeze_reports(gen),
                counters,
            )

        assert run("batch") == run("compiled")

    def test_level_alternating_outgold_identical(self):
        """The other speculation-eligible builtin outgold strategy."""
        net = random_network(seed=13, num_inputs=5, num_gates=20)

        def run(cls):
            gen = cls(net, seed=7, outgold_strategy=level_alternating_outgold)
            engine = SweepEngine(net, gen, SweepConfig(seed=7, iterations=5))
            classes, metrics = engine.run_simulation_phase()
            return (
                classes.all_classes(),
                metrics.cost_history,
                freeze_reports(gen),
                gen.rng.getstate(),
            )

        batch = run(BatchSimGenGenerator)
        assert batch == run(CompiledSimGenGenerator)

    def test_skip_heavy_runs_identical_through_trailing_flush(self):
        """Seeds whose attempts mostly mask out exhaust the attempt budget
        with lanes still parked; the trailing flush must resolve them and
        stay on the scalar trajectory."""
        for seed in (1, 2, 3, 4):
            net = random_network(seed=seed, num_inputs=5, num_gates=18)
            gen, batch = sweep_trace(net, "AI+DC+MFFC", "batch", seed=seed)
            _, compiled = sweep_trace(net, "AI+DC+MFFC", "compiled", seed=seed)
            assert batch == compiled
            assert gen.batch.stats["masked_lane_steps"] > 0


# ----------------------------------------------------------------------
# Lane masking and speculation edge cases
# ----------------------------------------------------------------------

class TestLaneMasking:
    def test_all_lanes_masked_flush_never_touches_simulator(self):
        """Lanes whose skip criterion already failed on the claimed values
        retire before the lockstep verify: a flush of only masked lanes is
        a no-op for the simulator, the flush counter, and the occupancy
        histogram feed."""
        net = random_network(seed=3, num_inputs=5, num_gates=16)
        gen = make_generator("AI+DC+MFFC", net, seed=3, simgen_backend="batch")
        gen._verifier = None  # any simulator touch would raise
        pending = [
            _PendingAttempt(
                report=GenerationReport(vector=None, skipped=True),
                chk=gen._checkpoint(),
                needs_sim=False,
                outgold=None,
                full=None,
            )
            for _ in range(3)
        ]
        vectors = []
        assert gen._flush(pending, vectors) == (False, 0)
        assert vectors == []
        assert gen.batch.stats["batch_flushes"] == 0
        assert gen.batch.lane_occupancy == []

    def test_single_live_lane_verifies_alone(self):
        """``vectors_per_iteration=1`` keeps the flush width at one: every
        verification word carries a single live lane, and the trajectory
        still matches the scalar kernel."""
        net = random_network(seed=2, num_inputs=6, num_gates=22)
        gen, batch = sweep_trace(net, "AI+DC+MFFC", "batch", seed=2, vpi=1)
        _, compiled = sweep_trace(net, "AI+DC+MFFC", "compiled", seed=2, vpi=1)
        assert batch == compiled
        assert gen.batch.lane_occupancy
        assert all(width == 1 for width in gen.batch.lane_occupancy)

    def test_mid_batch_quota_fill_rewinds_over_speculation(self):
        """When the quota fills mid-flush, every later lane never happened:
        the RNG, rotation, report list, and shared stats dicts rewind to
        that lane's checkpoint.  (Seed 0 pins the precondition: both
        attempts park for verification and the first one commits.)"""
        net = random_network(seed=0, num_inputs=5, num_gates=16)
        gen, (first, second) = two_real_attempts(net, seed=0, vpi=1)
        assert first.needs_sim and second.needs_sim
        vectors = []
        progress, discarded = gen._flush([first, second], vectors)
        assert progress and discarded == 1
        assert len(vectors) == 1
        assert gen.batch.stats["speculative_rewinds"] == 1
        assert gen.batch.stats["discarded_attempts"] == 1
        # The rewind restored exactly the second attempt's checkpoint.
        chk = second.chk
        assert gen.rng.getstate() == chk.rng_state
        assert gen._rotation == chk.rotation
        assert len(gen.reports) == chk.n_reports
        assert gen.implication.stats == chk.impl
        assert gen.decision.stats == chk.dec
        assert gen.kernel.stats == chk.kernel


# ----------------------------------------------------------------------
# Fallback paths: no C core, unsupported arity, stateful outgold
# ----------------------------------------------------------------------

class TestFallbackPaths:
    def test_pure_python_attempt_path_identical(self, monkeypatch):
        """With no loaded core (no toolchain, ``REPRO_SIMGENCORE=python``)
        the driver keeps the speculative flushing but runs attempts on the
        pure-Python compiled kernel — identical trajectory."""
        net = random_network(seed=17, num_inputs=5, num_gates=20)
        gen_c, with_core = sweep_trace(net, "AI+DC+MFFC", "batch", seed=4)
        assert gen_c._core is not None, "C core expected in this environment"
        monkeypatch.setattr(batch_mod, "_LIB", None)
        gen_py, without_core = sweep_trace(net, "AI+DC+MFFC", "batch", seed=4)
        assert gen_py._core is None
        assert without_core == with_core
        # The lane machinery still ran (speculation is core-agnostic).
        assert gen_py.batch.stats["lane_attempts"] > 0

    def test_oversized_arity_falls_back_silently(self, monkeypatch):
        """Gates wider than ``SG_MAX_K`` can't be lowered into the C
        tables; the generator quietly keeps the Python attempt path."""
        monkeypatch.setattr(batch_mod, "SG_MAX_K", 0)
        net = random_network(seed=17, num_inputs=5, num_gates=20)
        gen = make_generator("AI+DC+MFFC", net, seed=4, simgen_backend="batch")
        assert gen._core is None
        _, fallback = sweep_trace(net, "AI+DC+MFFC", "batch", seed=4)
        monkeypatch.undo()
        _, compiled = sweep_trace(net, "AI+DC+MFFC", "compiled", seed=4)
        assert fallback == compiled

    def test_stateful_outgold_disables_speculation_not_identity(self):
        """Arbitrary outgold callables may hold state the RNG checkpoint
        cannot rewind, so the driver falls back to the scalar generate
        loop — still bit-identical to the compiled generator."""
        net = random_network(seed=23, num_inputs=5, num_gates=18)

        def custom_outgold(network, targets):
            return alternating_outgold(network, targets)

        def run(cls):
            gen = cls(net, seed=6, outgold_strategy=custom_outgold)
            engine = SweepEngine(net, gen, SweepConfig(seed=6, iterations=5))
            classes, metrics = engine.run_simulation_phase()
            return gen, (
                classes.all_classes(),
                metrics.cost_history,
                freeze_reports(gen),
                gen.rng.getstate(),
            )

        gen, batch = run(BatchSimGenGenerator)
        assert not gen._speculate
        assert gen.batch.stats["lane_attempts"] == 0
        _, compiled = run(CompiledSimGenGenerator)
        assert batch == compiled
