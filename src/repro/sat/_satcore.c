/* Array-backed CDCL core: the compiled backend of repro.sat.
 *
 * This is a literal C rendering of the reference CdclSolver
 * (src/repro/sat/solver.py), rebuilt around the memory hierarchy the way
 * MiniSat is (and the sst-sat hardware port makes explicit):
 *
 *   - clause arena: one flat int32 buffer, [len, lit0, .., litk, len, ...];
 *     a clause reference (cref) is the header's index.  Learnt clauses are
 *     appended to the same arena; deletion negates the header (tombstone)
 *     and a compacting GC slides survivors down in attachment order, so
 *     the relative cref order (which the reduction ranking ties on) is
 *     preserved.
 *   - watch vectors: per-literal growable int32 vectors of (cref, blocker)
 *     pairs, stride 2.  A true blocker skips the clause without touching
 *     the arena.  The reference solver implements the same blocker
 *     discipline, so both backends visit identical clauses in identical
 *     order.
 *   - dense state: per-literal truth values (vals[lit] in {1, 0, -1}),
 *     flat trail / level / reason / phase / VSIDS-activity buffers.
 *   - indexed activity max-heap keyed (activity desc, var asc) — exactly
 *     the total order the reference's first-strict-max linear scan
 *     resolves to.
 *
 * Bit-identity with the reference is the contract: same verdicts, models,
 * decision/conflict/propagation counts, learnt-clause trajectories, and
 * budget expiry points.  Every heuristic constant and tie-break below is
 * copied from solver.py; double arithmetic (VSIDS decay/rescale, cap
 * growth) matches CPython's float semantics because both are IEEE-754.
 *
 * The library is self-contained C99 compiled at import time by
 * repro.sat.compiled (no Python.h); the only callback is the optional
 * budget deadline poll, invoked every BUDGET_CHECK_INTERVAL propagations.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define UNSAT_RESULT 0
#define SAT_RESULT 1
#define UNKNOWN_RESULT 2
/* UNSAT decided before the search loop (solver already inconsistent, or
 * the root-level propagation of pending units failed): the Python wrapper
 * keeps the previous model in this case, mirroring the reference's early
 * returns. */
#define UNSAT_EARLY_RESULT 3

#define LEARNT_CAP_INIT 4000
#define LEARNT_CAP_GROWTH 1.3
#define BUDGET_CHECK_INTERVAL 2048

typedef int (*time_expired_fn)(void);

/* ------------------------------------------------------------------ */
/* Growable int32 vector                                               */
/* ------------------------------------------------------------------ */
typedef struct {
    int32_t *data;
    int64_t len;
    int64_t cap;
} veci;

static int veci_reserve(veci *v, int64_t need) {
    if (need <= v->cap) return 1;
    int64_t cap = v->cap ? v->cap : 8;
    while (cap < need) cap *= 2;
    int32_t *data = (int32_t *)realloc(v->data, (size_t)cap * sizeof(int32_t));
    if (!data) return 0;
    v->data = data;
    v->cap = cap;
    return 1;
}

static int veci_push(veci *v, int32_t x) {
    if (v->len == v->cap && !veci_reserve(v, v->len + 1)) return 0;
    v->data[v->len++] = x;
    return 1;
}

static int veci_push2(veci *v, int32_t a, int32_t b) {
    if (v->len + 2 > v->cap && !veci_reserve(v, v->len + 2)) return 0;
    v->data[v->len] = a;
    v->data[v->len + 1] = b;
    v->len += 2;
    return 1;
}

/* ------------------------------------------------------------------ */
/* Solver                                                              */
/* ------------------------------------------------------------------ */
typedef struct {
    int32_t num_vars;
    int64_t var_cap;      /* allocated per-var slots (>= num_vars + 1) */

    veci arena;           /* clause arena */
    veci *watches;        /* per internal literal; slots 0/1 unused */
    int64_t watch_cap;    /* allocated literal slots */

    int8_t *vals;         /* per literal: 1 true, 0 false, -1 unassigned */
    int32_t *level;       /* per var */
    int32_t *reason;      /* per var: cref or -1 */
    double *activity;     /* per var */
    int8_t *phase;        /* per var: saved polarity */

    int32_t *heap;        /* branching max-heap of vars */
    int64_t heap_len;
    int32_t *heap_pos;    /* per var: heap index or -1 */

    int32_t *trail;       /* internal literals in assignment order */
    int64_t trail_len;
    veci trail_lim;       /* trail length at each decision level */
    int64_t qhead;

    int ok;
    double var_inc;
    double var_decay;

    /* Live learnt clauses, parallel arrays in attachment (cref asc) order. */
    veci learnt_cref;
    veci learnt_lbd;
    int64_t learnt_cap;   /* reduction threshold */

    /* Model snapshot of the last SAT solve: per-var value or -1. */
    int8_t *model_vals;
    int model_valid;

    /* Scratch buffers. */
    uint8_t *seen;        /* per var, conflict analysis */
    veci learnt_buf;      /* learnt clause under construction */
    int32_t *lit_stamp;   /* per literal, add_clause dup/tautology */
    int32_t stamp_gen;
    int32_t *lvl_stamp;   /* per decision level, LBD distinct-level count */
    int64_t lvl_cap;
    int32_t lvl_gen;

    /* Counters (mirrored into the Python stats dict). */
    int64_t decisions;
    int64_t conflicts;
    int64_t propagations;
    int64_t restarts;
    int64_t learnts_deleted;
    int64_t reductions;
    int64_t watchers_compacted;
    int64_t arena_bytes;  /* high-water of len(arena) * 4 */
    int64_t arena_gcs;
    int64_t arena_words_reclaimed;
} Solver;

static void update_arena_hw(Solver *s) {
    int64_t bytes = s->arena.len * (int64_t)sizeof(int32_t);
    if (bytes > s->arena_bytes) s->arena_bytes = bytes;
}

/* ------------------------------------------------------------------ */
/* Construction                                                        */
/* ------------------------------------------------------------------ */
Solver *sat_new(void) {
    Solver *s = (Solver *)calloc(1, sizeof(Solver));
    if (!s) return NULL;
    s->ok = 1;
    s->var_inc = 1.0;
    s->var_decay = 0.95;
    s->learnt_cap = LEARNT_CAP_INIT;
    return s;
}

void sat_free(Solver *s) {
    if (!s) return;
    free(s->arena.data);
    for (int64_t i = 0; i < s->watch_cap; i++) free(s->watches[i].data);
    free(s->watches);
    free(s->vals);
    free(s->level);
    free(s->reason);
    free(s->activity);
    free(s->phase);
    free(s->heap);
    free(s->heap_pos);
    free(s->trail);
    free(s->trail_lim.data);
    free(s->learnt_cref.data);
    free(s->learnt_lbd.data);
    free(s->model_vals);
    free(s->seen);
    free(s->learnt_buf.data);
    free(s->lit_stamp);
    free(s->lvl_stamp);
    free(s);
}

/* ------------------------------------------------------------------ */
/* Activity heap: max-heap under (activity desc, var asc)              */
/* ------------------------------------------------------------------ */
static void heap_sift_up(Solver *s, int64_t i) {
    int32_t *heap = s->heap;
    int32_t *pos = s->heap_pos;
    double *activity = s->activity;
    int32_t var = heap[i];
    double act = activity[var];
    while (i > 0) {
        int64_t parent = (i - 1) >> 1;
        int32_t pvar = heap[parent];
        double pact = activity[pvar];
        if (pact > act || (pact == act && pvar < var)) break;
        heap[i] = pvar;
        pos[pvar] = (int32_t)i;
        i = parent;
    }
    heap[i] = var;
    pos[var] = (int32_t)i;
}

static void heap_sift_down(Solver *s, int64_t i) {
    int32_t *heap = s->heap;
    int32_t *pos = s->heap_pos;
    double *activity = s->activity;
    int64_t size = s->heap_len;
    int32_t var = heap[i];
    double act = activity[var];
    for (;;) {
        int64_t child = 2 * i + 1;
        if (child >= size) break;
        int32_t cvar = heap[child];
        double cact = activity[cvar];
        int64_t right = child + 1;
        if (right < size) {
            int32_t rvar = heap[right];
            double ract = activity[rvar];
            if (ract > cact || (ract == cact && rvar < cvar)) {
                child = right;
                cvar = rvar;
                cact = ract;
            }
        }
        if (act > cact || (act == cact && var < cvar)) break;
        heap[i] = cvar;
        pos[cvar] = (int32_t)i;
        i = child;
    }
    heap[i] = var;
    pos[var] = (int32_t)i;
}

static void heap_insert(Solver *s, int32_t var) {
    s->heap[s->heap_len] = var;
    s->heap_pos[var] = (int32_t)s->heap_len;
    s->heap_len++;
    heap_sift_up(s, s->heap_len - 1);
}

static int32_t heap_pop(Solver *s) {
    int32_t top = s->heap[0];
    s->heap_pos[top] = -1;
    int32_t last = s->heap[--s->heap_len];
    if (s->heap_len) {
        s->heap[0] = last;
        s->heap_pos[last] = 0;
        heap_sift_down(s, 0);
    }
    return top;
}

/* Re-heapify after an activity rescale collapses ties: rescaling maps
 * distinct activities onto equal doubles, which re-orders the
 * (activity, var) total order, and a stale heap would stop matching the
 * reference's rescan-every-decision argmax. */
static void heap_rebuild(Solver *s) {
    for (int64_t i = s->heap_len / 2 - 1; i >= 0; i--) heap_sift_down(s, i);
    for (int64_t i = 0; i < s->heap_len; i++) s->heap_pos[s->heap[i]] = (int32_t)i;
}

/* ------------------------------------------------------------------ */
/* Variables                                                           */
/* ------------------------------------------------------------------ */
static int grow_vars(Solver *s, int64_t var_cap) {
    if (var_cap <= s->var_cap) return 1;
    int64_t cap = s->var_cap ? s->var_cap : 16;
    while (cap < var_cap) cap *= 2;
    int64_t lit_cap = 2 * cap + 2;

    int8_t *vals = (int8_t *)realloc(s->vals, (size_t)lit_cap);
    if (!vals) return 0;
    s->vals = vals;
    int32_t *level = (int32_t *)realloc(s->level, (size_t)cap * sizeof(int32_t));
    if (!level) return 0;
    s->level = level;
    int32_t *reason = (int32_t *)realloc(s->reason, (size_t)cap * sizeof(int32_t));
    if (!reason) return 0;
    s->reason = reason;
    double *activity = (double *)realloc(s->activity, (size_t)cap * sizeof(double));
    if (!activity) return 0;
    s->activity = activity;
    int8_t *phase = (int8_t *)realloc(s->phase, (size_t)cap);
    if (!phase) return 0;
    s->phase = phase;
    int32_t *heap = (int32_t *)realloc(s->heap, (size_t)cap * sizeof(int32_t));
    if (!heap) return 0;
    s->heap = heap;
    int32_t *heap_pos = (int32_t *)realloc(s->heap_pos, (size_t)cap * sizeof(int32_t));
    if (!heap_pos) return 0;
    s->heap_pos = heap_pos;
    int32_t *trail = (int32_t *)realloc(s->trail, (size_t)cap * sizeof(int32_t));
    if (!trail) return 0;
    s->trail = trail;
    uint8_t *seen = (uint8_t *)realloc(s->seen, (size_t)cap);
    if (!seen) return 0;
    memset(seen + s->var_cap, 0, (size_t)(cap - s->var_cap));
    s->seen = seen;
    int8_t *model_vals = (int8_t *)realloc(s->model_vals, (size_t)cap);
    if (!model_vals) return 0;
    s->model_vals = model_vals;
    int32_t *lit_stamp = (int32_t *)realloc(s->lit_stamp, (size_t)lit_cap * sizeof(int32_t));
    if (!lit_stamp) return 0;
    memset(lit_stamp + 2 * s->var_cap + (s->var_cap ? 2 : 0), 0,
           (size_t)(lit_cap - (s->var_cap ? 2 * s->var_cap + 2 : 0)) * sizeof(int32_t));
    s->lit_stamp = lit_stamp;
    veci *watches = (veci *)realloc(s->watches, (size_t)lit_cap * sizeof(veci));
    if (!watches) return 0;
    memset(watches + s->watch_cap, 0, (size_t)(lit_cap - s->watch_cap) * sizeof(veci));
    s->watches = watches;
    s->watch_cap = lit_cap;

    s->var_cap = cap;
    return 1;
}

int sat_new_var(Solver *s) {
    int32_t var = ++s->num_vars;
    if (!grow_vars(s, (int64_t)var + 1)) {
        s->num_vars--;
        return -1;
    }
    s->vals[2 * var] = -1;
    s->vals[2 * var + 1] = -1;
    s->level[var] = 0;
    s->reason[var] = -1;
    s->activity[var] = 0.0;
    s->phase[var] = 0;
    s->heap_pos[var] = -1;
    heap_insert(s, var);
    return var;
}

static int ensure_vars(Solver *s, int32_t var) {
    while (s->num_vars < var) {
        if (sat_new_var(s) < 0) return 0;
    }
    return 1;
}

int sat_num_vars(Solver *s) { return s->num_vars; }
int sat_ok(Solver *s) { return s->ok; }

/* ------------------------------------------------------------------ */
/* Assignment machinery                                                */
/* ------------------------------------------------------------------ */
static int enqueue(Solver *s, int32_t ilit, int32_t reason) {
    int8_t value = s->vals[ilit];
    if (value == 0) return 0;
    if (value == 1) return 1;
    int32_t var = ilit >> 1;
    s->vals[ilit] = 1;
    s->vals[ilit ^ 1] = 0;
    s->level[var] = (int32_t)s->trail_lim.len;
    s->reason[var] = reason;
    s->trail[s->trail_len++] = ilit;
    return 1;
}

/* Unit propagation; returns the conflicting cref or -1.  Same blocker
 * discipline as the reference: a true blocker keeps the entry untouched;
 * otherwise the clause is normalised (false literal to slot 1), a
 * replacement watch is searched, and the entry is moved, kept with a
 * refreshed blocker, or turned into a unit/conflict — in the same order. */
static int32_t propagate(Solver *s) {
    int8_t *vals = s->vals;
    veci *watches = s->watches;
    int32_t *arena = s->arena.data;
    int32_t *trail = s->trail;
    int32_t *level = s->level;
    int32_t *reason = s->reason;
    int32_t current_level = (int32_t)s->trail_lim.len;
    int64_t qhead = s->qhead;
    int64_t props = 0;
    int32_t conflict = -1;

    while (qhead < s->trail_len) {
        int32_t ilit = trail[qhead++];
        props++;
        int32_t false_lit = ilit ^ 1;
        veci *watch = &watches[false_lit];
        int64_t end = watch->len;
        if (!end) continue;
        int32_t *w = watch->data;
        int64_t i = 0, j = 0;
        while (i < end) {
            int32_t cref = w[i];
            int32_t blocker = w[i + 1];
            i += 2;
            if (vals[blocker] == 1) {
                w[j] = cref;
                w[j + 1] = blocker;
                j += 2;
                continue;
            }
            int32_t base = cref + 1;
            int32_t size = arena[cref];
            /* Normalize: put the false literal at position 1. */
            if (arena[base] == false_lit) {
                arena[base] = arena[base + 1];
                arena[base + 1] = false_lit;
            }
            int32_t first = arena[base];
            if (first != blocker && vals[first] == 1) {
                w[j] = cref;
                w[j + 1] = first;
                j += 2;
                continue;
            }
            /* Look for a replacement watch. */
            int moved = 0;
            for (int32_t k = base + 2; k < base + size; k++) {
                int32_t lk = arena[k];
                if (vals[lk] != 0) {
                    arena[base + 1] = lk;
                    arena[k] = false_lit;
                    /* The push may grow another literal's vector; this
                     * one (w) is never reallocated mid-walk. */
                    veci_push2(&watches[lk], cref, first);
                    moved = 1;
                    break;
                }
            }
            if (moved) continue;
            w[j] = cref;
            w[j + 1] = first;
            j += 2;
            int8_t value = vals[first];
            if (value == 0) {
                conflict = cref;
                while (i < end) { /* keep the unvisited tail */
                    w[j] = w[i];
                    w[j + 1] = w[i + 1];
                    i += 2;
                    j += 2;
                }
                break;
            }
            if (value == -1) {
                int32_t var = first >> 1;
                vals[first] = 1;
                vals[first ^ 1] = 0;
                level[var] = current_level;
                reason[var] = cref;
                trail[s->trail_len++] = first;
            }
        }
        watch->len = j;
        if (conflict >= 0) break;
    }
    s->qhead = qhead;
    s->propagations += props;
    return conflict;
}

static void cancel_until(Solver *s, int32_t level) {
    if (s->trail_lim.len <= level) return;
    int64_t bound = s->trail_lim.data[level];
    int8_t *vals = s->vals;
    for (int64_t idx = s->trail_len - 1; idx >= bound; idx--) {
        int32_t var = s->trail[idx] >> 1;
        int32_t pos_lit = var << 1;
        s->phase[var] = vals[pos_lit];
        vals[pos_lit] = -1;
        vals[pos_lit | 1] = -1;
        s->reason[var] = -1;
        if (s->heap_pos[var] < 0) heap_insert(s, var);
    }
    s->trail_len = bound;
    s->trail_lim.len = level;
    if (s->qhead > s->trail_len) s->qhead = s->trail_len;
}

/* ------------------------------------------------------------------ */
/* Clause attachment, learnt reduction, arena GC                       */
/* ------------------------------------------------------------------ */
static int32_t attach_clause(Solver *s, const int32_t *clause, int32_t size, int32_t lbd) {
    int32_t cref = (int32_t)s->arena.len;
    veci_reserve(&s->arena, s->arena.len + size + 1);
    s->arena.data[s->arena.len++] = size;
    memcpy(s->arena.data + s->arena.len, clause, (size_t)size * sizeof(int32_t));
    s->arena.len += size;
    veci_push2(&s->watches[clause[0]], cref, clause[1]);
    veci_push2(&s->watches[clause[1]], cref, clause[0]);
    if (lbd >= 0) {
        veci_push(&s->learnt_cref, cref);
        veci_push(&s->learnt_lbd, lbd);
    }
    return cref;
}

/* Binary search the (ascending) learnt cref list; -1 if not learnt. */
static int64_t learnt_index_of(Solver *s, int32_t cref) {
    int64_t lo = 0, hi = s->learnt_cref.len - 1;
    const int32_t *crefs = s->learnt_cref.data;
    while (lo <= hi) {
        int64_t mid = (lo + hi) >> 1;
        if (crefs[mid] == cref) return mid;
        if (crefs[mid] < cref) lo = mid + 1;
        else hi = mid - 1;
    }
    return -1;
}

/* Compact the arena and every watch vector in one pass.  Survivors slide
 * down in attachment order (monotone cref remap), so the reduce ranking's
 * cref tie-break is preserved; watch entries of deleted clauses are
 * dropped here (eager watcher compaction — deleted clauses never linger
 * in the watch lists of rarely-falsified literals). */
static void gc_arena(Solver *s) {
    update_arena_hw(s);
    int64_t end = s->arena.len;
    int32_t *arena = s->arena.data;
    int32_t *remap = (int32_t *)malloc((size_t)(end ? end : 1) * sizeof(int32_t));
    if (!remap) return; /* skip GC under allocation pressure; stays correct */
    int64_t i = 0, w = 0;
    while (i < end) {
        int32_t size = arena[i];
        if (size > 0) {
            remap[i] = (int32_t)w;
            if (w != i)
                memmove(arena + w, arena + i, (size_t)(size + 1) * sizeof(int32_t));
            w += size + 1;
            i += size + 1;
        } else {
            remap[i] = -1;
            i += 1 - size; /* tombstone: header is the negated length */
        }
    }
    int64_t dropped = 0;
    for (int64_t lit = 0; lit < s->watch_cap; lit++) {
        veci *watch = &s->watches[lit];
        if (!watch->len) continue;
        int32_t *data = watch->data;
        int64_t src = 0, dst = 0, n = watch->len;
        while (src < n) {
            int32_t new_cref = remap[data[src]];
            if (new_cref < 0) {
                dropped++;
            } else {
                data[dst] = new_cref;
                data[dst + 1] = data[src + 1];
                dst += 2;
            }
            src += 2;
        }
        watch->len = dst;
    }
    for (int64_t t = 0; t < s->trail_len; t++) {
        int32_t var = s->trail[t] >> 1;
        if (s->reason[var] >= 0) s->reason[var] = remap[s->reason[var]];
    }
    for (int64_t li = 0; li < s->learnt_cref.len; li++)
        s->learnt_cref.data[li] = remap[s->learnt_cref.data[li]];
    free(remap);
    s->watchers_compacted += dropped;
    s->arena_gcs++;
    s->arena_words_reclaimed += end - w;
    s->arena.len = w;
}

/* Reduction ranking: (LBD desc, length desc, cref desc) — identical to
 * the reference's sorted() key (-lbd, -len, -index). */
typedef struct {
    int32_t cref;
    int32_t lbd;
    int32_t len;
} ReduceEntry;

static int reduce_cmp(const void *pa, const void *pb) {
    const ReduceEntry *a = (const ReduceEntry *)pa;
    const ReduceEntry *b = (const ReduceEntry *)pb;
    if (a->lbd != b->lbd) return a->lbd > b->lbd ? -1 : 1;
    if (a->len != b->len) return a->len > b->len ? -1 : 1;
    return a->cref > b->cref ? -1 : 1;
}

static void reduce_learnts(Solver *s) {
    int64_t n = s->learnt_cref.len;
    uint8_t *locked = (uint8_t *)calloc((size_t)(n ? n : 1), 1);
    ReduceEntry *removable =
        (ReduceEntry *)malloc((size_t)(n ? n : 1) * sizeof(ReduceEntry));
    if (!locked || !removable) {
        free(locked);
        free(removable);
        return;
    }
    for (int64_t t = 0; t < s->trail_len; t++) {
        int32_t reason = s->reason[s->trail[t] >> 1];
        if (reason >= 0) {
            int64_t li = learnt_index_of(s, reason);
            if (li >= 0) locked[li] = 1;
        }
    }
    int64_t n_removable = 0;
    for (int64_t li = 0; li < n; li++) {
        if (s->learnt_lbd.data[li] > 2 && !locked[li]) {
            removable[n_removable].cref = s->learnt_cref.data[li];
            removable[n_removable].lbd = s->learnt_lbd.data[li];
            removable[n_removable].len = s->arena.data[s->learnt_cref.data[li]];
            n_removable++;
        }
    }
    qsort(removable, (size_t)n_removable, sizeof(ReduceEntry), reduce_cmp);
    int64_t n_delete = n_removable / 2;
    for (int64_t d = 0; d < n_delete; d++) {
        int32_t cref = removable[d].cref;
        s->arena.data[cref] = -s->arena.data[cref];
        int64_t li = learnt_index_of(s, cref);
        s->learnt_lbd.data[li] = -1; /* mark deleted */
    }
    if (n_delete) {
        int64_t dst = 0;
        for (int64_t li = 0; li < n; li++) {
            if (s->learnt_lbd.data[li] >= 0) {
                s->learnt_cref.data[dst] = s->learnt_cref.data[li];
                s->learnt_lbd.data[dst] = s->learnt_lbd.data[li];
                dst++;
            }
        }
        s->learnt_cref.len = dst;
        s->learnt_lbd.len = dst;
    }
    free(locked);
    free(removable);
    s->learnts_deleted += n_delete;
    s->reductions++;
    s->learnt_cap = (int64_t)((double)s->learnt_cap * LEARNT_CAP_GROWTH);
    if (n_delete) gc_arena(s);
}

/* ------------------------------------------------------------------ */
/* Conflict analysis                                                   */
/* ------------------------------------------------------------------ */
static void bump(Solver *s, int32_t var) {
    s->activity[var] += s->var_inc;
    if (s->activity[var] > 1e100) {
        for (int32_t v = 1; v <= s->num_vars; v++) s->activity[v] *= 1e-100;
        s->var_inc *= 1e-100;
        heap_rebuild(s);
    } else if (s->heap_pos[var] >= 0) {
        heap_sift_up(s, s->heap_pos[var]);
    }
}

/* First-UIP analysis; fills s->learnt_buf, returns the backjump level. */
static int32_t analyze(Solver *s, int32_t conflict) {
    int32_t *arena = s->arena.data;
    int32_t *level = s->level;
    int32_t *trail = s->trail;
    uint8_t *seen = s->seen;
    int32_t current = (int32_t)s->trail_lim.len;
    veci *learnt = &s->learnt_buf;
    learnt->len = 0;
    veci_push(learnt, 0); /* placeholder for the asserting literal */
    int32_t counter = 0;
    int32_t p = -1;
    int64_t index = s->trail_len - 1;
    int32_t cref = conflict;
    for (;;) {
        int32_t base = cref + 1;
        int32_t start = (p == -1) ? base : base + 1;
        int32_t stop = base + arena[cref];
        for (int32_t qi = start; qi < stop; qi++) {
            int32_t q = arena[qi];
            int32_t var = q >> 1;
            if (!seen[var] && level[var] > 0) {
                seen[var] = 1;
                bump(s, var);
                /* bump may rescale + rebuild, never touches the arena */
                if (level[var] >= current) counter++;
                else veci_push(learnt, q);
            }
        }
        while (!seen[trail[index] >> 1]) index--;
        p = trail[index];
        index--;
        int32_t var = p >> 1;
        seen[var] = 0;
        counter--;
        if (counter == 0) break;
        cref = s->reason[var];
    }
    learnt->data[0] = p ^ 1;
    int32_t *lits = learnt->data;
    int64_t len = learnt->len;
    for (int64_t i = 1; i < len; i++) seen[lits[i] >> 1] = 0;
    if (len == 1) return 0;
    /* Backjump to the second-highest level in the clause; move that
     * literal to watch position 1. */
    int64_t max_i = 1;
    for (int64_t i = 2; i < len; i++) {
        if (level[lits[i] >> 1] > level[lits[max_i] >> 1]) max_i = i;
    }
    int32_t tmp = lits[1];
    lits[1] = lits[max_i];
    lits[max_i] = tmp;
    return level[lits[1] >> 1];
}

/* Ensure the LBD level-stamp array can index decision levels [0, max]. */
static int grow_lvl_stamp(Solver *s, int64_t max_level) {
    if (max_level < s->lvl_cap) return 1;
    int64_t cap = s->lvl_cap ? s->lvl_cap : 64;
    while (cap <= max_level) cap *= 2;
    int32_t *stamp = (int32_t *)realloc(s->lvl_stamp, (size_t)cap * sizeof(int32_t));
    if (!stamp) return 0;
    memset(stamp + s->lvl_cap, 0, (size_t)(cap - s->lvl_cap) * sizeof(int32_t));
    s->lvl_stamp = stamp;
    s->lvl_cap = cap;
    return 1;
}

/* LBD: distinct decision levels among the learnt clause's literals. */
static int32_t compute_lbd(Solver *s, const int32_t *lits, int64_t len) {
    int32_t gen = ++s->lvl_gen;
    int32_t *stamp = s->lvl_stamp;
    int32_t count = 0;
    for (int64_t i = 0; i < len; i++) {
        int32_t lvl = s->level[lits[i] >> 1];
        if (stamp[lvl] != gen) {
            stamp[lvl] = gen;
            count++;
        }
    }
    return count;
}

/* ------------------------------------------------------------------ */
/* Clause addition (root level)                                        */
/* ------------------------------------------------------------------ */

/* Returns 1 on success (including tautology / satisfied-at-root drops),
 * 0 when the solver became inconsistent.  Mirrors the reference's
 * root-level simplification exactly: tautologies and root-satisfied
 * clauses are dropped, root-falsified literals are stripped, duplicate
 * literals are merged (first occurrence kept), units are enqueued and
 * propagated. */
int sat_add_clause(Solver *s, const int32_t *dimacs, int32_t n) {
    if (s->trail_lim.len) return -1; /* only at decision level 0 */
    int32_t gen = ++s->stamp_gen;
    veci *buf = &s->learnt_buf; /* reuse: never live across calls */
    buf->len = 0;
    for (int32_t i = 0; i < n; i++) {
        int32_t lit = dimacs[i];
        int32_t var = lit < 0 ? -lit : lit;
        /* Variables are created per literal, in encounter order, and an
         * early tautology/satisfied return skips the rest — exactly the
         * reference's behavior (var creation order feeds the branching
         * heap, so it is trajectory-relevant). */
        if (!ensure_vars(s, var)) return -1;
        int32_t *stamp = s->lit_stamp; /* may have been reallocated */
        int32_t ilit = (var << 1) | (lit < 0 ? 1 : 0);
        if (stamp[ilit ^ 1] == gen) return 1; /* tautology */
        if (stamp[ilit] == gen) continue;     /* duplicate */
        int8_t value = s->vals[ilit];
        if (value == 1 && s->level[var] == 0) return 1; /* satisfied */
        if (value == 0 && s->level[var] == 0) continue; /* falsified */
        stamp[ilit] = gen;
        veci_push(buf, ilit);
    }
    if (buf->len == 0) {
        s->ok = 0;
        return 0;
    }
    if (buf->len == 1) {
        if (!enqueue(s, buf->data[0], -1)) {
            s->ok = 0;
            return 0;
        }
        if (propagate(s) >= 0) {
            s->ok = 0;
            return 0;
        }
        return 1;
    }
    attach_clause(s, buf->data, (int32_t)buf->len, -1);
    return 1;
}

/* ------------------------------------------------------------------ */
/* Search                                                              */
/* ------------------------------------------------------------------ */
static int32_t pick_branch(Solver *s) {
    int8_t *vals = s->vals;
    while (s->heap_len) {
        int32_t var = heap_pop(s);
        if (vals[var << 1] == -1)
            return (var << 1) | (s->phase[var] ^ 1);
    }
    return -1;
}

/* The CDCL search; same control flow as the reference's _solve.
 * conflict_limit < 0 means unlimited; time_expired (optional) is polled
 * every BUDGET_CHECK_INTERVAL propagations.  Writes the number of
 * conflicts consumed by this call to *conflicts_out. */
int sat_solve(Solver *s, const int32_t *assumptions_dimacs, int32_t n_assumptions,
              int64_t conflict_limit, time_expired_fn time_expired,
              int64_t *conflicts_out) {
    *conflicts_out = 0;
    if (!s->ok) return UNSAT_EARLY_RESULT;
    cancel_until(s, 0);
    if (propagate(s) >= 0) {
        s->ok = 0;
        return UNSAT_EARLY_RESULT;
    }

    for (int32_t i = 0; i < n_assumptions; i++) {
        int32_t var = assumptions_dimacs[i] < 0 ? -assumptions_dimacs[i]
                                                : assumptions_dimacs[i];
        if (!ensure_vars(s, var)) return -1;
    }
    /* Assumption literals, internal encoding (var_cap is settled now). */
    veci assum = {0, 0, 0};
    for (int32_t i = 0; i < n_assumptions; i++) {
        int32_t lit = assumptions_dimacs[i];
        int32_t var = lit < 0 ? -lit : lit;
        veci_push(&assum, (var << 1) | (lit < 0 ? 1 : 0));
    }

    int64_t next_time_check =
        time_expired ? s->propagations + BUDGET_CHECK_INTERVAL : -1;
    int64_t conflicts_seen = 0;
    int64_t restart_budget = 64;
    int result = UNKNOWN_RESULT;

    for (;;) {
        int32_t conflict = propagate(s);
        if (next_time_check >= 0 && s->propagations >= next_time_check) {
            next_time_check = s->propagations + BUDGET_CHECK_INTERVAL;
            if (time_expired()) {
                result = UNKNOWN_RESULT;
                break;
            }
        }
        if (conflict >= 0) {
            conflicts_seen++;
            s->conflicts++;
            if ((int64_t)s->trail_lim.len <= (int64_t)n_assumptions) {
                result = UNSAT_RESULT;
                break;
            }
            int32_t back = analyze(s, conflict);
            int32_t *lits = s->learnt_buf.data;
            int64_t len = s->learnt_buf.len;
            if (!grow_lvl_stamp(s, (int64_t)s->trail_lim.len)) {
                free(assum.data);
                return -1;
            }
            int32_t lbd = compute_lbd(s, lits, len);
            cancel_until(s, back);
            if (len == 1) {
                if (!enqueue(s, lits[0], -1)) {
                    result = UNSAT_RESULT;
                    break;
                }
            } else {
                int32_t cref = attach_clause(s, lits, (int32_t)len, lbd);
                enqueue(s, lits[0], cref);
            }
            s->var_inc /= s->var_decay;
            if (conflict_limit >= 0 && conflicts_seen >= conflict_limit) {
                result = UNKNOWN_RESULT;
                break;
            }
            if (conflicts_seen >= restart_budget) {
                restart_budget = (int64_t)((double)restart_budget * 1.5);
                s->restarts++;
                cancel_until(s, 0);
                if (s->learnt_cref.len >= s->learnt_cap) reduce_learnts(s);
            }
            continue;
        }

        /* No conflict: extend assumptions, then decide. */
        int64_t depth = s->trail_lim.len;
        if (depth < (int64_t)n_assumptions) {
            int32_t ilit = assum.data[depth];
            int8_t value = s->vals[ilit];
            if (value == 0) {
                result = UNSAT_RESULT;
                break;
            }
            veci_push(&s->trail_lim, (int32_t)s->trail_len);
            if (value != 1) enqueue(s, ilit, -1);
            continue;
        }
        int32_t decision = pick_branch(s);
        if (decision == -1) {
            result = SAT_RESULT;
            break;
        }
        s->decisions++;
        veci_push(&s->trail_lim, (int32_t)s->trail_len);
        enqueue(s, decision, -1);
    }

    free(assum.data);
    *conflicts_out = conflicts_seen;
    if (result == SAT_RESULT) {
        for (int32_t var = 1; var <= s->num_vars; var++)
            s->model_vals[var] = s->vals[var << 1];
        s->model_valid = 1;
    } else {
        s->model_valid = 0;
    }
    cancel_until(s, 0);
    update_arena_hw(s);
    return result;
}

/* Copy the last model into out[0..num_vars]: per-var 1/0, -1 unassigned.
 * Returns 0 if the last solve was not SAT. */
int sat_get_model(Solver *s, int8_t *out, int32_t out_len) {
    if (!s->model_valid) return 0;
    int32_t n = s->num_vars + 1 < out_len ? s->num_vars + 1 : out_len;
    if (n > 0) {
        memcpy(out, s->model_vals, (size_t)n);
        out[0] = -1;
    }
    return 1;
}

int sat_model_valid(Solver *s) { return s->model_valid; }

/* Counters, fixed order (mirrored by the Python wrapper). */
void sat_get_stats(Solver *s, int64_t *out) {
    out[0] = s->decisions;
    out[1] = s->conflicts;
    out[2] = s->propagations;
    out[3] = s->restarts;
    out[4] = s->learnts_deleted;
    out[5] = s->reductions;
    out[6] = s->watchers_compacted;
    out[7] = s->arena_bytes;
    out[8] = s->arena_gcs;
    out[9] = s->arena_words_reclaimed;
}
