#!/usr/bin/env python3
"""What sweeping buys you: network reduction and counterexample debugging.

Two downstream uses of the sweep result beyond counting SAT calls:

1. **Reduction** — proven-equivalent nodes merge onto one representative
   (fraig-style), shrinking the netlist while preserving every output.
2. **Counterexample minimization** — a SAT model that disproves a
   candidate pair binds every cone PI; shrinking it to a minimal
   *distinguishing cube* tells a debugging engineer exactly which inputs
   matter.

Run:  python examples/reduce_and_minimize.py
"""

import random

from repro.benchgen import build_benchmark
from repro.core import make_generator
from repro.mapping import map_to_luts
from repro.sat.solver import SatResult
from repro.simulation import Simulator
from repro.sweep import (
    SweepConfig,
    SweepEngine,
    minimize_counterexample,
    sweep_and_reduce,
    union_network,
)
from repro.transforms import rewrite, strash


def main() -> None:
    # A CEC-style workload: benchmark + rewritten copy = many provable
    # equivalences for the reducer to merge.
    base = build_benchmark("misex3c")
    revised = rewrite(base, seed=7, intensity=0.3)
    union, _ = union_network(base, revised)
    network, _ = map_to_luts(strash(union))
    print(f"workload: {network.num_gates} LUTs, {len(network.pis)} PIs")

    generator = make_generator("AI+DC+MFFC", network, seed=1)
    engine = SweepEngine(
        network, generator, SweepConfig(seed=3, iterations=15, random_width=8)
    )
    result = engine.run()
    print(
        f"sweep: {result.metrics.sat_calls} SAT calls, "
        f"{len(result.equivalences)} equivalences proven"
    )

    # ------------------------------------------------------------------
    # 1. Reduce: merge the proven equivalences.
    # ------------------------------------------------------------------
    reduced, stats = sweep_and_reduce(network, result)
    print(
        f"reduce: {stats.gates_before} -> {stats.gates_after} gates "
        f"({stats.merged} merges, {stats.inverters_added} inverters added)"
    )

    # ------------------------------------------------------------------
    # 2. Minimize a counterexample from a disproven pair.
    # ------------------------------------------------------------------
    from repro.sweep.checker import PairChecker

    checker = PairChecker(network)
    simulator = Simulator(network)
    rng = random.Random(0)
    gates = [n.uid for n in network.gates()]
    shown = 0
    for _ in range(200):
        a, b = rng.sample(gates, 2)
        verdict, vector = checker.check(a, b)
        if verdict is not SatResult.SAT:
            continue
        full = vector.completed(network.pis, rng)
        values = simulator.run_vector(full.values)
        if values[a] == values[b]:
            continue
        minimal = minimize_counterexample(network, full, a, b)
        print(
            f"cex for nodes ({a}, {b}): {len(full.values)} bound PIs "
            f"-> minimal distinguishing cube of {len(minimal.values)}"
        )
        shown += 1
        if shown == 3:
            break


if __name__ == "__main__":
    main()
