"""Command-line interface over the library's flows.

Commands operate on BLIF or .bench files (format chosen by extension):

* ``stats   <in>``                     — size/depth summary
* ``map     <in> -o <out> [-k K]``     — K-LUT technology mapping
* ``strash  <in> -o <out>``            — structural hashing / cleanup
* ``sweep   <in> [-o <out>]``          — SimGen-accelerated SAT sweeping;
                                          with ``-o`` writes the reduced
                                          (merged) network
* ``cec     <a> <b>``                  — equivalence check two netlists
* ``putontop <in> -o <out> -n N``      — stack N copies (&putontop)
* ``gen     <benchmark> -o <out>``     — emit a suite benchmark as a file
* ``bench   [--quick]``                — perf regression harness
                                          (writes ``BENCH_perf.json``)
* ``trace   <file.jsonl>``             — analyze / validate a structured
                                          trace recorded with ``--trace``
* ``serve   [--port N] [--cache F]``   — persistent sweep/CEC daemon with
                                          a signature-keyed verdict cache
* ``submit  <in> [--revised <b>]``     — run a sweep (or CEC) job on a
                                          running ``serve`` daemon

``sweep`` and ``cec`` accept ``--trace FILE`` to record a structured JSONL
trace of the run (see docs/OBSERVABILITY.md).

Example::

    python -m repro.tools map design.blif -o design.bench -k 6
    python -m repro.tools cec golden.blif revised.blif
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.benchgen import benchmark_names, build_benchmark
from repro.core import factory, make_generator
from repro.errors import ReproError
from repro.runtime import Budget, atomic_write_json, atomic_write_text
from repro.io import (
    bench_text,
    blif_text,
    read_bench,
    read_blif,
)
from repro.mapping import map_to_luts
from repro.network.network import Network
from repro.sweep import (
    SweepConfig,
    SweepEngine,
    check_equivalence,
    reduce_network,
)
from repro.transforms import put_on_top, strash


def load_network(path: str) -> Network:
    """Read a netlist, dispatching on the file extension."""
    suffix = Path(path).suffix.lower()
    if suffix == ".blif":
        return read_blif(path)
    if suffix == ".bench":
        return read_bench(path)
    if suffix == ".aag":
        from repro.aig import aig_to_network, read_aag

        return aig_to_network(read_aag(path))
    raise ReproError(
        f"unsupported netlist extension {suffix!r} (use .blif/.bench/.aag)"
    )


def save_network(network: Network, path: str) -> None:
    """Write a netlist, dispatching on the file extension."""
    suffix = Path(path).suffix.lower()
    if suffix == ".blif":
        text = blif_text(network)
    elif suffix == ".bench":
        text = bench_text(network)
    elif suffix == ".aag":
        from repro.aig import aag_text, network_to_aig

        text = aag_text(network_to_aig(network))
    else:
        raise ReproError(
            f"unsupported netlist extension {suffix!r} (use .blif/.bench/.aag)"
        )
    # Atomic: a crash mid-write must never leave a half-written netlist
    # (a resumed session byte-compares these artifacts).
    atomic_write_text(path, text)


def _cmd_stats(args: argparse.Namespace) -> int:
    network = load_network(args.input)
    print(f"name   : {network.name}")
    print(f"PIs    : {len(network.pis)}")
    print(f"POs    : {len(network.pos)}")
    print(f"gates  : {network.num_gates}")
    print(f"depth  : {network.depth()}")
    arities = [n.num_fanins for n in network.gates()]
    if arities:
        print(f"max fanin: {max(arities)}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    network = load_network(args.input)
    mapped, stats = map_to_luts(network, k=args.k)
    save_network(mapped, args.output)
    print(f"mapped to {stats.luts} LUT{stats.k}s, depth {stats.depth} -> {args.output}")
    return 0


def _cmd_strash(args: argparse.Namespace) -> int:
    network = load_network(args.input)
    hashed = strash(network)
    save_network(hashed, args.output)
    print(
        f"strash: {network.num_gates} -> {hashed.num_gates} gates -> "
        f"{args.output}"
    )
    return 0


def _run_budget(args: argparse.Namespace) -> Optional[Budget]:
    """Build the run-level budget from ``--timeout`` (None = unbounded)."""
    if getattr(args, "timeout", None) is None:
        return None
    return Budget(seconds=args.timeout)


def _open_tracer(args: argparse.Namespace, command: str):
    """Build the structured tracer from ``--trace`` (None = disabled).

    Invocation metadata (command, seed, jobs) goes into the header only —
    it is jobs-dependent and the header is excluded from the deterministic
    trace projection.
    """
    path = getattr(args, "trace", None)
    if path is None:
        return None
    from repro.obs import Tracer

    return Tracer(
        path,
        meta={
            "command": command,
            "seed": args.seed,
            "jobs": getattr(args, "jobs", 1),
        },
    )


def _open_journal(args: argparse.Namespace):
    """Build the verdict journal from ``--journal``/``--resume``.

    ``--resume`` replays an existing journal (skipping already-proven
    pairs); without it, an existing non-empty journal is refused rather
    than silently extended.
    """
    path = getattr(args, "journal", None)
    if path is None:
        if getattr(args, "resume", False):
            raise ReproError("--resume requires --journal FILE")
        return None
    from repro.runtime import VerdictJournal

    return VerdictJournal(path, resume=getattr(args, "resume", False))


def _report_journal(args: argparse.Namespace, journal) -> None:
    if journal is None:
        return
    stats = journal.stats
    print(
        f"journal -> {args.journal} "
        f"({stats['replayed_verdicts']} replayed, "
        f"{stats['appends']} appended"
        + (
            f", torn tail truncated"
            if stats["torn_tail_truncations"]
            else ""
        )
        + ")"
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    network = load_network(args.input)
    generator = make_generator(
        args.strategy,
        network,
        seed=args.seed,
        simgen_backend=args.simgen_backend,
    )
    tracer = _open_tracer(args, "sweep")
    journal = _open_journal(args)
    config = SweepConfig(
        seed=args.seed,
        iterations=args.iterations,
        random_width=args.patterns,
        budget=_run_budget(args),
        max_escalations=2 if args.escalate else 0,
        jobs=args.jobs,
        sat_backend=args.sat_backend,
        tracer=tracer,
        journal=journal,
    )
    try:
        engine = SweepEngine(network, generator, config)
        result = engine.run()
    finally:
        if tracer is not None:
            tracer.close()
        if journal is not None:
            journal.close()
    if tracer is not None:
        print(f"trace -> {args.trace}")
    _report_journal(args, journal)
    metrics = result.metrics
    if metrics.cost_history:
        print(
            f"cost {metrics.cost_history[0]} -> {metrics.final_cost}, "
            f"{metrics.sat_calls} SAT calls "
            f"({metrics.proven} proven, {metrics.disproven} disproven, "
            f"{metrics.unknown} unknown), "
            f"gen {metrics.simgen_time:.2f}s sim {metrics.sim_time:.2f}s "
            f"sat {metrics.sat_time:.2f}s "
            f"(phase {metrics.sat_phase_time:.2f}s)"
        )
    if metrics.escalations:
        print(
            f"escalations: {metrics.escalations} retries, "
            f"{metrics.unknown_after_escalation} pairs still unknown"
        )
    if metrics.deadline_expired:
        print("deadline expired: partial (sound) result")
    if metrics.interrupted:
        print("interrupted: partial (sound) result")
    if args.output:
        reduced, stats = reduce_network(network, result.equivalences)
        save_network(reduced, args.output)
        print(
            f"reduced: {stats.gates_before} -> {stats.gates_after} gates "
            f"({stats.merged} merges) -> {args.output}"
        )
    return 0


def _cmd_cec(args: argparse.Namespace) -> int:
    network_a = load_network(args.golden)
    network_b = load_network(args.revised)
    tracer = _open_tracer(args, "cec")
    journal = _open_journal(args)
    try:
        result = check_equivalence(
            network_a,
            network_b,
            generator_factory=factory(
                args.strategy, simgen_backend=args.simgen_backend
            ),
            config=SweepConfig(
                seed=args.seed,
                iterations=args.iterations,
                budget=_run_budget(args),
                max_escalations=2 if args.escalate else 0,
                jobs=args.jobs,
                sat_backend=args.sat_backend,
                tracer=tracer,
                journal=journal,
            ),
        )
    finally:
        if tracer is not None:
            tracer.close()
        if journal is not None:
            journal.close()
    if tracer is not None:
        print(f"trace -> {args.trace}")
    _report_journal(args, journal)
    verdict = result.verdict.upper()
    print(f"{verdict}  ({result.metrics.sat_calls} SAT calls)")
    for name, state in result.outputs.items():
        if state != "equal":
            print(f"  output {name}: {state}")
    if result.counterexample is not None:
        values = " ".join(
            f"{network_a.node(pi).label()}={v}"
            for pi, v in sorted(result.counterexample.values.items())
        )
        print(f"  counterexample: {values}")
    if args.json:
        report = {
            "verdict": result.verdict,
            "equivalent": result.equivalent,
            "conclusive": result.conclusive,
            # Sorted so the report is byte-stable across worker counts
            # (the per-output dict is populated in dispatch order).
            "outputs": dict(sorted(result.outputs.items())),
            "sat_calls": result.metrics.sat_calls,
            "deadline_expired": result.metrics.deadline_expired,
            "interrupted": result.metrics.interrupted,
        }
        atomic_write_json(args.json, report)
    # A difference is exit 1; "inconclusive" exits 0 like "equivalent" so a
    # deadline-bounded run in CI is distinguishable from a refutation (the
    # report carries conclusive=false).
    return 1 if result.verdict == "different" else 0


def _cmd_putontop(args: argparse.Namespace) -> int:
    network = load_network(args.input)
    stacked = put_on_top(network, args.copies)
    save_network(stacked, args.output)
    print(
        f"stacked {args.copies}x: {stacked.num_gates} gates, "
        f"{len(stacked.pis)} PIs, {len(stacked.pos)} POs -> {args.output}"
    )
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    network = build_benchmark(args.benchmark)
    save_network(network, args.output)
    print(f"{args.benchmark}: {network.num_gates} gates -> {args.output}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    network = load_network(args.input)
    save_network(network, args.output)
    print(f"{args.input} -> {args.output} ({network.num_gates} gates)")
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    import random as _random

    from repro.simulation import PatternBatch, batch_quality

    network = load_network(args.input)
    batch = PatternBatch.random_for(
        network, args.patterns, _random.Random(args.seed)
    )
    quality = batch_quality(network, batch)
    print(f"patterns          : {quality.patterns}")
    print(f"toggle rate       : {quality.toggle_rate:.3f}")
    print(f"signature classes : {quality.signature_classes}")
    print(f"constant nodes    : {quality.constant_fraction:.1%}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, render, summarize, validate_records

    try:
        records = load_trace(args.input)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.validate:
        errors = validate_records(records)
        if errors:
            for error in errors:
                print(f"invalid: {error}", file=sys.stderr)
            return 1
        print(f"trace OK: {len(records)} records")
        return 0
    print(render(summarize(records), top=args.top))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: most CLI invocations never start the daemon.
    from repro.serve import (
        ClientBudget,
        SweepService,
        VerdictCache,
        build_server,
        run_server,
    )

    cache = VerdictCache(
        path=args.cache, max_bytes=int(args.cache_bytes)
    )
    service = SweepService(
        workers=args.workers,
        cache=cache,
        default_budget=ClientBudget(
            max_pending=args.max_pending,
            max_job_seconds=args.max_job_seconds,
        ),
    )
    server = build_server(host=args.host, port=args.port, service=service)
    host, port = server.server_address[:2]
    loaded = cache.stats["loaded"]
    print(
        f"serving on http://{host}:{port} "
        f"({args.workers} workers"
        + (f", {loaded} cached verdicts loaded" if loaded else "")
        + ")",
        flush=True,
    )
    run_server(server)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.io import bench_text as _bench_text
    from repro.serve import ServeClient

    config = {
        "seed": args.seed,
        "iterations": args.iterations,
        "patterns": args.patterns,
        "strategy": args.strategy,
        "simgen_backend": args.simgen_backend,
        "sat_backend": args.sat_backend,
        "jobs": args.jobs,
        "timeout": args.timeout,
        "escalate": args.escalate,
    }
    # Normalize through the parser so any supported extension submits.
    request = {
        "kind": "cec" if args.revised else "sweep",
        "format": "bench",
        "netlist": _bench_text(load_network(args.input)),
        "client": args.client,
        "config": config,
        "trace": args.trace,
    }
    if args.revised:
        request["revised"] = _bench_text(load_network(args.revised))
    client = ServeClient(args.url)
    job_id = client.submit(request)
    print(f"job {job_id} submitted to {args.url}")
    state = client.wait(job_id, timeout=args.wait_timeout)
    result = state["result"]
    cache_stats = result["cache"]
    print(
        f"cache: {cache_stats['hits']} replayed, "
        f"{cache_stats['misses']} missed, "
        f"{cache_stats['appends']} appended"
    )
    if args.trace:
        trace = client.trace(job_id)
        atomic_write_text(args.trace, trace.decode("utf-8"))
        print(f"trace -> {args.trace}")
    if result["kind"] == "sweep":
        metrics = result["metrics"]
        print(
            f"reduced: {result['gates_before']} -> {result['gates_after']} "
            f"gates ({result['merged']} merges), "
            f"{metrics['sat_calls']} SAT calls"
        )
        if args.output:
            atomic_write_text(args.output, result["netlist"])
            print(f"-> {args.output}")
        return 0
    print(
        f"{result['verdict'].upper()}  "
        f"({result['metrics']['sat_calls']} SAT calls)"
    )
    if result["counterexample"]:
        values = " ".join(f"{n}={v}" for n, v in result["counterexample"])
        print(f"  counterexample: {values}")
    return 1 if result["verdict"] == "different" else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the harness pulls in the whole experiment stack.
    from repro.experiments.perfbench import main as bench_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    forwarded += [
        "-o", args.output,
        "--seed", str(args.seed),
        "--repeats", str(args.repeats),
    ]
    if args.min_speedup is not None:
        forwarded += ["--min-speedup", str(args.min_speedup)]
    if args.baseline is not None:
        forwarded += [
            "--baseline", args.baseline,
            "--max-regression", str(args.max_regression),
        ]
    return bench_main(forwarded)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools", description="SimGen netlist utilities"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="netlist summary")
    p.add_argument("input")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("map", help="K-LUT mapping")
    p.add_argument("input")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("-k", type=int, default=6)
    p.set_defaults(fn=_cmd_map)

    p = sub.add_parser("strash", help="structural hashing")
    p.add_argument("input")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_strash)

    p = sub.add_parser("sweep", help="SimGen-accelerated SAT sweeping")
    p.add_argument("input")
    p.add_argument("-o", "--output", help="write the reduced network here")
    p.add_argument("--strategy", default="AI+DC+MFFC")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--patterns", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="wall-clock deadline; expiry returns a sound partial result",
    )
    p.add_argument(
        "--escalate", action="store_true",
        help="retry conflict-limited pairs with growing limits (20k->80k->320k)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="SAT-phase worker processes (results identical for any N)",
    )
    p.add_argument(
        "--trace", metavar="FILE",
        help="record a structured JSONL trace of the run",
    )
    p.add_argument(
        "--simgen-backend", choices=("batch", "compiled", "reference"),
        default="batch", dest="simgen_backend",
        help="guided-vector kernel (trajectories identical; batch is fastest)",
    )
    p.add_argument(
        "--sat-backend", choices=("compiled", "reference"),
        default="compiled", dest="sat_backend",
        help="CDCL solver core (trajectories identical; compiled is faster)",
    )
    p.add_argument(
        "--journal", metavar="FILE",
        help="write-ahead verdict journal (crash-safe; replay with --resume)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="replay an existing --journal, skipping already-proven pairs",
    )
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("cec", help="combinational equivalence check")
    p.add_argument("golden")
    p.add_argument("revised")
    p.add_argument("--strategy", default="AI+DC+MFFC")
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="wall-clock deadline; expiry reports INCONCLUSIVE, never DIFFERENT",
    )
    p.add_argument(
        "--escalate", action="store_true",
        help="retry conflict-limited pairs with growing limits (20k->80k->320k)",
    )
    p.add_argument(
        "--json", metavar="FILE",
        help="write a machine-readable verdict report (includes conclusive)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="SAT-phase worker processes (verdicts identical for any N)",
    )
    p.add_argument(
        "--trace", metavar="FILE",
        help="record a structured JSONL trace of the run",
    )
    p.add_argument(
        "--simgen-backend", choices=("batch", "compiled", "reference"),
        default="batch", dest="simgen_backend",
        help="guided-vector kernel (trajectories identical; batch is fastest)",
    )
    p.add_argument(
        "--sat-backend", choices=("compiled", "reference"),
        default="compiled", dest="sat_backend",
        help="CDCL solver core (trajectories identical; compiled is faster)",
    )
    p.add_argument(
        "--journal", metavar="FILE",
        help="write-ahead verdict journal (crash-safe; replay with --resume)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="replay an existing --journal, skipping already-proven pairs",
    )
    p.set_defaults(fn=_cmd_cec)

    p = sub.add_parser("putontop", help="stack copies (&putontop)")
    p.add_argument("input")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("-n", "--copies", type=int, required=True)
    p.set_defaults(fn=_cmd_putontop)

    p = sub.add_parser("gen", help="emit a suite benchmark")
    p.add_argument("benchmark", choices=benchmark_names())
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_gen)

    p = sub.add_parser("convert", help="convert between netlist formats")
    p.add_argument("input")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(fn=_cmd_convert)

    p = sub.add_parser("sim", help="random simulation + quality metrics")
    p.add_argument("input")
    p.add_argument("--patterns", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_sim)

    p = sub.add_parser("trace", help="analyze/validate a structured trace")
    p.add_argument("input", help="JSONL trace written by --trace")
    p.add_argument(
        "--validate", action="store_true",
        help="check schema only (unclosed spans, negative durations, ...)",
    )
    p.add_argument(
        "--top", type=int, default=5,
        help="hottest SAT pairs to list in the summary (default 5)",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "serve", help="persistent sweep/CEC daemon with a verdict cache"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8351,
        help="listen port (0 picks a free one; printed at startup)",
    )
    p.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job runner threads",
    )
    p.add_argument(
        "--cache", metavar="FILE",
        help="persist the verdict cache here (reloaded at startup)",
    )
    p.add_argument(
        "--cache-bytes", type=int, default=64 * 1024 * 1024,
        dest="cache_bytes",
        help="in-memory cache bound; LRU entries evict past it",
    )
    p.add_argument(
        "--max-pending", type=int, default=16, dest="max_pending",
        help="per-client admission budget (queued + running jobs)",
    )
    p.add_argument(
        "--max-job-seconds", type=float, default=None,
        dest="max_job_seconds",
        help="clamp every job's deadline to this many seconds",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("submit", help="run a job on a repro.tools serve daemon")
    p.add_argument("input")
    p.add_argument(
        "--revised", metavar="FILE",
        help="second netlist: submit a CEC job instead of a sweep",
    )
    p.add_argument("--url", default="http://127.0.0.1:8351")
    p.add_argument("-o", "--output", help="write the reduced network here")
    p.add_argument("--client", default="cli", help="admission identity")
    p.add_argument("--strategy", default="AI+DC+MFFC")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--patterns", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, metavar="SECONDS")
    p.add_argument("--escalate", action="store_true")
    p.add_argument("--jobs", type=int, default=1, metavar="N")
    p.add_argument(
        "--trace", metavar="FILE",
        help="fetch the job's structured trace into this file",
    )
    p.add_argument(
        "--simgen-backend", choices=("batch", "compiled", "reference"),
        default="batch", dest="simgen_backend",
    )
    p.add_argument(
        "--sat-backend", choices=("compiled", "reference"),
        default="compiled", dest="sat_backend",
    )
    p.add_argument(
        "--wait-timeout", type=float, default=None, dest="wait_timeout",
        help="give up waiting for the result after this many seconds",
    )
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("bench", help="sweep performance regression harness")
    p.add_argument("--quick", action="store_true", help="CI smoke subset")
    p.add_argument("-o", "--output", default="BENCH_perf.json")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--repeats", type=int, default=3,
        help="cold runs per variant row; the fastest is reported",
    )
    p.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless end-to-end speedup vs seed reaches this factor",
    )
    p.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="committed BENCH_perf.json to gate speedup ratios against",
    )
    p.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional speedup drop vs --baseline (default 0.25)",
    )
    p.set_defaults(fn=_cmd_bench)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Engines absorb interrupts into partial results; one landing here
        # (during I/O, mapping, ...) still exits cleanly.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
