"""MetricsRegistry instruments: typing, merge determinism, snapshots."""

import pytest

from repro.obs import MetricsRegistry


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.inc("sweep.proven")
        registry.inc("sweep.proven", 4)
        assert registry.counter("sweep.proven").value == 5

    def test_timer_accumulates_and_counts(self):
        registry = MetricsRegistry()
        registry.add_time("sat.solve", 0.5)
        registry.add_time("sat.solve", 0.25)
        timer = registry.timer("sat.solve")
        assert timer.total == pytest.approx(0.75)
        assert timer.count == 2

    def test_timer_context_manager_closes_on_exception(self):
        registry = MetricsRegistry()
        ticks = iter([1.0, 3.0])
        with pytest.raises(ValueError):
            with registry.timer("x").time(clock=lambda: next(ticks)):
                raise ValueError("boom")
        assert registry.timer("x").total == pytest.approx(2.0)
        assert registry.timer("x").count == 1

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("conflicts", bounds=(0, 10, 100))
        for value in (0, 3, 50, 10_000):
            histogram.observe(value)
        assert histogram.buckets == [1, 1, 1, 1]
        assert histogram.count == 4

    def test_inc_many_splits_ints_and_floats(self):
        registry = MetricsRegistry()
        registry.inc_many(
            "sim",
            {"batches": 3, "sim_time": 0.5, "flag": True, "name": "x", "zero": 0},
        )
        snapshot = registry.as_dict()
        assert snapshot["sim.batches"] == 3
        assert snapshot["sim.sim_time.total_s"] == pytest.approx(0.5)
        assert "sim.flag" not in snapshot  # bools are not counters
        assert "sim.name" not in snapshot
        assert "sim.zero" not in snapshot  # zero counters stay unmaterialized


class TestMerge:
    def test_merge_sums_every_instrument(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("calls", 2)
        b.inc("calls", 3)
        a.add_time("solve", 0.5)
        b.add_time("solve", 0.5)
        a.observe("conflicts", 1)
        b.observe("conflicts", 7)
        a.merge(b)
        assert a.counter("calls").value == 5
        assert a.timer("solve").count == 2
        assert a.histogram("conflicts").count == 2

    def test_merge_order_invariant_for_integers(self):
        parts = []
        for value in (3, 1, 4):
            registry = MetricsRegistry()
            registry.inc("calls", value)
            registry.observe("conflicts", value)
            parts.append(registry)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for part in parts:
            forward.merge(part)
        for part in reversed(parts):
            backward.merge(part)
        strip = lambda d: {k: v for k, v in d.items() if not k.endswith("_s")}
        assert strip(forward.as_dict()) == strip(backward.as_dict())

    def test_merge_rejects_bound_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1, 2))
        b.histogram("h", bounds=(1, 2, 3))
        b.observe("h", 1)
        with pytest.raises(ValueError):
            a.merge(b)


class TestSnapshot:
    def test_as_dict_is_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.inc("b.count_things")
        registry.inc("a.count_things")
        registry.add_time("z.solve", 1.5)
        registry.observe("conflicts", 3)
        snapshot = registry.as_dict()
        counter_keys = [k for k in snapshot if k.endswith("count_things")]
        assert counter_keys == sorted(counter_keys)
        assert snapshot["z.solve.total_s"] == pytest.approx(1.5)
        assert snapshot["conflicts.buckets"][3] == 1  # 3 lands in bucket <=5
        # The *_s convention: every float second total is volatile-named so
        # trace projections drop exactly the timing keys.
        for key, value in snapshot.items():
            if isinstance(value, float):
                assert key.endswith("_s")
