"""The SAT-sweeping engine (the blue box of the paper's Figure 2).

The flow mirrors a sweeping tool like ABC's fraiging:

1. **Random simulation** partitions all candidate nodes into equivalence
   classes by signature.
2. **Guided simulation** (any :class:`~repro.core.generator.BaseVectorGenerator`
   plugin — RandS, RevS, or SimGen) refines the classes for a fixed number
   of iterations; the Equation-5 cost is recorded per iteration.
3. **SAT phase**: for every remaining class, candidate pairs are checked
   with the CDCL solver; UNSAT proves equivalence, SAT yields a
   counterexample vector that is simulated back to split further classes
   (the feedback arrow of Figure 2).

The engine measures exactly what the paper reports: per-iteration cost,
simulation runtime, SAT calls, and SAT runtime.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.compiled import adapt_backend
from repro.core.generator import BaseVectorGenerator
from repro.errors import SweepError, TransientSimulationError
from repro.network.network import Network
from repro.obs import NULL_TRACER, MetricsRegistry
from repro.runtime.budget import Budget
from repro.runtime.journal import config_fingerprint
from repro.runtime.pool import DEFAULT_SHARDS, CheckerPool, PairVerdict
from repro.runtime.supervise import RetryPolicy
from repro.sat.compiled import SAT_BACKENDS
from repro.sat.solver import SatResult
from repro.simulation.compiled import CompiledSimulator
from repro.simulation.patterns import InputVector, PatternBatch
from repro.simulation.simulator import Simulator
from repro.sweep.checker import PairChecker
from repro.sweep.classes import EquivalenceClasses


@dataclass(slots=True)
class SweepConfig:
    """Tunable parameters of a sweep run."""

    #: Master RNG seed; every stage derives from it (deterministic runs).
    seed: int = 0
    #: Rounds of initial random simulation (paper §6.1 uses one round).
    random_rounds: int = 1
    #: Patterns per random round (one machine word's worth by default).
    random_width: int = 64
    #: Guided-generator iterations after random simulation (paper: 20).
    iterations: int = 20
    #: Track PIs as class members (off: LUT outputs only, as in §6.1).
    include_pis: bool = False
    #: Enable complemented-signature matching (fraiging-style extension).
    match_complements: bool = False
    #: CDCL conflict budget per equivalence query (None = unbounded).
    sat_conflict_limit: Optional[int] = 20000
    #: Feed SAT counterexamples back into simulation (Figure 2 feedback).
    resimulate_cex: bool = True
    #: One persistent solver with selector-guarded miters (ABC-style); the
    #: fresh-solver-per-query mode exists for cross-checking.
    incremental_sat: bool = True
    #: ``"compiled"`` simulates through the tape-compiled engine with
    #: batched counterexample resimulation over cone-restricted tapes;
    #: ``"reference"`` keeps the original dict-walking simulator and the
    #: one-full-network-pass-per-disproof resimulation.  Both produce
    #: bit-identical classes, cost histories, and SAT-call counts (the
    #: perf harness cross-checks this); reference exists as the measured
    #: baseline and for debugging.
    engine: str = "compiled"
    #: SimGen generator backend: ``"batch"`` / ``"compiled"`` /
    #: ``"reference"`` swap the provided generator to the matching twin
    #: (bit-identical trajectories, see :mod:`repro.core.compiled` and
    #: :mod:`repro.core.batch`); ``None`` keeps it as constructed.
    #: Non-SimGen generators are unaffected.
    simgen_backend: Optional[str] = None
    #: SAT solver backend for the equivalence queries: ``"compiled"`` runs
    #: the arena-backed CDCL core (:mod:`repro.sat.compiled`; C via ctypes
    #: when a compiler is available, pure-Python arena otherwise),
    #: ``"reference"`` the original :class:`repro.sat.solver.CdclSolver`.
    #: Both follow bit-identical solver trajectories (verdicts, models,
    #: conflict counts, budget-expiry points).  An explicit
    #: ``solver_factory`` overrides the backend choice.
    sat_backend: str = "compiled"
    #: Max pending counterexamples per resimulation flush.  Pending
    #: vectors are always flushed before the classes are next consulted,
    #: so batching never changes results; wider batches form when several
    #: counterexamples are queued back-to-back (e.g. via
    #: :meth:`SweepEngine.queue_counterexample`).
    cex_batch_width: int = 64
    #: Recompile the resimulation tape onto the surviving splittable
    #: members' cones when their count falls below this fraction of the
    #: previously compiled target set (geometric => amortized-free).
    resim_recompile_factor: float = 0.5
    #: Run-level resource budget (deadline / total conflicts / total SAT
    #: calls).  ``None`` keeps the run unbounded and bit-identical to an
    #: unbudgeted sweep; with a budget, expiry stops the run gracefully
    #: with a sound partial result (``metrics.deadline_expired``).
    budget: Optional[Budget] = None
    #: UNKNOWN escalation ladder: pairs abandoned at ``sat_conflict_limit``
    #: are queued and retried up to this many times with geometrically
    #: growing limits (``limit * escalation_factor ** rung``) while budget
    #: headroom remains.  0 (default) disables the ladder.
    max_escalations: int = 0
    #: Growth factor of the escalation ladder (20k -> 80k -> 320k at 4).
    escalation_factor: int = 4
    #: Solver constructor for the SAT phase (fault-injection seam; see
    #: :class:`repro.runtime.faults.FlakySolver`).  ``None`` = CdclSolver.
    solver_factory: Optional[Callable[[], object]] = None
    #: Wrapper applied to every simulator the engine builds (fault seam;
    #: see :class:`repro.runtime.faults.FaultySimulator`).
    simulator_wrapper: Optional[Callable[[object], object]] = None
    #: Bounded retries for a transiently failing simulator batch before
    #: the refinement is skipped (sound: classes just stay coarser).
    sim_retries: int = 3
    #: Bounded fresh-solver retries for a transiently failing SAT query
    #: before it degrades to UNKNOWN.
    solver_retries: int = 2
    #: Worker processes for the SAT phase.  1 (default) is the in-process
    #: serial path, bit-identical to previous releases.  >1 dispatches
    #: independent pairs in level-ordered waves to a
    #: :class:`~repro.runtime.pool.CheckerPool` and merges verdicts in
    #: canonical dispatch order; the trajectory is then bit-identical for
    #: *any* worker count (final merges, classes, and cost also match the
    #: serial path — see docs/PERFORMANCE.md).
    jobs: int = 1
    #: Virtual solver shards of the parallel path (fixed, never derived
    #: from ``jobs``, so the trajectory is worker-count-invariant).
    sat_shards: int = DEFAULT_SHARDS
    #: Fault-injection seam of the parallel path: a worker receiving this
    #: exact ``(rep, member)`` pair SIGKILLs itself mid-query; chaos tests
    #: use it to prove the pair is re-dispatched (and, past the retry
    #: budget, degrades to UNKNOWN).
    chaos_kill_pair: Optional[tuple[int, int]] = None
    #: Worker deaths the chaos seam may cause before respawns are disarmed
    #: (``None`` = every respawn stays armed, so the retry budget exhausts).
    chaos_kill_limit: Optional[int] = 1
    #: Re-dispatches allowed for a pair lost inside a dead pool worker
    #: before it degrades to UNKNOWN (see
    #: :class:`repro.runtime.supervise.RetryPolicy`); backoff jitter is
    #: seeded from :attr:`seed`, never wall clock.
    pair_retry_limit: int = 2
    #: Write-ahead verdict journal
    #: (:class:`repro.runtime.journal.VerdictJournal`); ``None`` disables
    #: durable sessions.  A journal forces *query-pure* SAT checking
    #: (``incremental_sat`` is overridden to fresh-solver-per-query) so
    #: every verdict is a pure function of the pair and replaying a prefix
    #: reproduces the uninterrupted trajectory bit-for-bit.
    journal: Optional[object] = None
    #: Structured trace sink (:class:`repro.obs.Tracer`); ``None`` wires the
    #: shared no-op tracer, whose cost is one attribute read per site.
    tracer: Optional[object] = None
    #: Metrics registry the run records into (:class:`repro.obs.MetricsRegistry`);
    #: ``None`` gives the engine a private one (reachable as
    #: ``engine.registry``).  Pass a shared registry to aggregate runs.
    registry: Optional[MetricsRegistry] = None


@dataclass(slots=True)
class SweepMetrics:
    """Everything the paper's evaluation reports for one run."""

    #: Equation-5 cost after random simulation and after every iteration.
    cost_history: list[int] = field(default_factory=list)
    #: Wall-clock seconds spent *simulating* vectors (random rounds, guided
    #: batches, counterexample resimulation).  Guided-vector generation is
    #: charged to :attr:`simgen_time`; each guided iteration's window is
    #: split between the two, so
    #: ``sim_time + simgen_time >= sum(iteration_times)`` always holds.
    sim_time: float = 0.0
    #: Wall-clock seconds spent inside the guided-vector generator (the
    #: SimGen kernel's bucket; previously lumped into :attr:`sim_time`).
    simgen_time: float = 0.0
    #: Seconds per guided iteration (aligned with ``cost_history[1:]``).
    iteration_times: list[float] = field(default_factory=list)
    #: Seconds inside ``generator.generate`` per guided iteration (aligned
    #: with :attr:`iteration_times`).  Each window is charged to
    #: :attr:`simgen_time` exactly once, so
    #: ``simgen_time == sum(generation_times)`` holds on every backend —
    #: including the batch driver, whose 64-wide verification flushes run
    #: inside the generate window they speculate for.
    generation_times: list[float] = field(default_factory=list)
    #: Vectors simulated in the simulation phase.
    vectors_simulated: int = 0
    #: SAT queries issued in the SAT phase.
    sat_calls: int = 0
    #: Checker-owned SAT seconds: the sum of every pair query's measured
    #: window (worker-local clocks on the pooled path).  One timer owns
    #: each window, so ``sat_time == sum(sat_time_per_attempt)`` always —
    #: the phase *wall-clock* (which also covers resimulation and merge
    #: bookkeeping) is :attr:`sat_phase_time`.
    sat_time: float = 0.0
    #: Coordinator wall-clock seconds of the SAT phase window.  On the
    #: pooled path workers overlap, so ``sat_time`` can exceed this.
    sat_phase_time: float = 0.0
    #: Pairs proven equivalent (UNSAT).
    proven: int = 0
    #: Pairs disproven with a counterexample (SAT).
    disproven: int = 0
    #: Pairs abandoned at the conflict limit.
    unknown: int = 0
    #: Escalation-ladder retry attempts issued (each is also a SAT call).
    escalations: int = 0
    #: Pairs still UNKNOWN after the full escalation ladder.
    unknown_after_escalation: int = 0
    #: True if the run was cut short by its budget; everything reported is
    #: still sound, but unresolved pairs remain unproven.
    deadline_expired: bool = False
    #: True if the run was cut short by KeyboardInterrupt.
    interrupted: bool = False
    #: SAT seconds split per attempt rung: index 0 accumulates base-limit
    #: attempts, index i the i-th escalation rung.
    sat_time_per_attempt: list[float] = field(default_factory=list)
    #: Transient simulator faults absorbed by batch retries.
    sim_retries: int = 0
    #: Transient solver faults absorbed by fresh-solver rebuilds.
    solver_retries: int = 0
    #: Dispatch waves of the parallel SAT phase (0 on the serial path).
    waves: int = 0
    #: Summed solver seconds inside pool workers.  Every pooled window is
    #: charged to exactly one owner, so on a fully-pooled run this equals
    #: ``sat_time``; it exceeds :attr:`sat_phase_time` when workers overlap.
    worker_sat_time: float = 0.0
    #: Pool worker deaths absorbed by respawn + UNKNOWN degradation.
    worker_failures: int = 0
    #: Pairs whose answer was lost (worker death / deadline) and degraded
    #: to UNKNOWN rather than fabricated.
    degraded_pairs: int = 0

    def charge_attempt(self, rung: int, seconds: float) -> None:
        """Charge one measured SAT window to its escalation rung.

        The single entry point for SAT seconds: it feeds both
        :attr:`sat_time` and :attr:`sat_time_per_attempt`, which is what
        keeps ``sat_time == sum(sat_time_per_attempt)`` an invariant on
        every path (serial, pooled, CEC fallback, escalation, interrupt).
        """
        while len(self.sat_time_per_attempt) <= rung:
            self.sat_time_per_attempt.append(0.0)
        self.sat_time_per_attempt[rung] += seconds
        self.sat_time += seconds

    @property
    def final_cost(self) -> int:
        """Cost after the simulation phase (what Table 1 reports)."""
        if not self.cost_history:
            raise SweepError("no cost recorded yet")
        return self.cost_history[-1]


@dataclass(slots=True)
class SweepResult:
    """Outcome of a full sweep."""

    classes: EquivalenceClasses
    metrics: SweepMetrics
    #: Proven equivalent pairs as (representative, member, complemented?).
    equivalences: list[tuple[int, int, bool]] = field(default_factory=list)


#: Progress callback: (phase, step, cost) — phase is "random", "guided",
#: "sat", or "escalate"; step counts iterations/queries; cost is the
#: current Eq. 5 cost.
SweepObserver = Callable[[str, int, int], None]


class SweepEngine:
    """Drives simulation-based class refinement and SAT resolution."""

    def __init__(
        self,
        network: Network,
        generator: Optional[BaseVectorGenerator] = None,
        config: Optional[SweepConfig] = None,
        observer: Optional[SweepObserver] = None,
    ):
        self.network = network
        self.config = config or SweepConfig()
        self.generator = (
            adapt_backend(generator, self.config.simgen_backend)
            if self.config.simgen_backend is not None
            else generator
        )
        if self.config.engine not in ("compiled", "reference"):
            raise SweepError(
                f"unknown engine {self.config.engine!r} "
                "(use 'compiled' or 'reference')"
            )
        self._compiled = self.config.engine == "compiled"
        if self.config.sat_backend not in SAT_BACKENDS:
            raise SweepError(
                f"unknown sat_backend {self.config.sat_backend!r} "
                f"(use one of {', '.join(repr(b) for b in SAT_BACKENDS)})"
            )
        if self.config.jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {self.config.jobs}")
        if self.config.jobs > 1:
            if self.config.solver_factory is not None:
                raise SweepError(
                    "solver_factory cannot cross process boundaries; use "
                    "jobs=1, or the chaos_kill_pair seam for parallel faults"
                )
            if not self._compiled:
                raise SweepError(
                    "jobs > 1 requires the compiled engine (batched "
                    "counterexample resimulation)"
                )
        self._journal = self.config.journal
        if self._journal is not None and self.config.solver_factory is not None:
            raise SweepError(
                "a verdict journal cannot record fault-injected solvers "
                "(their verdicts are not replayable); use one or the other"
            )
        #: Journaled runs force query-pure (fresh-solver) checking so every
        #: verdict is a pure function of the pair — the property resume
        #: identity and sound twin sharing rest on.
        self._incremental = (
            self.config.incremental_sat and self._journal is None
        )
        self.simulator = self._wrap_simulator(
            CompiledSimulator(network) if self._compiled else Simulator(network)
        )
        self.observer = observer
        self.tracer = (
            self.config.tracer if self.config.tracer is not None else NULL_TRACER
        )
        self.registry = (
            self.config.registry
            if self.config.registry is not None
            else MetricsRegistry()
        )
        if self._journal is not None:
            self._journal.bind(
                network, config_fingerprint(self.config, self.generator)
            )
        self._rng = random.Random(self.config.seed)
        #: Counterexamples awaiting resimulation: (total, partial, rep, member).
        self._pending_cex: list[
            tuple[InputVector, InputVector, Optional[int], Optional[int]]
        ] = []
        self._resim_sim = self.simulator
        self._resim_targets = 0  # target-set size the resim tape was built for

    def _notify(self, phase: str, step: int, cost: int) -> None:
        if self.observer is not None:
            self.observer(phase, step, cost)

    def _wrap_simulator(self, sim):
        wrapper = self.config.simulator_wrapper
        return sim if wrapper is None else wrapper(sim)

    def _sim_batch(self, sim, batch: PatternBatch, metrics: SweepMetrics):
        """``sim.run_batch`` with bounded retry on transient faults.

        Returns ``None`` when the batch had to be dropped after the retry
        budget — callers then skip the refinement, which only leaves the
        classes coarser (sound), never wrong.
        """
        attempts = 0
        while True:
            try:
                return sim.run_batch(batch)
            except TransientSimulationError:
                metrics.sim_retries += 1
                attempts += 1
                if attempts > self.config.sim_retries:
                    return None

    # ------------------------------------------------------------------
    # Phase 1 + 2: simulation
    # ------------------------------------------------------------------
    def run_simulation_phase(self) -> tuple[EquivalenceClasses, SweepMetrics]:
        """Random rounds, then guided iterations; returns classes + metrics."""
        config = self.config
        metrics = SweepMetrics()
        classes = EquivalenceClasses(
            self.network,
            include_pis=config.include_pis,
            match_complements=config.match_complements,
        )
        budget = config.budget
        tracer = self.tracer
        start = time.perf_counter()
        with tracer.span("phase", phase="random"):
            try:
                for round_index in range(max(1, config.random_rounds)):
                    batch = PatternBatch(
                        self.network.pis, random.Random(self._rng.random())
                    )
                    batch.add_random(config.random_width)
                    values = self._sim_batch(self.simulator, batch, metrics)
                    if values is not None:
                        classes.refine(values, batch.width)
                        metrics.vectors_simulated += batch.width
                    cost = classes.cost()
                    metrics.cost_history.append(cost)
                    self._notify("random", round_index, cost)
                    if tracer.enabled:
                        tracer.event(
                            "refine",
                            phase="random",
                            step=round_index,
                            cost=cost,
                            width=batch.width,
                        )
            except KeyboardInterrupt:
                metrics.interrupted = True
        metrics.sim_time += time.perf_counter() - start

        if self.generator is None or metrics.interrupted:
            return classes, metrics

        with tracer.span("phase", phase="guided"):
            try:
                for iteration in range(config.iterations):
                    if budget is not None and budget.expired():
                        metrics.deadline_expired = True
                        break
                    iter_start = time.perf_counter()
                    vectors = self.generator.generate(classes.splittable())
                    gen_s = time.perf_counter() - iter_start
                    if vectors:
                        batch = PatternBatch(
                            self.network.pis, random.Random(self._rng.random())
                        )
                        for vector in vectors:
                            batch.add_vector(vector)
                        values = self._sim_batch(self.simulator, batch, metrics)
                        if values is not None:
                            classes.refine(values, batch.width)
                            metrics.vectors_simulated += batch.width
                    elapsed = time.perf_counter() - iter_start
                    metrics.iteration_times.append(elapsed)
                    # The generate() window is the generator's bucket; the
                    # rest of the iteration (batching + simulation) stays
                    # under sim_time.  One owner per second, as always.
                    metrics.generation_times.append(gen_s)
                    metrics.simgen_time += gen_s
                    metrics.sim_time += elapsed - gen_s
                    cost = classes.cost()
                    metrics.cost_history.append(cost)
                    self._notify("guided", iteration, cost)
                    if tracer.enabled:
                        tracer.event(
                            "refine",
                            phase="guided",
                            step=iteration,
                            cost=cost,
                            width=len(vectors),
                            dur=elapsed,
                            gen_s=gen_s,
                        )
            except KeyboardInterrupt:
                metrics.interrupted = True
        return classes, metrics

    # ------------------------------------------------------------------
    # Phase 3: SAT
    # ------------------------------------------------------------------
    def run_sat_phase(
        self, classes: EquivalenceClasses, metrics: SweepMetrics
    ) -> SweepResult:
        """Resolve every remaining class with the CDCL solver.

        Budget expiry or a ``KeyboardInterrupt`` stops the phase early with
        a *sound* partial result: proven/disproven verdicts already
        recorded stay valid, pending counterexamples are flushed, and the
        remaining pairs are simply left unresolved.
        """
        config = self.config
        budget = config.budget
        tracer = self.tracer
        result = SweepResult(classes=classes, metrics=metrics)
        if metrics.interrupted:
            return result
        if config.jobs > 1:
            return self._run_sat_phase_parallel(classes, metrics, result)
        checker = PairChecker(
            self.network,
            conflict_limit=config.sat_conflict_limit,
            incremental=self._incremental,
            budget=budget,
            solver_factory=config.solver_factory,
            max_retries=config.solver_retries,
            sat_backend=config.sat_backend,
        )
        ladder_on = (
            config.max_escalations > 0 and config.sat_conflict_limit is not None
        )
        escalation_queue: list[tuple[int, int, bool, int]] = []
        self._pending_cex.clear()
        self._resim_sim = self.simulator
        self._resim_targets = classes.num_members
        compiled = self._compiled
        start = time.perf_counter()
        with tracer.span("phase", phase="sat"):
            try:
                while True:
                    if budget is not None and budget.expired():
                        metrics.deadline_expired = True
                        break
                    if compiled:
                        # Flush before the classes are consulted so deferral
                        # can never change which class (or pair) is attacked
                        # next.
                        self._flush_cex(classes, metrics)
                        cls = classes.best_splittable()
                        if cls is None:
                            break
                    else:
                        pending = classes.splittable()
                        if not pending:
                            break
                        cls = pending[0]
                    # Representative: shallowest member (cheapest miter cones).
                    rep = min(
                        cls, key=lambda uid: (self.network.level(uid), uid)
                    )
                    others = [uid for uid in cls if uid != rep]
                    member = others[0]
                    complemented = classes.phase(rep) != classes.phase(member)
                    outcome, vector = self._journaled_attempt(
                        checker, metrics, rep, member, complemented, rung=0
                    )
                    metrics.sat_calls += 1
                    self._notify("sat", metrics.sat_calls, classes.cost())
                    if outcome is SatResult.UNSAT:
                        metrics.proven += 1
                        result.equivalences.append((rep, member, complemented))
                        classes.remove_member(member)
                    elif outcome is SatResult.SAT:
                        metrics.disproven += 1
                        if config.resimulate_cex and vector is not None:
                            if compiled:
                                self.queue_counterexample(vector, rep, member)
                                if (
                                    len(self._pending_cex)
                                    >= config.cex_batch_width
                                ):
                                    self._flush_cex(classes, metrics)
                            else:
                                self._resimulate(classes, vector, metrics)
                                if classes.same_class(rep, member):
                                    # The counterexample must separate the
                                    # pair; if phases / free PIs conspired
                                    # against the split, force it.
                                    classes.isolate(member)
                        elif classes.same_class(rep, member):
                            classes.isolate(member)
                    else:
                        metrics.unknown += 1
                        classes.isolate(member)
                        if ladder_on:
                            escalation_queue.append(
                                (rep, member, complemented, 1)
                            )
            except KeyboardInterrupt:
                metrics.interrupted = True
            try:
                self._flush_cex(classes, metrics)
            except KeyboardInterrupt:
                # Even the flush was interrupted: drop the pending vectors
                # (they only refine classes further — never required for
                # soundness).
                metrics.interrupted = True
                self._pending_cex.clear()
            if escalation_queue and not metrics.interrupted:
                self._run_escalations(
                    escalation_queue, classes, metrics, result, checker
                )
            metrics.solver_retries += checker.stats.retries
            metrics.sat_phase_time += time.perf_counter() - start
        self.registry.inc_many("sat.solver", checker.solver_stats)
        self._fold_session_stats()
        return result

    def _checked_attempt(
        self,
        checker: PairChecker,
        metrics: SweepMetrics,
        rep: int,
        member: int,
        complemented: bool,
        rung: int,
        conflict_limit=None,
    ):
        """One serial pair query with its window charged on every exit path.

        The checker's clock is the single owner of the attempt window; this
        wrapper charges the delta to ``metrics`` (and the trace) even when
        the query is aborted by an interrupt mid-solve, so
        ``sat_time == sum(sat_time_per_attempt)`` survives early exits.
        """
        time_before = checker.stats.sat_time
        conflicts_before = checker.stats.conflicts
        outcome = SatResult.UNKNOWN
        vector = None
        try:
            if conflict_limit is None:
                outcome, vector = checker.check(rep, member, complemented)
            else:
                outcome, vector = checker.check(
                    rep, member, complemented, conflict_limit=conflict_limit
                )
            return outcome, vector
        finally:
            attempt_s = checker.stats.sat_time - time_before
            metrics.charge_attempt(rung, attempt_s)
            conflicts = checker.stats.conflicts - conflicts_before
            self.registry.observe("sat.conflicts_per_call", conflicts)
            if self.tracer.enabled:
                self.tracer.event(
                    "sat.call",
                    rep=rep,
                    member=member,
                    complement=complemented,
                    verdict=outcome.value,
                    conflicts=conflicts,
                    rung=rung,
                    dur=attempt_s,
                )

    # ------------------------------------------------------------------
    # Durable sessions (verdict journal)
    # ------------------------------------------------------------------
    def _journaled_attempt(
        self,
        checker: PairChecker,
        metrics: SweepMetrics,
        rep: int,
        member: int,
        complemented: bool,
        rung: int,
        conflict_limit=None,
    ):
        """A serial pair query routed through the verdict journal.

        With no journal this is exactly :meth:`_checked_attempt`.  With
        one, a journaled verdict for the pair's key is replayed (no solver
        touched) with identical accounting and trace records; a fresh
        verdict is solved, then durably appended *before* the caller
        merges it.  UNKNOWNs are only journaled when deterministic —
        reached at the nominal limit with no budget expiry and no
        transient-fault retry in the window.
        """
        journal = self._journal
        if journal is None:
            return self._checked_attempt(
                checker, metrics, rep, member, complemented, rung,
                conflict_limit,
            )
        nominal = (
            self.config.sat_conflict_limit
            if conflict_limit is None
            else conflict_limit
        )
        record = journal.lookup(rep, member, complemented, nominal)
        if record is not None:
            return self._apply_replay(
                metrics, rep, member, complemented, rung, record
            )
        budget = self.config.budget
        conflicts_before = checker.stats.conflicts
        props_before = checker.stats.propagations
        retries_before = checker.stats.retries
        outcome, vector = self._checked_attempt(
            checker, metrics, rep, member, complemented, rung, conflict_limit
        )
        deterministic_unknown = (
            checker.stats.retries == retries_before
            and (budget is None or not budget.expired())
        )
        if outcome is not SatResult.UNKNOWN or deterministic_unknown:
            journal.record(
                rep,
                member,
                complemented,
                nominal,
                outcome,
                vector,
                conflicts=checker.stats.conflicts - conflicts_before,
                propagations=checker.stats.propagations - props_before,
                rung=rung,
            )
        return outcome, vector

    def _apply_replay(
        self,
        metrics: SweepMetrics,
        rep: int,
        member: int,
        complemented: bool,
        rung: int,
        record,
    ):
        """Merge-side effects of one replayed verdict.

        Emits the same trace event and registry/budget charges as a live
        query (minus wall time: replay costs zero SAT seconds), so the
        deterministic trace projection of a resumed run is identical to
        the uninterrupted run's.
        """
        metrics.charge_attempt(rung, 0.0)
        budget = self.config.budget
        if budget is not None:
            budget.charge_sat_call()
            budget.charge_conflicts(record.conflicts)
        self.registry.observe("sat.conflicts_per_call", record.conflicts)
        self.registry.inc_many(
            "sat.solver",
            {
                "conflicts": record.conflicts,
                "propagations": record.propagations,
            },
        )
        if self.tracer.enabled:
            self.tracer.event(
                "sat.call",
                rep=rep,
                member=member,
                complement=complemented,
                verdict=record.outcome.value,
                conflicts=record.conflicts,
                rung=rung,
                dur=0.0,
            )
        vector = (
            None
            if record.vector is None
            else InputVector(dict(record.vector.values))
        )
        return record.outcome, vector

    def _journal_partition(self, pairs, limits=None):
        """Split a wave into replayed verdicts and pairs to dispatch.

        Returns ``(replayed, dispatch, dispatch_limits)`` where
        ``replayed`` maps wave offsets to fabricated
        :class:`PairVerdict` objects (zero SAT seconds) and ``dispatch``
        keeps the relative order of the remaining pairs — so stitching
        pool answers back by offset preserves the canonical merge order.
        """
        journal = self._journal
        if journal is None:
            return (
                {},
                list(pairs),
                None if limits is None else list(limits),
            )
        base = self.config.sat_conflict_limit
        replayed: dict[int, PairVerdict] = {}
        dispatch: list = []
        dispatch_limits: list = []
        for offset, (rep, member, complemented) in enumerate(pairs):
            nominal = base
            if limits is not None and limits[offset] is not None:
                nominal = limits[offset]
            record = journal.lookup(rep, member, complemented, nominal)
            if record is None:
                dispatch.append((rep, member, complemented))
                dispatch_limits.append(
                    None if limits is None else limits[offset]
                )
                continue
            replayed[offset] = PairVerdict(
                record.outcome,
                None
                if record.vector is None
                else InputVector(dict(record.vector.values)),
                record.conflicts,
                0.0,
                propagations=record.propagations,
                limit=nominal,
            )
        return (
            replayed,
            dispatch,
            None if limits is None else dispatch_limits,
        )

    def _journal_pooled(
        self, rep, member, complemented, verdict, rung, nominal
    ) -> None:
        """Durably append one pooled verdict (merge order = append order).

        Degraded verdicts are never journaled (no worker answer exists);
        an UNKNOWN is journaled only when the worker solved under the
        nominal limit — a budget-tightened limit makes the UNKNOWN
        non-deterministic, so it must be re-solved on resume.
        """
        journal = self._journal
        if journal is None or verdict.degraded:
            return
        if (
            verdict.outcome is SatResult.UNKNOWN
            and verdict.limit != nominal
        ):
            return
        journal.record(
            rep,
            member,
            complemented,
            nominal,
            verdict.outcome,
            verdict.vector,
            conflicts=verdict.conflicts,
            propagations=verdict.propagations,
            rung=rung,
        )

    def _fold_session_stats(self, pool=None) -> None:
        """Publish journal + pool-supervision counters into the registry.

        The journal hands out *deltas* (several fold sites may share one
        journal across the sweep and the CEC fallback); a pool instance is
        folded exactly once, by whoever closes it.
        """
        if self._journal is not None:
            self.registry.inc_many("journal", self._journal.consume_stats())
        if pool is not None:
            self.registry.inc_many("pool", pool.supervision_stats)

    # ------------------------------------------------------------------
    # Parallel SAT phase (jobs > 1)
    # ------------------------------------------------------------------
    def _build_wave(
        self, classes: EquivalenceClasses, wave_index: int
    ) -> list[tuple[int, int, bool]]:
        """Snapshot the next wave of independent candidate pairs.

        For every splittable class: the representative (shallowest member,
        as in the serial path) versus up to ``2 ** wave_index`` other
        members — a doubling ramp, so a huge class parallelizes within a
        few waves while early waves (where one counterexample often splits
        the whole class) waste few speculative queries.  The wave is
        sorted by (deepest cone level, rep, member): cheap miters first,
        and a canonical dispatch order that fixes shard query sequences
        and the merge order.
        """
        per_class_cap = 1 << min(wave_index, 16)
        network = self.network
        wave: list[tuple[int, int, bool]] = []
        for cls in classes.splittable():
            rep = min(cls, key=lambda uid: (network.level(uid), uid))
            rep_phase = classes.phase(rep)
            others = [uid for uid in cls if uid != rep]
            for member in others[:per_class_cap]:
                wave.append(
                    (rep, member, rep_phase != classes.phase(member))
                )
        wave.sort(
            key=lambda pair: (
                max(network.level(pair[0]), network.level(pair[1])),
                pair[0],
                pair[1],
            )
        )
        return wave

    def _run_sat_phase_parallel(
        self,
        classes: EquivalenceClasses,
        metrics: SweepMetrics,
        result: SweepResult,
    ) -> SweepResult:
        """Wave-scheduled SAT phase over a :class:`CheckerPool`.

        Each round snapshots the splittable classes into a wave of
        independent pairs, checks them concurrently, then merges verdicts
        in canonical dispatch order: UNSAT merges, SAT counterexamples are
        queued and absorbed through one batched resimulation, UNKNOWN
        isolates (and feeds the escalation ladder).  The budget is polled
        between waves; expiry abandons outstanding queries as UNKNOWN-
        degraded pairs, which stay unresolved — never guessed.
        """
        config = self.config
        budget = config.budget
        tracer = self.tracer
        ladder_on = (
            config.max_escalations > 0 and config.sat_conflict_limit is not None
        )
        escalation_queue: list[tuple[int, int, bool, int]] = []
        self._pending_cex.clear()
        self._resim_sim = self.simulator
        self._resim_targets = classes.num_members
        start = time.perf_counter()
        with tracer.span("phase", phase="sat"):
            # Spawning the workers is part of the SAT phase's wall cost, so
            # it happens inside both the span and the phase-time window.
            pool = CheckerPool(
                self.network,
                config.jobs,
                shards=config.sat_shards,
                conflict_limit=config.sat_conflict_limit,
                incremental=self._incremental,
                sat_backend=config.sat_backend,
                chaos_kill_pair=config.chaos_kill_pair,
                chaos_kill_limit=config.chaos_kill_limit,
                retry_policy=RetryPolicy(
                    max_retries=config.pair_retry_limit, seed=config.seed
                ),
                tracer=tracer,
            )
            try:
                wave_index = 0
                while True:
                    if budget is not None and budget.expired():
                        metrics.deadline_expired = True
                        break
                    self._flush_cex(classes, metrics)
                    wave = self._build_wave(classes, wave_index)
                    if not wave:
                        break
                    this_wave = wave_index
                    wave_index += 1
                    metrics.waves += 1
                    self.registry.observe("sweep.wave_size", len(wave))
                    with tracer.span("wave", wave=this_wave, size=len(wave)):
                        replayed, dispatch, _ = self._journal_partition(wave)
                        pooled = (
                            pool.check_pairs(dispatch, budget=budget)
                            if dispatch
                            else []
                        )
                        pooled_iter = iter(pooled)
                        verdicts = [
                            replayed[offset]
                            if offset in replayed
                            else next(pooled_iter)
                            for offset in range(len(wave))
                        ]
                        for offset, (
                            (rep, member, complemented),
                            verdict,
                        ) in enumerate(zip(wave, verdicts)):
                            if offset not in replayed:
                                self._journal_pooled(
                                    rep,
                                    member,
                                    complemented,
                                    verdict,
                                    rung=0,
                                    nominal=config.sat_conflict_limit,
                                )
                            self._merge_verdict_time(
                                metrics, verdict, rung=0
                            )
                            metrics.sat_calls += 1
                            if budget is not None and not verdict.degraded:
                                budget.charge_sat_call()
                                budget.charge_conflicts(verdict.conflicts)
                            self._notify(
                                "sat", metrics.sat_calls, classes.cost()
                            )
                            if tracer.enabled:
                                tracer.event(
                                    "sat.call",
                                    rep=rep,
                                    member=member,
                                    complement=complemented,
                                    verdict=verdict.outcome.value,
                                    conflicts=verdict.conflicts,
                                    rung=0,
                                    wave=this_wave,
                                    degraded=verdict.degraded,
                                    dur=verdict.sat_time,
                                )
                            if verdict.outcome is SatResult.UNSAT:
                                metrics.proven += 1
                                result.equivalences.append(
                                    (rep, member, complemented)
                                )
                                classes.remove_member(member)
                            elif verdict.outcome is SatResult.SAT:
                                metrics.disproven += 1
                                if (
                                    config.resimulate_cex
                                    and verdict.vector is not None
                                ):
                                    self.queue_counterexample(
                                        verdict.vector, rep, member
                                    )
                                    if (
                                        len(self._pending_cex)
                                        >= config.cex_batch_width
                                    ):
                                        self._flush_cex(classes, metrics)
                                elif classes.same_class(rep, member):
                                    classes.isolate(member)
                            else:
                                metrics.unknown += 1
                                classes.isolate(member)
                                if ladder_on:
                                    escalation_queue.append(
                                        (rep, member, complemented, 1)
                                    )
            except KeyboardInterrupt:
                metrics.interrupted = True
            try:
                self._flush_cex(classes, metrics)
            except KeyboardInterrupt:
                metrics.interrupted = True
                self._pending_cex.clear()
            try:
                if escalation_queue and not metrics.interrupted:
                    self._run_escalations_parallel(
                        escalation_queue, classes, metrics, result, pool
                    )
            finally:
                metrics.worker_failures += pool.worker_failures
                self._fold_session_stats(pool=pool)
                pool.close()
            metrics.sat_phase_time += time.perf_counter() - start
        return result

    def _merge_verdict_time(
        self, metrics: SweepMetrics, verdict, rung: int
    ) -> None:
        """Fold one pooled verdict's accounting in (dispatch order).

        The worker-local clock is the single owner of the query window:
        its seconds land in ``sat_time``/``sat_time_per_attempt`` *and*
        ``worker_sat_time`` (the two stay equal on fully-pooled runs) —
        never in the coordinator's wall window, which is
        ``sat_phase_time``.
        """
        metrics.charge_attempt(rung, verdict.sat_time)
        metrics.worker_sat_time += verdict.sat_time
        if verdict.degraded:
            metrics.degraded_pairs += 1
        self.registry.observe("sat.conflicts_per_call", verdict.conflicts)
        # Pooled runs have no parent-side solver to export counters from,
        # so the worker deltas are the registry's source of truth here.
        self.registry.inc_many(
            "sat.solver",
            {
                "conflicts": verdict.conflicts,
                "propagations": verdict.propagations,
            },
        )

    def _run_escalations_parallel(
        self,
        queue: list[tuple[int, int, bool, int]],
        classes: EquivalenceClasses,
        metrics: SweepMetrics,
        result: SweepResult,
        pool: CheckerPool,
    ) -> None:
        """Escalation ladder over the pool: one wave per pending rung set.

        Same semantics as :meth:`_run_escalations`, but every pair of the
        current rung set is retried concurrently; the stable shard routing
        sends a retry to the solver that already learnt that miter's
        clauses.
        """
        config = self.config
        budget = config.budget
        base_limit = config.sat_conflict_limit
        try:
            while queue:
                if budget is not None and budget.expired():
                    metrics.deadline_expired = True
                    break
                wave, queue = queue, []
                limits = [
                    base_limit * (config.escalation_factor ** rung)
                    for _, _, _, rung in wave
                ]
                pairs = [(rep, member, comp) for rep, member, comp, _ in wave]
                replayed, dispatch, dispatch_limits = self._journal_partition(
                    pairs, limits
                )
                pooled = (
                    pool.check_pairs(
                        dispatch, limits=dispatch_limits, budget=budget
                    )
                    if dispatch
                    else []
                )
                pooled_iter = iter(pooled)
                verdicts = [
                    replayed[offset]
                    if offset in replayed
                    else next(pooled_iter)
                    for offset in range(len(wave))
                ]
                for offset, (
                    (rep, member, complemented, rung),
                    verdict,
                ) in enumerate(zip(wave, verdicts)):
                    if offset not in replayed:
                        self._journal_pooled(
                            rep,
                            member,
                            complemented,
                            verdict,
                            rung=rung,
                            nominal=limits[offset],
                        )
                    self._merge_verdict_time(metrics, verdict, rung=rung)
                    metrics.sat_calls += 1
                    metrics.escalations += 1
                    if budget is not None and not verdict.degraded:
                        budget.charge_sat_call()
                        budget.charge_conflicts(verdict.conflicts)
                    self._notify("escalate", metrics.sat_calls, classes.cost())
                    if self.tracer.enabled:
                        self.tracer.event(
                            "sat.call",
                            rep=rep,
                            member=member,
                            complement=complemented,
                            verdict=verdict.outcome.value,
                            conflicts=verdict.conflicts,
                            rung=rung,
                            degraded=verdict.degraded,
                            dur=verdict.sat_time,
                        )
                    if verdict.outcome is SatResult.UNSAT:
                        metrics.unknown -= 1
                        metrics.proven += 1
                        result.equivalences.append((rep, member, complemented))
                        if classes.tracked(member):
                            classes.remove_member(member)
                    elif verdict.outcome is SatResult.SAT:
                        metrics.unknown -= 1
                        metrics.disproven += 1
                        if config.resimulate_cex and verdict.vector is not None:
                            self.queue_counterexample(verdict.vector)
                    elif rung < config.max_escalations:
                        queue.append((rep, member, complemented, rung + 1))
                    else:
                        metrics.unknown_after_escalation += 1
                self._flush_cex(classes, metrics)
        except KeyboardInterrupt:
            metrics.interrupted = True
            self._pending_cex.clear()

    # ------------------------------------------------------------------
    # UNKNOWN escalation ladder
    # ------------------------------------------------------------------
    def _run_escalations(
        self,
        queue: list[tuple[int, int, bool, int]],
        classes: EquivalenceClasses,
        metrics: SweepMetrics,
        result: SweepResult,
        checker: PairChecker,
    ) -> None:
        """Retry abandoned pairs with geometrically growing conflict limits.

        Runs after the base pass so cheap pairs are never starved by a hard
        one, and only while budget headroom remains.  A pair proven here is
        re-merged into the result exactly as in the base pass; a pair still
        UNKNOWN after the last rung is counted in
        ``metrics.unknown_after_escalation``.
        """
        config = self.config
        budget = config.budget
        base_limit = config.sat_conflict_limit
        try:
            while queue:
                if budget is not None and budget.expired():
                    metrics.deadline_expired = True
                    break
                rep, member, complemented, rung = queue.pop(0)
                limit = base_limit * (config.escalation_factor ** rung)
                outcome, vector = self._journaled_attempt(
                    checker,
                    metrics,
                    rep,
                    member,
                    complemented,
                    rung=rung,
                    conflict_limit=limit,
                )
                metrics.sat_calls += 1
                metrics.escalations += 1
                self._notify("escalate", metrics.sat_calls, classes.cost())
                if outcome is SatResult.UNSAT:
                    metrics.unknown -= 1
                    metrics.proven += 1
                    result.equivalences.append((rep, member, complemented))
                    if classes.tracked(member):
                        classes.remove_member(member)
                elif outcome is SatResult.SAT:
                    metrics.unknown -= 1
                    metrics.disproven += 1
                    if config.resimulate_cex and vector is not None:
                        if self._compiled:
                            self.queue_counterexample(vector)
                            self._flush_cex(classes, metrics)
                        else:
                            self._resimulate(classes, vector, metrics)
                elif rung < config.max_escalations:
                    queue.append((rep, member, complemented, rung + 1))
                else:
                    metrics.unknown_after_escalation += 1
        except KeyboardInterrupt:
            metrics.interrupted = True
            self._pending_cex.clear()

    # ------------------------------------------------------------------
    # Counterexample resimulation
    # ------------------------------------------------------------------
    def queue_counterexample(
        self,
        vector: InputVector,
        rep: Optional[int] = None,
        member: Optional[int] = None,
    ) -> None:
        """Defer a counterexample into the pending resimulation batch.

        Free PIs are completed immediately with this engine's RNG (the same
        draw order as the reference engine's per-cex batch), so flush timing
        never changes the simulated patterns.  When ``rep``/``member`` are
        given, the flush forces the pair apart if refinement alone failed
        to separate them.
        """
        rng = random.Random(self._rng.random())
        total = vector.completed(self.network.pis, rng)
        self._pending_cex.append((total, vector, rep, member))

    def _flush_cex(
        self, classes: EquivalenceClasses, metrics: SweepMetrics
    ) -> None:
        """Resimulate all pending counterexamples in one batch.

        Resimulation is *simulation* work triggered from the SAT phase: its
        window is charged to ``metrics.sim_time`` (never ``sat_time``, whose
        sole owner is the checker clock), even when the flush is interrupted
        mid-batch.
        """
        if not self._pending_cex:
            return
        pending = self._pending_cex
        self._pending_cex = []
        start = time.perf_counter()
        try:
            batch = PatternBatch(self.network.pis)
            for total, _, _, _ in pending:
                batch.add_vector(total)
            values = self._sim_batch(
                self._resim_simulator(classes), batch, metrics
            )
            if values is not None:
                classes.refine(values, batch.width)
                metrics.vectors_simulated += batch.width
            # Even when the batch was dropped, the forced isolations below
            # keep every disproven pair separated — refinement is only an
            # accelerant.
            for _, partial, rep, member in pending:
                # Counterexamples make good seeds for neighbourhood
                # generators (Mishchenko et al.'s 1-distance vectors, §2.3).
                if self.generator is not None and hasattr(
                    self.generator, "set_seed_vector"
                ):
                    self.generator.set_seed_vector(partial)
                if (
                    rep is not None
                    and member is not None
                    and classes.tracked(rep)
                    and classes.tracked(member)
                    and classes.same_class(rep, member)
                ):
                    classes.isolate(member)
        finally:
            flush_s = time.perf_counter() - start
            metrics.sim_time += flush_s
            if self.tracer.enabled:
                self.tracer.event(
                    "resim.flush", count=len(pending), dur=flush_s
                )

    def _resim_simulator(self, classes: EquivalenceClasses):
        """The simulator used for counterexample resimulation.

        Only members of classes of size >= 2 can still split, so the tape
        is recompiled onto their (shrinking) fanin cones whenever the
        splittable member count halves.
        """
        members = classes.splittable_members()
        threshold = self._resim_targets * self.config.resim_recompile_factor
        if members and len(members) <= threshold:
            self._resim_sim = self._wrap_simulator(
                CompiledSimulator(self.network, targets=members)
            )
            self._resim_targets = len(members)
        return self._resim_sim

    def _resimulate(
        self,
        classes: EquivalenceClasses,
        vector: InputVector,
        metrics: SweepMetrics,
    ) -> None:
        """Reference-mode resimulation: one full-network pass per cex.

        Charged to ``sim_time`` like the batched flush (one timer owner per
        window; the SAT clock never covers resimulation).
        """
        start = time.perf_counter()
        try:
            batch = PatternBatch(
                self.network.pis, random.Random(self._rng.random())
            )
            batch.add_vector(vector)
            values = self._sim_batch(self.simulator, batch, metrics)
            if values is None:
                return
            classes.refine(values, batch.width)
            metrics.vectors_simulated += batch.width
            # Counterexamples make good seeds for neighbourhood generators
            # (Mishchenko et al.'s 1-distance vectors, paper §2.3).
            if self.generator is not None and hasattr(
                self.generator, "set_seed_vector"
            ):
                self.generator.set_seed_vector(vector)
        finally:
            flush_s = time.perf_counter() - start
            metrics.sim_time += flush_s
            if self.tracer.enabled:
                self.tracer.event("resim.flush", count=1, dur=flush_s)

    # ------------------------------------------------------------------
    def publish_metrics(self, metrics: SweepMetrics) -> None:
        """Fold run metrics and per-component stats into the registry.

        Component stats dicts (implication/decision engines, simulators)
        are published under stable prefixes; float-valued entries become
        timers, integer entries counters (see
        :meth:`repro.obs.MetricsRegistry.inc_many`).
        """
        registry = self.registry
        registry.inc_many(
            "sweep",
            {
                "sat_calls": metrics.sat_calls,
                "proven": metrics.proven,
                "disproven": metrics.disproven,
                "unknown": metrics.unknown,
                "escalations": metrics.escalations,
                "unknown_after_escalation": metrics.unknown_after_escalation,
                "vectors_simulated": metrics.vectors_simulated,
                "waves": metrics.waves,
                "degraded_pairs": metrics.degraded_pairs,
                "sim_retries": metrics.sim_retries,
                "solver_retries": metrics.solver_retries,
                "worker_failures": metrics.worker_failures,
                "sim_time": metrics.sim_time,
                "simgen_time": metrics.simgen_time,
                "sat_time": metrics.sat_time,
                "sat_phase_time": metrics.sat_phase_time,
                "worker_sat_time": metrics.worker_sat_time,
            },
        )
        for attr, prefix in (
            ("implication", "simgen.implication"),
            ("decision", "simgen.decision"),
            ("kernel", "simgen.kernel"),
            ("batch", "simgen.batch"),
        ):
            stats = getattr(
                getattr(self.generator, attr, None), "stats", None
            )
            if isinstance(stats, dict):
                registry.inc_many(prefix, stats)
        # Per-flush live-lane widths of the batch backend feed a histogram
        # (drained so repeated publishes never double-count a flush).
        occupancy = getattr(
            getattr(self.generator, "batch", None), "lane_occupancy", None
        )
        if occupancy:
            histogram = registry.histogram(
                "simgen.batch.lanes_active", (1, 2, 4, 8, 16, 32, 64)
            )
            for width in occupancy:
                histogram.observe(width)
            del occupancy[:]
        seen: set[int] = set()
        for sim in (self.simulator, self._resim_sim):
            if sim is None or id(sim) in seen:
                continue
            seen.add(id(sim))
            stats = getattr(sim, "stats", None)
            if isinstance(stats, dict):
                registry.inc_many("sim", stats)

    def run(self) -> SweepResult:
        """Full sweep: simulation phase followed by the SAT phase."""
        tracer = self.tracer
        with tracer.span("run", kind="sweep", engine=self.config.engine):
            classes, metrics = self.run_simulation_phase()
            result = self.run_sat_phase(classes, metrics)
        self.publish_metrics(result.metrics)
        if tracer.enabled:
            tracer.counters(self.registry.as_dict())
        return result
