"""JSON serialization of experiment results.

``python -m repro.experiments all --json results.json`` dumps every
generated table/figure as structured data, so downstream analysis
(plotting, regression tracking between library versions) does not have to
re-parse the rendered text.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig7 import Fig7Result
from repro.experiments.runner import BenchmarkRun
from repro.experiments.table1 import Table1Result
from repro.experiments.table2 import Table2Result


def run_to_dict(run: BenchmarkRun) -> dict[str, Any]:
    """Flatten one BenchmarkRun."""
    return {
        "benchmark": run.benchmark,
        "strategy": run.strategy,
        "luts": run.luts,
        "pis": run.pis,
        "cost_initial": run.cost_initial,
        "cost_final": run.cost_final,
        "cost_history": list(run.cost_history),
        "sim_time": run.sim_time,
        "sat_calls": run.sat_calls,
        "sat_time": run.sat_time,
        "proven": run.proven,
        "disproven": run.disproven,
        "unknown": run.unknown,
    }


def table1_to_dict(result: Table1Result) -> dict[str, Any]:
    return {
        "kind": "table1",
        "avg_cost": result.avg_cost,
        "avg_runtime": result.avg_runtime,
        "aggregate_cost": result.aggregate_cost,
        "aggregate_runtime": result.aggregate_runtime,
        "runs": [run_to_dict(r) for r in result.runs.values()],
    }


def table2_to_dict(result: Table2Result) -> dict[str, Any]:
    return {
        "kind": "table2_scaled" if result.scaled else "table2",
        "rows": [
            {
                "benchmark": row.benchmark,
                "copies": row.copies,
                "revs": run_to_dict(row.revs),
                "sgen": run_to_dict(row.sgen),
            }
            for row in result.rows
        ],
    }


def fig5_to_dict(result: Fig5Result) -> dict[str, Any]:
    return {
        "kind": result.title.lower().replace(" ", ""),
        "points": [
            {
                "benchmark": p.benchmark,
                "copies": p.copies,
                "cost": p.cost,
                "sim_runtime": p.sim_runtime,
                "sat_calls": p.sat_calls,
                "sat_runtime": p.sat_runtime,
                "pareto": p.pareto_class(),
            }
            for p in result.points
        ],
    }


def fig7_to_dict(result: Fig7Result) -> dict[str, Any]:
    return {
        "kind": "fig7",
        "iterations": result.iterations,
        "traces": {
            benchmark: [
                {
                    "label": t.label,
                    "costs": list(t.costs),
                    "cumulative_time": list(t.cumulative_time),
                    "switch_iteration": t.switch_iteration,
                }
                for t in traces
            ]
            for benchmark, traces in result.traces.items()
        },
    }


def to_dict(result: Any) -> dict[str, Any]:
    """Dispatch any experiment result to its JSON form."""
    if isinstance(result, Table1Result):
        return table1_to_dict(result)
    if isinstance(result, Table2Result):
        return table2_to_dict(result)
    if isinstance(result, Fig5Result):
        return fig5_to_dict(result)
    if isinstance(result, Fig7Result):
        return fig7_to_dict(result)
    raise TypeError(f"unknown result type {type(result)!r}")


def dump_results(results: list[Any], path: str) -> None:
    """Write a list of experiment results as one JSON document.

    The write is atomic (temp file + rename): a crash mid-dump leaves any
    previous results file intact instead of a truncated document.
    """
    from repro.runtime.atomicio import atomic_write_json

    payload = [to_dict(result) for result in results]
    atomic_write_json(path, payload)
