"""Random reconvergent logic generators (ITC'99 b14-b22 stand-ins).

The ITC'99 circuits are processor-style control/datapath mixes.  The
generator grows a random DAG with locality-biased fanin selection (recent
signals are picked more often, creating deep reconvergent regions) and a
sprinkle of word-level operators, which gives the mix of easy and hard
equivalence candidates those benchmarks exhibit.
"""

from __future__ import annotations

import random

from repro.logic.truthtable import TruthTable
from repro.network.build import NetworkBuilder
from repro.network.network import Network

_GATE_POOL = ("and", "or", "nand", "nor", "xor", "xnor")


def random_dag(
    name: str,
    num_inputs: int = 16,
    num_gates: int = 150,
    num_outputs: int = 12,
    seed: int = 0,
    locality: int = 24,
    lut_fraction: float = 0.15,
) -> Network:
    """A random locality-biased DAG of 2-input gates and small LUTs.

    Args:
        locality: Fanins are drawn from the last ``locality`` signals with
            high probability, producing reconvergence instead of a shallow
            random bipartite mess.
        lut_fraction: Fraction of nodes realized as random 3-4 input LUTs.
    """
    rng = random.Random(seed)
    builder = NetworkBuilder(name)
    signals = builder.pis(num_inputs, "x")

    def pick_fanin() -> int:
        if len(signals) > locality and rng.random() < 0.75:
            return signals[-rng.randint(1, locality)]
        return rng.choice(signals)

    for _ in range(num_gates):
        if rng.random() < lut_fraction:
            arity = rng.randint(3, 4)
            fanins = []
            while len(fanins) < arity:
                candidate = pick_fanin()
                if candidate not in fanins:
                    fanins.append(candidate)
            table = TruthTable(arity, rng.getrandbits(1 << arity))
            signals.append(builder.table(table, fanins))
        else:
            kind = rng.choice(_GATE_POOL)
            a, b = pick_fanin(), pick_fanin()
            if a == b and kind in ("xor", "nand", "nor"):
                b = rng.choice(signals)
            signals.append(builder.gate(kind, [a, b]))

    # Outputs: bias toward late (deep) signals so most logic is observable.
    candidates = signals[num_inputs:]
    chosen: list[int] = []
    while len(chosen) < min(num_outputs, len(candidates)):
        node = (
            candidates[-rng.randint(1, max(1, len(candidates) // 3))]
            if rng.random() < 0.7
            else rng.choice(candidates)
        )
        if node not in chosen:
            chosen.append(node)
    for j, node in enumerate(chosen):
        builder.po(node, f"y{j}")
    network = builder.build()
    network.remove_dangling()
    return network


def itc_like(
    name: str,
    num_inputs: int,
    num_gates: int,
    num_outputs: int,
    seed: int,
    datapath_width: int = 4,
) -> Network:
    """An ITC'99-style mix: random control DAG + a small ALU-ish datapath."""
    rng = random.Random(seed)
    builder = NetworkBuilder(name)
    ctrl_inputs = builder.pis(num_inputs, "x")
    a = builder.pis(datapath_width, "a")
    b = builder.pis(datapath_width, "b")

    # Datapath: add/sub selected by a control signal.
    add_bits, carry = builder.ripple_adder(a, b)
    sub_bits, _ = builder.subtractor(a, b)

    signals = list(ctrl_inputs)

    def pick() -> int:
        if len(signals) > 16 and rng.random() < 0.75:
            return signals[-rng.randint(1, 16)]
        return rng.choice(signals)

    for _ in range(num_gates):
        kind = rng.choice(_GATE_POOL)
        x, y = pick(), pick()
        if x == y:
            y = rng.choice(signals)
        signals.append(builder.gate(kind, [x, y]))

    select = signals[-1]
    result = [builder.mux_(s, d, select) for s, d in zip(add_bits, sub_bits)]
    for j, bit in enumerate(result):
        builder.po(bit, f"r{j}")
    builder.po(carry, "cout")
    produced = signals[len(ctrl_inputs):]
    for j in range(min(num_outputs, len(produced))):
        builder.po(produced[-(j * 3 + 1) % len(produced)], f"y{j}")
    network = builder.build()
    network.remove_dangling()
    return network
