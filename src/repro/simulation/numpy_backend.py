"""Alternative numpy simulation backend (cross-validation + experiments).

The default simulator packs all patterns of a batch into one Python big
integer per node; this backend stores each node as a ``uint64`` array of
pattern words and evaluates cubes with vectorized bitwise operations.

Measured finding (see ``benchmarks/bench_infrastructure.py``): CPython's
big-int bitwise operations outperform this array formulation by ~5x even
at 4096-pattern widths — the per-cube array temporaries and int/array
conversions dominate.  The backend is therefore kept as an independent
*cross-validation oracle* for the primary simulator (results are
bit-identical, checked in the test suite) and as the starting point for
anyone porting the flow to GPU-style array runtimes, not as a speedup.

numpy is an optional dependency: instantiating the backend without numpy
raises ``SimulationError`` with a clear message.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SimulationError
from repro.simulation.simulator import _eval_plan

try:  # pragma: no cover - exercised implicitly on import
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.network.network import Network

_WORD_BITS = 64


def _require_numpy() -> None:
    if _np is None:  # pragma: no cover
        raise SimulationError(
            "numpy is not installed; use repro.simulation.Simulator instead"
        )


def int_to_words(value: int, width: int):
    """Pack a Python big-int bit vector into a uint64 array.

    One ``int.to_bytes`` + ``np.frombuffer`` instead of a per-word Python
    loop — the conversion was the bulk of this backend's documented 5x
    overhead over the big-int simulator.
    """
    _require_numpy()
    num_words = max(1, (width + _WORD_BITS - 1) // _WORD_BITS)
    # Truncate to the array's capacity (and normalize negative values),
    # matching the old per-word ``& mask`` behavior.
    value &= (1 << (num_words * _WORD_BITS)) - 1
    raw = value.to_bytes(num_words * 8, "little")
    return _np.frombuffer(raw, dtype="<u8").copy()


def words_to_int(words, width: int) -> int:
    """Unpack a uint64 array back into a Python big-int bit vector."""
    _require_numpy()
    raw = _np.ascontiguousarray(words, dtype="<u8").tobytes()
    return int.from_bytes(raw, "little") & ((1 << width) - 1)


class NumpySimulator:
    """Bit-parallel simulation on uint64 numpy arrays.

    API mirrors :class:`~repro.simulation.simulator.Simulator.run_words`;
    PI words are plain ints (as produced by :class:`PatternBatch`) and the
    result maps node ids to plain ints, so the two backends are drop-in
    interchangeable.
    """

    def __init__(self, network: Network):
        _require_numpy()
        self.network = network
        self._topo = network.topological_order()

    def run_words(
        self, pi_words: Mapping[int, int], width: int
    ) -> dict[int, int]:
        if width < 0:
            raise SimulationError("width must be >= 0")
        num_words = max(1, (width + _WORD_BITS - 1) // _WORD_BITS)
        # Mask for the (possibly partial) top word.
        top_bits = width - (num_words - 1) * _WORD_BITS
        full = _np.uint64((1 << _WORD_BITS) - 1)
        mask = _np.full(num_words, full, dtype=_np.uint64)
        if top_bits < _WORD_BITS:
            mask[-1] = _np.uint64((1 << max(0, top_bits)) - 1)

        arrays: dict[int, object] = {}
        for pi in self.network.pis:
            if pi not in pi_words:
                raise SimulationError(f"missing word for PI {pi}")
            arrays[pi] = int_to_words(pi_words[pi], width) & mask

        zeros = _np.zeros(num_words, dtype=_np.uint64)
        for uid in self._topo:
            node = self.network.node(uid)
            if node.is_pi:
                continue
            if node.is_const:
                arrays[uid] = mask.copy() if node.table.bits else zeros.copy()
                continue
            complement, cubes = _eval_plan(node.table)
            fanin_arrays = [arrays[f] for f in node.fanins]
            result = zeros.copy()
            for cube_mask, cube_values in cubes:
                term = mask.copy()
                i = 0
                m = cube_mask
                while m:
                    if m & 1:
                        word = fanin_arrays[i]
                        if (cube_values >> i) & 1:
                            term &= word
                        else:
                            term &= ~word & mask
                    m >>= 1
                    i += 1
                result |= term
            if complement:
                result = ~result & mask
            arrays[uid] = result

        return {
            uid: words_to_int(array, width) for uid, array in arrays.items()
        }
